//! Cross-crate integration tests: the full GLADE pipeline against the
//! instrumented target programs — including the same synthesis driven
//! through the pooled process-oracle path (`glade worker` over batched
//! protocol frames) at several pool sizes, which must be byte-identical.

use glade_repro::core::{GladeBuilder, GladeConfig, Oracle, PooledProcessOracle};
use glade_repro::fuzz::{run_campaign, GrammarFuzzer, NaiveFuzzer};
use glade_repro::grammar::{grammar_to_text, Earley, Sampler};
use glade_repro::targets::programs::{target_by_name, Grep, Sed, Xml};
use glade_repro::targets::{Target, TargetOracle};
use rand::SeedableRng;

fn capped_config() -> GladeConfig {
    GladeConfig { max_queries: Some(120_000), ..GladeConfig::default() }
}

/// Synthesize a grammar for a target from its seeds; the grammar must parse
/// every seed (monotonicity) and achieve decent sample precision.
fn synthesize_and_check(target: &dyn Target, min_precision: f64) {
    let oracle = TargetOracle::new(target);
    let seeds = target.seeds();
    let result = GladeBuilder::from_config(capped_config())
        .synthesize(&seeds, &oracle)
        .expect("target accepts its own seeds");

    let parser = Earley::new(&result.grammar);
    for seed in &seeds {
        assert!(
            parser.accepts(seed),
            "{}: seed {:?} lost from the synthesized language",
            target.name(),
            String::from_utf8_lossy(seed)
        );
    }

    let sampler = Sampler::new(&result.grammar);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let n = 300;
    let mut valid = 0usize;
    for _ in 0..n {
        let s = sampler.sample(&mut rng).expect("productive grammar");
        if oracle.accepts(&s) {
            valid += 1;
        }
    }
    let precision = valid as f64 / n as f64;
    assert!(
        precision >= min_precision,
        "{}: sample precision {precision:.2} below {min_precision}",
        target.name()
    );
}

#[test]
fn synthesis_on_sed() {
    synthesize_and_check(&Sed, 0.7);
}

#[test]
fn synthesis_on_grep() {
    synthesize_and_check(&Grep, 0.7);
}

#[test]
fn synthesis_on_xml() {
    // XML's tag matching and attribute uniqueness are not context-free, so
    // free sampling from the synthesized CFG hits more invalid combinations
    // than for sed/grep (cf. the paper's <a a="" a=""> discussion, §8.3).
    synthesize_and_check(&Xml, 0.5);
}

#[test]
fn synthesis_on_every_target_keeps_seeds() {
    // Lighter-weight check across all eight targets: seeds always parse.
    for name in ["sed", "flex", "grep", "bison", "xml", "ruby", "python", "javascript"] {
        let target = target_by_name(name).expect("known target");
        let oracle = TargetOracle::new(target.as_ref());
        let seeds = target.seeds();
        let result = GladeBuilder::new()
            .max_queries(30_000)
            .character_generalization(false)
            .synthesize(&seeds, &oracle)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let parser = Earley::new(&result.grammar);
        for seed in &seeds {
            assert!(
                parser.accepts(seed),
                "{name}: seed {:?} not in synthesized language",
                String::from_utf8_lossy(seed)
            );
        }
    }
}

#[test]
fn xml_synthesis_through_pooled_async_path_is_byte_identical() {
    // The instrumented XML target's own seeds, synthesized once in
    // process and once over pools of 1, 2, and 8 `glade worker xml`
    // processes via the session API. The pooled async path (submission
    // queue, poll-multiplexed pipes, batched v2 frames) must change
    // nothing: grammar bytes, distinct queries, and failure accounting
    // all match.
    let xml = Xml;
    let seeds = xml.seeds();
    let config = || {
        GladeBuilder::new().max_queries(30_000).character_generalization(false).worker_threads(4)
    };
    let in_process_oracle = TargetOracle::new(&xml);
    let reference = config().synthesize(&seeds, &in_process_oracle).expect("valid seeds");
    for pool_size in [1usize, 2, 8] {
        let pooled_oracle = PooledProcessOracle::new(env!("CARGO_BIN_EXE_glade"))
            .arg("worker")
            .arg("xml")
            .pool_size(pool_size);
        let mut session = config().session(&pooled_oracle);
        let pooled = session.add_seeds(&seeds).expect("valid seeds");
        assert_eq!(
            grammar_to_text(&pooled.grammar),
            grammar_to_text(&reference.grammar),
            "pooled grammar drifted at pool_size={pool_size}"
        );
        assert_eq!(
            pooled.stats.unique_queries, reference.stats.unique_queries,
            "pool_size={pool_size}"
        );
        assert_eq!(pooled.stats.oracle_failures, 0, "pool_size={pool_size}");
    }
}

#[test]
fn grammar_fuzzer_beats_naive_on_xml_validity() {
    let xml = Xml;
    let oracle = TargetOracle::new(&xml);
    let seeds = xml.seeds();
    let synthesis = GladeBuilder::from_config(capped_config())
        .synthesize(&seeds, &oracle)
        .expect("valid seeds");

    let samples = 800;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut naive = NaiveFuzzer::new(seeds.clone());
    let naive_result = run_campaign(&xml, &mut naive, samples, &mut rng);

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut glade = GrammarFuzzer::new(synthesis.grammar, &seeds);
    let glade_result = run_campaign(&xml, &mut glade, samples, &mut rng);

    assert!(
        glade_result.valid_rate() > naive_result.valid_rate(),
        "glade {:.2} vs naive {:.2}",
        glade_result.valid_rate(),
        naive_result.valid_rate()
    );
    assert!(
        glade_result.valid_incremental_coverage() >= naive_result.valid_incremental_coverage(),
        "glade {:.3} vs naive {:.3}",
        glade_result.valid_incremental_coverage(),
        naive_result.valid_incremental_coverage()
    );
}

#[test]
fn synthesized_xml_grammar_has_figure5_shape() {
    // From a nested seed, greedy phase one learns the "misaligned"
    // repetition the paper shows in Figure 5 — the `>` of the outer tag
    // migrates into the repeated block (`<(a><a>…</)*a>…</a>`), which
    // generates the same strings for repeated blocks even though the
    // structure differs from the natural grammar.
    let xml = Xml;
    let oracle = TargetOracle::new(&xml);
    let result = GladeBuilder::from_config(capped_config())
        .synthesize(&[b"<a><a>x</a>y</a>".to_vec()], &oracle)
        .expect("valid seed");
    let parser = Earley::new(&result.grammar);
    // Zero repetitions of the inner block.
    assert!(parser.accepts(b"<a>y</a>"));
    // Two repetitions of the inner block (sibling elements).
    assert!(parser.accepts(b"<a><a>x</a><a>x</a>y</a>"));
    // Invalid structures stay out.
    assert!(!parser.accepts(b"<a><a>x</a>y"));
    assert!(!parser.accepts(b"<a></b>"));
}

#[test]
fn p1_ablation_never_invents_recursion() {
    let xml = Xml;
    let oracle = TargetOracle::new(&xml);
    let result = GladeBuilder::new()
        .phase2(false)
        .max_queries(60_000)
        .synthesize(&[b"<a><a>x</a>y</a>".to_vec()], &oracle)
        .expect("valid seed");
    // The phase-1 language is regular: its regex view equals the grammar.
    let parser = Earley::new(&result.grammar);
    let samples = Sampler::new(&result.grammar);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for _ in 0..100 {
        let s = samples.sample(&mut rng).expect("productive");
        assert!(result.regex.is_match(&s), "grammar/regex mismatch on {s:?}");
        assert!(parser.accepts(&s));
    }
}
