//! End-to-end test for the `glade serve` daemon: a real server process and
//! real `glade client` processes talking over a unix socket, with the
//! grammars pinned byte-identical to local `glade synth` runs on the same
//! seeds — the CLI-level version of the determinism pin that
//! `crates/core/tests/serve.rs` checks in-process.

#![cfg(any(target_os = "linux", target_os = "macos"))]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-test timeout guard, as in the core protocol suites: a wedged accept
/// loop must fail the job fast instead of hanging it.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(name: &'static str) -> Self {
        let secs = std::env::var("GLADE_TEST_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120u64);
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(secs);
            while Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            eprintln!("watchdog: `{name}` still running after {secs}s — the serve loop is hung");
            std::process::exit(99);
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Kills the server process on every exit path.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn glade() -> Command {
    Command::new(env!("CARGO_BIN_EXE_glade"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glade-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn wait_for_socket(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        assert!(Instant::now() < deadline, "server never bound {}", path.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// `glade synth` on a built-in target: the local baseline.
fn synth_local(target: &str, seed: &Path, out: &Path) {
    let status = glade()
        .args(["synth", "--target", target, "--max-queries", "20000", "--seed"])
        .arg(seed)
        .arg("-o")
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run glade synth");
    assert!(status.success(), "glade synth --target {target} failed");
}

/// Spawns `glade client` against the server for the same target and seed.
fn spawn_client(socket: &Path, target: &str, seed: &Path, out: &Path, events: bool) -> Child {
    let mut cmd = glade();
    cmd.args(["client", "--socket"])
        .arg(socket)
        .args(["--oracle", &format!("target:{target}"), "--max-queries", "20000", "--seed"])
        .arg(seed)
        .arg("-o")
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if !events {
        cmd.arg("--no-events");
    }
    cmd.spawn().expect("spawn glade client")
}

#[test]
fn concurrent_clients_match_local_synth_byte_for_byte() {
    let _watchdog = Watchdog::arm("concurrent_clients_match_local_synth_byte_for_byte");
    let dir = scratch_dir("determinism");
    let socket = dir.join("serve.sock");
    let seed = dir.join("seed.xml");
    std::fs::write(&seed, b"<a>hi</a>").expect("write seed");

    // Two real targets, as in the acceptance criteria; both accept the
    // same seed, which keeps the runs short and the comparison sharp.
    let targets = ["toy-xml", "xml"];
    for target in targets {
        synth_local(target, &seed, &dir.join(format!("local-{target}.txt")));
    }

    let server = ServerGuard(
        glade()
            .args(["serve", "--socket"])
            .arg(&socket)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn glade serve"),
    );
    wait_for_socket(&socket);

    // Both clients run concurrently against the one server; one keeps the
    // event stream on so the EVENT path is exercised end to end.
    let clients: Vec<(&str, Child)> = targets
        .iter()
        .enumerate()
        .map(|(i, target)| {
            let out = dir.join(format!("served-{target}.txt"));
            (*target, spawn_client(&socket, target, &seed, &out, i == 0))
        })
        .collect();
    for (target, mut client) in clients {
        let status = client.wait().expect("wait for client");
        assert!(status.success(), "glade client for {target} failed");
    }

    for target in targets {
        let local = std::fs::read(dir.join(format!("local-{target}.txt"))).expect("local grammar");
        let served =
            std::fs::read(dir.join(format!("served-{target}.txt"))).expect("served grammar");
        assert!(!local.is_empty(), "{target}: local grammar must be non-trivial");
        assert_eq!(
            local, served,
            "{target}: the served grammar must be byte-identical to local synth"
        );
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_campaign_resumes_byte_identical_on_restart() {
    let _watchdog = Watchdog::arm("sigkilled_campaign_resumes_byte_identical_on_restart");
    let dir = scratch_dir("crash-resume");
    let socket = dir.join("serve.sock");
    let cache_dir = dir.join("caches");
    let seed = dir.join("seed.xml");
    std::fs::write(&seed, b"<a>hi</a>").expect("write seed");

    // The uninterrupted local baseline the resumed grammar must match.
    synth_local("toy-xml", &seed, &dir.join("local.txt"));

    let mut server = glade()
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--cache-dir")
        .arg(&cache_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn glade serve");
    wait_for_socket(&socket);

    // Drive the campaign with the in-process client so the server can be
    // SIGKILLed while the campaign is still open (no CLOSE ever sent —
    // exactly what a crashed deployment looks like).
    use glade_repro::core::serve::{OpenRequest, ServeClient};
    let mut request = OpenRequest::new("target:toy-xml");
    request.cache = true;
    let mut client = ServeClient::connect(&socket).expect("connect");
    let (campaign, _fingerprint) = client.open(&request).expect("open");
    let first = client.synthesize(&[b"<a>hi</a>".to_vec()], |_| {}).expect("first batch");
    assert_eq!(first.stats.unique_queries, 965, "golden memo-on unique pin");
    assert_eq!(first.stats.total_queries, 985, "golden memo-on total pin");

    // SIGKILL mid-campaign: no drain, no flush, no goodbye.
    server.kill().expect("SIGKILL glade serve");
    let _ = server.wait();
    drop(client);

    // Restart over the same cache dir. The resume client starts before
    // waiting for the socket, exercising --connect-retries for real.
    let server = ServerGuard(
        glade()
            .args(["serve", "--socket"])
            .arg(&socket)
            .arg("--cache-dir")
            .arg(&cache_dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("respawn glade serve"),
    );
    let resumed_out = dir.join("resumed.txt");
    let output = glade()
        .args(["client", "--socket"])
        .arg(&socket)
        .args([
            "--resume",
            &campaign.to_string(),
            "--connect-retries",
            "40",
            "--connect-backoff",
            "0.05",
            "--no-events",
            "-o",
        ])
        .arg(&resumed_out)
        .output()
        .expect("run glade client --resume");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "resume client failed: {stderr}");
    assert!(
        stderr.contains(&format!("campaign {campaign} resumed")),
        "the client reports the resumed campaign: {stderr}"
    );
    assert!(
        stderr.contains("synthesized with 965 oracle queries (0 new this run)"),
        "the replay keeps the golden pin and re-pays no queries: {stderr}"
    );

    let local = std::fs::read(dir.join("local.txt")).expect("local grammar");
    let resumed = std::fs::read(&resumed_out).expect("resumed grammar");
    assert!(!local.is_empty(), "the baseline grammar must be non-trivial");
    assert_eq!(local, resumed, "the resumed grammar is byte-identical to an uninterrupted run");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_cleanly_and_unlinks_the_socket() {
    let _watchdog = Watchdog::arm("sigterm_drains_cleanly_and_unlinks_the_socket");
    let dir = scratch_dir("drain");
    let socket = dir.join("serve.sock");
    let seed = dir.join("seed.xml");
    std::fs::write(&seed, b"<a>hi</a>").expect("write seed");

    let server = ServerGuard(
        glade()
            .args(["serve", "--socket"])
            .arg(&socket)
            .args(["--drain-timeout", "30"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn glade serve"),
    );
    wait_for_socket(&socket);

    // Warm the server with one complete campaign first, so the drain runs
    // on a server that has actually served.
    let out = dir.join("served.txt");
    let mut client = spawn_client(&socket, "toy-xml", &seed, &out, false);
    assert!(client.wait().expect("wait for client").success(), "warm-up campaign failed");

    // One SIGTERM must be enough: drain, then exit 0 on its own.
    let mut server = server;
    let pid = server.0.id().to_string();
    let sent = Command::new("kill").args(["-TERM", &pid]).status().expect("send SIGTERM");
    assert!(sent.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit after SIGTERM");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "a drained server exits cleanly, got {status}");
    assert!(!socket.exists(), "the drained server unlinks its socket");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_reports_server_side_seed_rejection() {
    let _watchdog = Watchdog::arm("client_reports_server_side_seed_rejection");
    let dir = scratch_dir("rejection");
    let socket = dir.join("serve.sock");
    let seed = dir.join("seed.bad");
    std::fs::write(&seed, b"<a>HI</a>").expect("write seed");

    let server = ServerGuard(
        glade()
            .args(["serve", "--socket"])
            .arg(&socket)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn glade serve"),
    );
    wait_for_socket(&socket);

    let output = glade()
        .args(["client", "--socket"])
        .arg(&socket)
        .args(["--oracle", "target:toy-xml", "--no-events", "--seed"])
        .arg(&seed)
        .output()
        .expect("run glade client");
    assert!(!output.status.success(), "a rejected seed must fail the client");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("reject"), "stderr names the rejection: {stderr}");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
