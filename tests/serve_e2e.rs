//! End-to-end test for the `glade serve` daemon: a real server process and
//! real `glade client` processes talking over a unix socket, with the
//! grammars pinned byte-identical to local `glade synth` runs on the same
//! seeds — the CLI-level version of the determinism pin that
//! `crates/core/tests/serve.rs` checks in-process.

#![cfg(any(target_os = "linux", target_os = "macos"))]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-test timeout guard, as in the core protocol suites: a wedged accept
/// loop must fail the job fast instead of hanging it.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(name: &'static str) -> Self {
        let secs = std::env::var("GLADE_TEST_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120u64);
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(secs);
            while Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            eprintln!("watchdog: `{name}` still running after {secs}s — the serve loop is hung");
            std::process::exit(99);
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Kills the server process on every exit path.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn glade() -> Command {
    Command::new(env!("CARGO_BIN_EXE_glade"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glade-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn wait_for_socket(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        assert!(Instant::now() < deadline, "server never bound {}", path.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// `glade synth` on a built-in target: the local baseline.
fn synth_local(target: &str, seed: &Path, out: &Path) {
    let status = glade()
        .args(["synth", "--target", target, "--max-queries", "20000", "--seed"])
        .arg(seed)
        .arg("-o")
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run glade synth");
    assert!(status.success(), "glade synth --target {target} failed");
}

/// Spawns `glade client` against the server for the same target and seed.
fn spawn_client(socket: &Path, target: &str, seed: &Path, out: &Path, events: bool) -> Child {
    let mut cmd = glade();
    cmd.args(["client", "--socket"])
        .arg(socket)
        .args(["--oracle", &format!("target:{target}"), "--max-queries", "20000", "--seed"])
        .arg(seed)
        .arg("-o")
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if !events {
        cmd.arg("--no-events");
    }
    cmd.spawn().expect("spawn glade client")
}

#[test]
fn concurrent_clients_match_local_synth_byte_for_byte() {
    let _watchdog = Watchdog::arm("concurrent_clients_match_local_synth_byte_for_byte");
    let dir = scratch_dir("determinism");
    let socket = dir.join("serve.sock");
    let seed = dir.join("seed.xml");
    std::fs::write(&seed, b"<a>hi</a>").expect("write seed");

    // Two real targets, as in the acceptance criteria; both accept the
    // same seed, which keeps the runs short and the comparison sharp.
    let targets = ["toy-xml", "xml"];
    for target in targets {
        synth_local(target, &seed, &dir.join(format!("local-{target}.txt")));
    }

    let server = ServerGuard(
        glade()
            .args(["serve", "--socket"])
            .arg(&socket)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn glade serve"),
    );
    wait_for_socket(&socket);

    // Both clients run concurrently against the one server; one keeps the
    // event stream on so the EVENT path is exercised end to end.
    let clients: Vec<(&str, Child)> = targets
        .iter()
        .enumerate()
        .map(|(i, target)| {
            let out = dir.join(format!("served-{target}.txt"));
            (*target, spawn_client(&socket, target, &seed, &out, i == 0))
        })
        .collect();
    for (target, mut client) in clients {
        let status = client.wait().expect("wait for client");
        assert!(status.success(), "glade client for {target} failed");
    }

    for target in targets {
        let local = std::fs::read(dir.join(format!("local-{target}.txt"))).expect("local grammar");
        let served =
            std::fs::read(dir.join(format!("served-{target}.txt"))).expect("served grammar");
        assert!(!local.is_empty(), "{target}: local grammar must be non-trivial");
        assert_eq!(
            local, served,
            "{target}: the served grammar must be byte-identical to local synth"
        );
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_reports_server_side_seed_rejection() {
    let _watchdog = Watchdog::arm("client_reports_server_side_seed_rejection");
    let dir = scratch_dir("rejection");
    let socket = dir.join("serve.sock");
    let seed = dir.join("seed.bad");
    std::fs::write(&seed, b"<a>HI</a>").expect("write seed");

    let server = ServerGuard(
        glade()
            .args(["serve", "--socket"])
            .arg(&socket)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn glade serve"),
    );
    wait_for_socket(&socket);

    let output = glade()
        .args(["client", "--socket"])
        .arg(&socket)
        .args(["--oracle", "target:toy-xml", "--no-events", "--seed"])
        .arg(&seed)
        .output()
        .expect("run glade client");
    assert!(!output.status.success(), "a rejected seed must fail the client");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("reject"), "stderr names the rejection: {stderr}");

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
