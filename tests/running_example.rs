//! The paper's running example (Figures 1–3), checked step by step against
//! the published derivation — and re-pinned through the pooled
//! process-oracle path (the `glade worker` protocol harness) to prove
//! real-process execution changes nothing.

use glade_repro::core::{CachingOracle, GladeBuilder, PooledProcessOracle};
use glade_repro::eval::evaluate_grammar;
use glade_repro::grammar::Earley;
use glade_repro::targets::languages::toy_xml;
use rand::SeedableRng;

#[test]
fn figure2_phase1_regex() {
    // Steps R1–R9: seed <a>hi</a> → (<a>(h+i)*</a>)*.
    let lang = toy_xml();
    let oracle = lang.oracle();
    let result = GladeBuilder::new()
        .character_generalization(false)
        .phase2(false)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .unwrap();
    // (h+i) prints as the merged class [hi].
    assert_eq!(result.regex.to_string(), "(<a>[hi]*</a>)*");
}

#[test]
fn figure2_phase2_checks_and_merge() {
    // Steps C1–C2: the two repetition subexpressions merge after checks
    // "hihi" and "<a><a>hi</a><a>hi</a></a>" pass, yielding
    // A → (<a>A</a>)* , A → (h+i)*.
    let lang = toy_xml();
    let oracle = lang.oracle();
    let result = GladeBuilder::new()
        .character_generalization(false)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .unwrap();
    assert_eq!(result.stats.star_count, 2);
    assert_eq!(result.stats.merge_pairs_tried, 1);
    assert_eq!(result.stats.merges_accepted, 1);

    let parser = Earley::new(&result.grammar);
    // The two phase-2 checks themselves are members of the merged language.
    assert!(parser.accepts(b"hihi"));
    assert!(parser.accepts(b"<a><a>hi</a><a>hi</a></a>"));
    // Recursion to arbitrary depth.
    assert!(parser.accepts(b"<a><a><a><a>h</a></a></a></a>"));
    // No overgeneralization.
    assert!(!parser.accepts(b"<a><a>hi</a>"));
    assert!(!parser.accepts(b"h<a>"));
}

#[test]
fn section62_character_generalization() {
    // Section 6.2: h generalizes to a..z (checks <a>ai</a>, <a>a</a> pass);
    // < does not generalize to a (check aa>hi</a> fails). The final
    // language equals L(C_XML) exactly.
    let lang = toy_xml();
    let oracle = lang.oracle();
    let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();

    let parser = Earley::new(&result.grammar);
    for member in
        [&b""[..], b"zz", b"<a>qrstuv</a>", b"<a><a>any</a>letters</a>", b"<a></a><a></a>"]
    {
        assert!(parser.accepts(member), "should accept {:?}", String::from_utf8_lossy(member));
    }
    for nonmember in [&b"aa>hi</a>"[..], b"<a>HI</a>", b"<a>h i</a>", b"<b></b>", b"<a>1</a>"] {
        assert!(
            !parser.accepts(nonmember),
            "should reject {:?}",
            String::from_utf8_lossy(nonmember)
        );
    }

    // Quantitatively: F1 = 1.0 against the target (the paper's
    // L(Ĉ'_XML) = L(C_XML) claim).
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let q = evaluate_grammar(&result.grammar, lang.grammar(), &oracle, 400, &mut rng);
    assert_eq!(q.precision, 1.0, "{q:?}");
    assert_eq!(q.recall, 1.0, "{q:?}");
}

#[test]
fn oracle_query_counts_are_modest() {
    // Sanity on the complexity claims (Sections 4.4, 5.5): the running
    // example needs on the order of hundreds of queries, not millions.
    let lang = toy_xml();
    let oracle = CachingOracle::new(lang.oracle());
    let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
    assert!(result.stats.unique_queries < 5_000, "{}", result.stats.unique_queries);
    assert!(oracle.total_queries() > 0);
}

#[test]
fn running_example_through_pooled_async_path_is_byte_identical() {
    // The full Figures 1–3 run posed over pipes to pools of 1, 2, and 8
    // `glade worker` processes (batched v2 frames, event-driven dispatch)
    // via the session API: grammar bytes, distinct queries, and failure
    // accounting must exactly match the in-process oracle.
    let lang = toy_xml();
    let in_process_oracle = lang.oracle();
    let seeds = vec![b"<a>hi</a>".to_vec()];
    let reference = GladeBuilder::new().synthesize(&seeds, &in_process_oracle).unwrap();
    for pool_size in [1usize, 2, 8] {
        let pooled_oracle = PooledProcessOracle::new(env!("CARGO_BIN_EXE_glade"))
            .arg("worker")
            .arg("toy-xml")
            .pool_size(pool_size);
        let mut session = GladeBuilder::new()
            .oracle_fingerprint(pooled_oracle.fingerprint())
            .session(&pooled_oracle);
        let pooled = session.add_seeds(&seeds).unwrap();
        assert_eq!(
            glade_repro::grammar::grammar_to_text(&pooled.grammar),
            glade_repro::grammar::grammar_to_text(&reference.grammar),
            "pooled grammar drifted at pool_size={pool_size}"
        );
        assert_eq!(
            pooled.stats.unique_queries, reference.stats.unique_queries,
            "pool_size={pool_size}"
        );
        assert_eq!(pooled.stats.total_queries, reference.stats.total_queries);
        assert_eq!(pooled.stats.oracle_failures, 0, "pool_size={pool_size}");
    }
}

#[test]
fn multiple_seeds_reproduce_section7_recovery() {
    // Section 7: the <a/> extension is learned from two seeds — fed
    // incrementally through one session, as an active-learning loop would.
    let oracle =
        glade_repro::core::FnOracle::new(glade_repro::core::testing::xml_like_with_self_closing);
    let mut session = GladeBuilder::new().session(&oracle);
    session.add_seeds(&[b"<a/>".to_vec()]).unwrap();
    let result = session.add_seeds(&[b"<a>hi</a>".to_vec()]).unwrap();
    let parser = Earley::new(&result.grammar);
    assert!(parser.accepts(b"<a><a/></a>"));
    assert!(parser.accepts(b"<a><a><a/>hi</a></a>"));
    assert!(!parser.accepts(b"<a/"));
}
