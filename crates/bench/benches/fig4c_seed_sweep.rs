//! Figure 4 (c): GLADE's precision, recall, and running time on the XML
//! language as the number of seed inputs grows (paper: 0–50 seeds).
//!
//! Paper shape to expect: precision stays ≈1 throughout; recall climbs
//! quickly with the first seeds and saturates; running time grows modestly
//! (sub-linearly, thanks to the Section 6.1 redundant-seed skip).

use glade_bench::{banner, Scale};
use glade_eval::seed_sweep;
use glade_targets::languages::xml;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let config = scale.eval_config();
    let max = scale.seeds.max(5);
    let counts: Vec<usize> = (1..=5).map(|k| k * max / 5).filter(|&c| c > 0).collect();

    banner(&format!("Figure 4(c): XML precision/recall/time vs #seeds (counts {counts:?})"));

    let language = xml();
    let mut rng = StdRng::seed_from_u64(0xF164C);
    let points = seed_sweep(&language, &counts, &config, &mut rng);

    println!("\n{:>7} {:>10} {:>8} {:>10}", "#seeds", "precision", "recall", "time(s)");
    for p in &points {
        println!(
            "{:>7} {:>10.3} {:>8.3} {:>10.2}",
            p.num_seeds,
            p.precision,
            p.recall,
            p.time.as_secs_f64()
        );
    }
    println!("\nPaper reference (Fig 4c): precision ≈ 1 throughout; recall rises to ≈1");
    println!("well before 50 seeds; time grows gently with the seed count.");
}
