//! Figure 4 (a) and (b): F1 score and running time of L-Star, RPNI,
//! GLADE-P1, and GLADE on the four handwritten target languages
//! (URL, Grep, Lisp, XML).
//!
//! Paper shape to expect: GLADE near 1.0 F1 on all four languages with
//! GLADE-P1 5–10% behind, while L-Star and RPNI fail to learn most of the
//! languages (very low precision or recall); GLADE's running time is orders
//! of magnitude below the baselines' timeouts.

use glade_bench::{banner, mean, Scale};
use glade_eval::{run_learner, Learner};
use glade_targets::languages::section82_languages;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let config = scale.eval_config();
    banner(&format!(
        "Figure 4(a)+(b): language inference comparison \
         ({} seeds, {} eval samples, {} run(s), {:?} budget)",
        config.num_seeds, config.eval_samples, scale.runs, config.time_limit
    ));

    println!(
        "\n{:<6} {:<10} {:>10} {:>8} {:>8} {:>10} {:>8}",
        "lang", "learner", "precision", "recall", "F1", "time(s)", "timeout"
    );
    for language in section82_languages() {
        for learner in Learner::all() {
            let mut f1s = Vec::new();
            let mut precs = Vec::new();
            let mut recs = Vec::new();
            let mut times = Vec::new();
            let mut any_timeout = false;
            for run in 0..scale.runs {
                let mut rng = StdRng::seed_from_u64(0xF164A + run as u64);
                let row = run_learner(&language, learner, &config, &mut rng);
                f1s.push(row.f1());
                precs.push(row.quality.precision);
                recs.push(row.quality.recall);
                times.push(row.time.as_secs_f64());
                any_timeout |= row.timed_out;
            }
            println!(
                "{:<6} {:<10} {:>10.3} {:>8.3} {:>8.3} {:>10.2} {:>8}",
                language.name(),
                learner.name(),
                mean(&precs),
                mean(&recs),
                mean(&f1s),
                mean(&times),
                if any_timeout { "yes" } else { "no" }
            );
        }
        println!();
    }

    println!("Paper reference (Fig 4a): GLADE ≈ 1.0 F1 everywhere; P1 close behind;");
    println!("L-Star decent only on grep; RPNI fails on all four.");
}
