//! Figure 6: the program table — implementation size, seed-input size, and
//! GLADE's synthesis time for each of the eight target programs.

use glade_bench::banner;
use glade_core::{GladeBuilder, GladeConfig};
use glade_targets::programs::all_targets;
use glade_targets::TargetOracle;

fn main() {
    banner("Figure 6: target programs, seeds, and synthesis time");

    println!(
        "\n{:<12} {:>10} {:>12} {:>12} {:>10} {:>9}",
        "program", "src lines", "seed lines", "queries", "time(s)", "cov pts"
    );
    for target in all_targets() {
        let seeds = target.seeds();
        let seed_lines: usize =
            seeds.iter().map(|s| s.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count()).sum();
        let oracle = TargetOracle::new(target.as_ref());
        let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
        let start = std::time::Instant::now();
        let result = GladeBuilder::from_config(config)
            .synthesize(&seeds, &oracle)
            .expect("targets accept their seeds");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>10.2} {:>9}",
            target.name(),
            target.source_lines(),
            seed_lines,
            result.stats.unique_queries,
            secs,
            target.coverable_lines(),
        );
    }

    println!("\nPaper reference (Fig 6): programs from 2K (sed) to 156K (js) lines;");
    println!("seed suites of 3–267 lines; synthesis from 0.17 min (grep) to 269 min");
    println!("(python) on the real interpreters. Our stand-ins are smaller, so the");
    println!("absolute times shrink accordingly; the ordering by seed size holds.");
}
