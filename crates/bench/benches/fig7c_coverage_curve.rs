//! Figure 7 (c): valid normalized incremental coverage as a function of
//! the number of generated samples, for the Python front-end.
//!
//! Paper shape to expect: GLADE rises quickly and keeps finding new lines;
//! the naive fuzzer and afl plateau early and far lower (values normalized
//! by the naive fuzzer's final coverage).

use glade_bench::{banner, Scale};
use glade_core::{GladeBuilder, GladeConfig};
use glade_fuzz::{coverage_curve, AflFuzzer, GrammarFuzzer, NaiveFuzzer};
use glade_targets::programs::Python;
use glade_targets::{Target, TargetOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let total = scale.fuzz_samples;
    let checkpoints: Vec<usize> = (1..=10).map(|k| k * total / 10).filter(|&c| c > 0).collect();

    banner(&format!("Figure 7(c): coverage vs #samples on python (total {total})"));

    let python = Python;
    let seeds = python.seeds();
    let oracle = TargetOracle::new(&python);
    let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
    let synthesis =
        GladeBuilder::from_config(config).synthesize(&seeds, &oracle).expect("seeds valid");

    let mut rng = StdRng::seed_from_u64(0xF17C);
    let mut naive = NaiveFuzzer::new(seeds.clone());
    let naive_curve = coverage_curve(&python, &mut naive, &checkpoints, &mut rng);

    let mut rng = StdRng::seed_from_u64(0xF17C);
    let mut afl = AflFuzzer::new(seeds.clone());
    let afl_curve = coverage_curve(&python, &mut afl, &checkpoints, &mut rng);

    let mut rng = StdRng::seed_from_u64(0xF17C);
    let mut glade = GrammarFuzzer::new(synthesis.grammar, &seeds);
    let glade_curve = coverage_curve(&python, &mut glade, &checkpoints, &mut rng);

    // Normalize by the naive fuzzer's final value (the paper's convention).
    let base = naive_curve.last().map(|&(_, v)| v).unwrap_or(0.0).max(f64::EPSILON);

    println!("\n{:>9} {:>9} {:>9} {:>9}", "#samples", "naive", "afl", "glade");
    for i in 0..checkpoints.len() {
        println!(
            "{:>9} {:>9.2} {:>9.2} {:>9.2}",
            naive_curve[i].0,
            naive_curve[i].1 / base,
            afl_curve[i].1 / base,
            glade_curve[i].1 / base,
        );
    }
    println!("\nPaper reference (Fig 7c): GLADE's curve dominates, reaching ~2.5x the");
    println!("naive fuzzer's final coverage and still climbing at 50,000 samples.");
}
