//! Figure 5: example grammars synthesized by GLADE for simplified target
//! languages, shown alongside the targets.
//!
//! The paper presents simplified URL/Grep/Lisp/XML fragments and the
//! grammars GLADE synthesizes for them from representative seeds, noting
//! that the synthesized structure may legally differ from the target's
//! (e.g. the XML `>` migrating between productions).

use glade_bench::banner;
use glade_core::{GladeBuilder, GladeConfig};
use glade_targets::languages::{section82_languages, Language};
use glade_targets::GrammarOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Representative seed inputs per language (as in the figure, a small
/// handpicked set rather than random samples).
fn representative_seeds(language: &Language) -> Vec<Vec<u8>> {
    match language.name() {
        "url" => vec![b"http://foo.com".to_vec(), b"https://www.ab.org/p?k=v".to_vec()],
        "grep" => vec![b"a*b".to_vec(), b"\\(x\\|y\\)".to_vec(), b"[a-f]*".to_vec()],
        "lisp" => vec![b"(+ 1 2)".to_vec(), b"(f (g x))".to_vec()],
        "xml" => vec![b"<a x=\"1\">t</a>".to_vec(), b"<a><b>u</b>v</a>".to_vec()],
        other => panic!("unknown language {other}"),
    }
}

fn main() {
    banner("Figure 5: example synthesized grammars");

    for language in section82_languages() {
        let seeds = representative_seeds(&language);
        println!("\n--- target language: {} ---", language.name());
        println!("target grammar:");
        for line in language.grammar().to_string().lines().take(12) {
            println!("    {line}");
        }
        let oracle: GrammarOracle = language.oracle();
        let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
        match GladeBuilder::from_config(config).synthesize(&seeds, &oracle) {
            Ok(result) => {
                println!(
                    "synthesized grammar ({} queries, {:?}):",
                    result.stats.unique_queries,
                    result.stats.total_time()
                );
                for line in result.grammar.to_string().lines() {
                    println!("    {line}");
                }
                // Spot-check the synthesized language on a fresh sample.
                let sampler = glade_grammar::Sampler::new(&result.grammar);
                let mut rng = StdRng::seed_from_u64(5);
                let mut ok = 0;
                let n = 200;
                for _ in 0..n {
                    if let Some(s) = sampler.sample(&mut rng) {
                        if glade_core::Oracle::accepts(&oracle, &s) {
                            ok += 1;
                        }
                    }
                }
                println!("sample precision: {:.2}", ok as f64 / n as f64);
            }
            Err(e) => println!("synthesis failed: {e}"),
        }
    }

    println!("\nPaper reference (Fig 5): synthesized grammars capture the targets'");
    println!("structure, possibly reorganized (e.g. XML's `>` moved across rules).");
}
