//! Ablation study of GLADE's design choices (beyond the paper's own P1
//! ablation in Figure 4): phase 2, character generalization, and the
//! Section 6.1 redundant-seed skip are toggled independently, measuring
//! quality, oracle cost, and time on the XML target language.

use glade_bench::{banner, Scale};
use glade_core::{GladeBuilder, GladeConfig};
use glade_eval::{evaluate_grammar, sample_seeds};
use glade_targets::languages::{toy_xml, xml};
use glade_targets::Language;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn variants() -> Vec<(&'static str, GladeConfig)> {
    vec![
        ("full", GladeConfig::default()),
        ("no-phase2 (P1)", GladeConfig::phase1_only()),
        ("no-chargen", GladeConfig::without_char_generalization()),
        ("no-seed-skip", GladeConfig { skip_redundant_seeds: false, ..GladeConfig::default() }),
        (
            "minimal (P1, no-chargen)",
            GladeConfig {
                phase2: false,
                character_generalization: false,
                ..GladeConfig::default()
            },
        ),
    ]
}

fn run_language(language: &Language, seeds: usize, eval_samples: usize) {
    println!("\n--- language: {} ({} seeds) ---", language.name(), seeds);
    println!(
        "{:<26} {:>10} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "variant", "precision", "recall", "F1", "queries", "time(ms)", "seeds"
    );
    for (name, config) in variants() {
        let mut rng = StdRng::seed_from_u64(0xAB1A);
        let seed_inputs = sample_seeds(language, seeds, &mut rng);
        let oracle = language.oracle();
        let start = std::time::Instant::now();
        let result = GladeBuilder::from_config(config)
            .synthesize(&seed_inputs, &oracle)
            .expect("seeds valid");
        let elapsed = start.elapsed();
        let q =
            evaluate_grammar(&result.grammar, language.grammar(), &oracle, eval_samples, &mut rng);
        println!(
            "{:<26} {:>10.3} {:>8.3} {:>8.3} {:>9} {:>9.1} {:>5}+{:<2}",
            name,
            q.precision,
            q.recall,
            q.f1(),
            result.stats.unique_queries,
            elapsed.as_secs_f64() * 1e3,
            result.stats.seeds_used,
            result.stats.seeds_skipped,
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablations: phase 2 / character generalization / seed skip");

    run_language(&toy_xml(), scale.seeds.min(10), scale.eval_samples);
    run_language(&xml(), scale.seeds, scale.eval_samples);

    println!("\nExpected shape: phase 2 buys recall (recursion); character");
    println!("generalization buys recall at the cost of extra queries; the seed");
    println!("skip cuts queries and time without changing quality.");
}
