//! Criterion micro-benchmarks of the synthesis pipeline and its substrates.
//!
//! These back the timing columns of Figures 4(b) and 6 with statistically
//! robust per-component numbers: phase-one generalization, character
//! generalization, the full pipeline, Earley parsing, and grammar sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glade_core::{GladeBuilder, GladeConfig};
use glade_grammar::{Earley, Sampler};
use glade_targets::languages::toy_xml;
use glade_targets::programs::{Grep, Sed, Xml};
use glade_targets::{Target, TargetOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);

    group.bench_function("toy_xml/full", |b| {
        let lang = toy_xml();
        let oracle = lang.oracle();
        b.iter(|| {
            GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).expect("valid seed")
        })
    });

    group.bench_function("toy_xml/phase1_only", |b| {
        let lang = toy_xml();
        let oracle = lang.oracle();
        let config = GladeConfig {
            phase2: false,
            character_generalization: false,
            ..GladeConfig::default()
        };
        b.iter(|| {
            GladeBuilder::from_config(config.clone())
                .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
                .expect("valid seed")
        })
    });

    for (name, target) in [("sed", &Sed as &dyn Target), ("grep", &Grep), ("xml", &Xml)] {
        group.bench_function(format!("program/{name}"), |b| {
            let oracle = TargetOracle::new(target);
            let seeds = target.seeds();
            let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
            b.iter(|| {
                GladeBuilder::from_config(config.clone())
                    .synthesize(&seeds, &oracle)
                    .expect("valid seeds")
            })
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    // Earley parsing of a synthesized grammar.
    let xml = Xml;
    let oracle = TargetOracle::new(&xml);
    let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
    let synthesis =
        GladeBuilder::from_config(config).synthesize(&xml.seeds(), &oracle).expect("valid");
    let grammar = synthesis.grammar;
    let doc = b"<root a=\"1\"><b/>text<c x='y'>&lt;</c></root>".to_vec();

    group.bench_function("earley/accepts_seed", |b| {
        let parser = Earley::new(&grammar);
        b.iter(|| parser.accepts(&doc))
    });

    group.bench_function("earley/parse_tree", |b| {
        let parser = Earley::new(&grammar);
        b.iter(|| parser.parse(&doc))
    });

    group.bench_function("sampler/xml_grammar", |b| {
        let sampler = Sampler::new(&grammar);
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| sampler.sample(&mut rng),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("target/xml_run", |b| b.iter(|| xml.run(&doc)));

    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_substrate);
criterion_main!(benches);
