//! Figure 7 (a) and (b): valid normalized incremental coverage of the
//! naive fuzzer, the afl-like fuzzer, and GLADE on the eight target
//! programs — and, for five of them, the handwritten-grammar / test-suite
//! upper-bound proxies.
//!
//! Paper shape to expect (7a): GLADE ≥ both baselines on all programs
//! except the simple-format ones (grep ≈, sed slightly below); 1.3×–7×
//! over naive elsewhere. (7b): GLADE approaches the handwritten-grammar
//! coverage for grep/xml and recovers a sizable fraction of the test-suite
//! coverage for python/ruby/js.

use glade_bench::{banner, mean, Scale};
use glade_core::{GladeBuilder, GladeConfig};
use glade_fuzz::{replay_corpus, run_campaign, AflFuzzer, GrammarFuzzer, NaiveFuzzer};
use glade_grammar::Sampler;
use glade_targets::programs::all_targets;
use glade_targets::{languages, Target, TargetOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn synthesize(target: &dyn Target) -> glade_core::Synthesis {
    let oracle = TargetOracle::new(target);
    let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
    GladeBuilder::from_config(config)
        .synthesize(&target.seeds(), &oracle)
        .expect("targets accept their seeds")
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Figure 7(a): valid normalized incremental coverage \
         ({} samples/fuzzer, {} run(s))",
        scale.fuzz_samples, scale.runs
    ));

    println!(
        "\n{:<12} {:>9} {:>9} {:>9} | {:>9} {:>9} (valid rate)",
        "program", "naive", "afl", "glade", "afl/nv", "glade/nv"
    );

    let mut part_b: Vec<(String, f64, f64)> = Vec::new(); // (name, glade_norm, upper_norm)

    for target in all_targets() {
        let seeds = target.seeds();
        let synthesis = synthesize(target.as_ref());

        let mut naive_cov = Vec::new();
        let mut afl_cov = Vec::new();
        let mut glade_cov = Vec::new();
        let mut naive_rate = Vec::new();
        let mut afl_rate = Vec::new();
        let mut glade_rate = Vec::new();

        for run in 0..scale.runs {
            let base_seed = 0xF17_000 + run as u64;

            let mut rng = StdRng::seed_from_u64(base_seed);
            let mut naive = NaiveFuzzer::new(seeds.clone());
            let r = run_campaign(target.as_ref(), &mut naive, scale.fuzz_samples, &mut rng);
            naive_cov.push(r.valid_incremental_coverage());
            naive_rate.push(r.valid_rate());

            let mut rng = StdRng::seed_from_u64(base_seed);
            let mut afl = AflFuzzer::new(seeds.clone());
            let r = run_campaign(target.as_ref(), &mut afl, scale.fuzz_samples, &mut rng);
            afl_cov.push(r.valid_incremental_coverage());
            afl_rate.push(r.valid_rate());

            let mut rng = StdRng::seed_from_u64(base_seed);
            let mut glade = GrammarFuzzer::new(synthesis.grammar.clone(), &seeds);
            let r = run_campaign(target.as_ref(), &mut glade, scale.fuzz_samples, &mut rng);
            glade_cov.push(r.valid_incremental_coverage());
            glade_rate.push(r.valid_rate());
        }

        let (n, a, g) = (mean(&naive_cov), mean(&afl_cov), mean(&glade_cov));
        let norm = |x: f64| {
            if n > 0.0 {
                format!("{:>8.2}x", x / n)
            } else if x > 0.0 {
                format!("{:>9}", "inf")
            } else {
                // Nobody found new valid coverage (e.g. the seeds already
                // exercise every line reachable by valid inputs).
                format!("{:>9}", "n/a")
            }
        };
        println!(
            "{:<12} {:>9.4} {:>9.4} {:>9.4} | {} {}  ({:.2}/{:.2}/{:.2})",
            target.name(),
            n,
            a,
            g,
            norm(a),
            norm(g),
            mean(&naive_rate),
            mean(&afl_rate),
            mean(&glade_rate),
        );

        // Figure 7(b) upper bounds for five programs.
        let upper = match target.name() {
            "grep" => {
                // Handwritten grammar for grep's pattern language.
                let lang = languages::grep();
                Some(sample_grammar_coverage(target.as_ref(), lang.grammar(), scale.fuzz_samples))
            }
            "xml" => {
                let lang = languages::xml();
                Some(sample_grammar_coverage(target.as_ref(), lang.grammar(), scale.fuzz_samples))
            }
            "ruby" => Some(
                replay_corpus(target.as_ref(), "suite", &glade_targets::corpora::ruby())
                    .valid_incremental_coverage(),
            ),
            "python" => Some(
                replay_corpus(target.as_ref(), "suite", &glade_targets::corpora::python())
                    .valid_incremental_coverage(),
            ),
            "javascript" => Some(
                replay_corpus(target.as_ref(), "suite", &glade_targets::corpora::javascript())
                    .valid_incremental_coverage(),
            ),
            _ => None,
        };
        if let Some(u) = upper {
            if n > 0.0 {
                part_b.push((target.name().to_owned(), g / n, u / n));
            }
        }
    }

    banner("Figure 7(b): GLADE vs handwritten-grammar / test-suite upper bound");
    println!("\n{:<12} {:>10} {:>10}", "program", "glade", "upper");
    for (name, g, u) in &part_b {
        println!("{:<12} {:>9.2}x {:>9.2}x", name, g, u);
    }
    println!("\nPaper reference: GLADE close to the upper bound for grep and xml;");
    println!("a sizable but incomplete fraction for python/ruby/js (their real test");
    println!("suites are 100k+ lines).");
}

/// Coverage achieved by the "handwritten fuzzer" of Figure 7b: the same
/// splice-based grammar fuzzer, driven by a handwritten grammar instead of
/// a synthesized one, seeded with the target's seeds plus grammar samples.
fn sample_grammar_coverage(
    target: &dyn Target,
    grammar: &glade_grammar::Grammar,
    samples: usize,
) -> f64 {
    let sampler = Sampler::new(grammar);
    let mut rng = StdRng::seed_from_u64(0xF17B);
    let mut seeds = target.seeds();
    seeds.extend((0..32).filter_map(|_| sampler.sample(&mut rng)));
    let mut fuzzer = GrammarFuzzer::new(grammar.clone(), &seeds).with_name("handwritten");
    run_campaign(target, &mut fuzzer, samples, &mut rng).valid_incremental_coverage()
}
