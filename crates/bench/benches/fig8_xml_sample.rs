//! Figure 8: an example of a valid sample from the grammar GLADE
//! synthesizes for the XML parser, showing nested tags, attributes,
//! comments, and other constructs reached by the synthesized grammar.

use glade_bench::banner;
use glade_core::{GladeBuilder, GladeConfig, Oracle};
use glade_grammar::Sampler;
use glade_targets::programs::Xml;
use glade_targets::{Target, TargetOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("Figure 8: valid samples from the synthesized XML grammar");

    let xml = Xml;
    let oracle = TargetOracle::new(&xml);
    let config = GladeConfig { max_queries: Some(300_000), ..GladeConfig::default() };
    let synthesis =
        GladeBuilder::from_config(config).synthesize(&xml.seeds(), &oracle).expect("seeds valid");

    println!(
        "\nsynthesized grammar: {} nonterminals, {} productions\n",
        synthesis.grammar.num_nonterminals(),
        synthesis.grammar.num_productions()
    );

    let sampler = Sampler::with_max_depth(&synthesis.grammar, 40);
    let mut rng = StdRng::seed_from_u64(0xF18);
    let mut shown = 0;
    let mut tried = 0;
    while shown < 5 && tried < 10_000 {
        tried += 1;
        let Some(s) = sampler.sample(&mut rng) else { continue };
        // Show interesting (valid, nontrivial) samples, as the figure does.
        if s.len() >= 12 && oracle.accepts(&s) {
            shown += 1;
            println!("sample {shown}:");
            println!("    {:?}", String::from_utf8_lossy(&s));
        }
    }

    println!("\nPaper reference (Fig 8): a sampled document with nested tags,");
    println!("attributes, comments, and processing instructions.");
}
