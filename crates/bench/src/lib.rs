//! Shared scaffolding for the figure-regeneration benches.
//!
//! Every bench target in this crate regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index). Scale knobs are
//! read from the environment so `cargo bench` finishes in minutes by
//! default while `GLADE_SCALE=paper` reproduces the paper's sample sizes:
//!
//! | Variable | Meaning | default | `paper` |
//! |---|---|---|---|
//! | `GLADE_SEEDS` | seeds per language (Fig 4) | 20 | 50 |
//! | `GLADE_EVAL_SAMPLES` | precision/recall samples | 300 | 1000 |
//! | `GLADE_FUZZ_SAMPLES` | inputs per fuzzer (Fig 7) | 2000 | 50000 |
//! | `GLADE_RUNS` | repetitions to average | 1 | 5 |
//! | `GLADE_TIME_LIMIT_SECS` | per-learner budget | 20 | 300 |

use glade_eval::EvalConfig;
use std::time::Duration;

/// Scale parameters for the benches.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Seeds per language in the Fig 4 experiment.
    pub seeds: usize,
    /// Samples per precision/recall estimate.
    pub eval_samples: usize,
    /// Inputs per fuzzer per target in the Fig 7 experiment.
    pub fuzz_samples: usize,
    /// Repetitions to average over (paper: 5).
    pub runs: usize,
    /// Per-learner time budget.
    pub time_limit: Duration,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        let paper = std::env::var("GLADE_SCALE").is_ok_and(|v| v == "paper");
        let get = |name: &str, dflt: usize, paper_v: usize| {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(if paper {
                paper_v
            } else {
                dflt
            })
        };
        Scale {
            seeds: get("GLADE_SEEDS", 20, 50),
            eval_samples: get("GLADE_EVAL_SAMPLES", 300, 1000),
            fuzz_samples: get("GLADE_FUZZ_SAMPLES", 2000, 50_000),
            runs: get("GLADE_RUNS", 1, 5),
            time_limit: Duration::from_secs(get("GLADE_TIME_LIMIT_SECS", 20, 300) as u64),
        }
    }

    /// The matching learner-evaluation config.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            num_seeds: self.seeds,
            eval_samples: self.eval_samples,
            time_limit: self.time_limit,
            equivalence_samples: 50,
            num_negatives: 50,
            max_queries: 300_000,
        }
    }
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    println!("\n==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // Only check the defaults when the env leaves them alone.
        if std::env::var("GLADE_SCALE").is_err() && std::env::var("GLADE_SEEDS").is_err() {
            let s = Scale::from_env();
            assert_eq!(s.seeds, 20);
            assert!(s.fuzz_samples <= 50_000);
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
