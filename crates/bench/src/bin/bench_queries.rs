//! `bench-queries` — machine-readable benchmark of the membership-query
//! engine, emitted as `BENCH_queries.json`.
//!
//! Eleven experiment families, so the perf trajectory of the query layer
//! is recorded in-repo:
//!
//! 1. **`parallel_speedup`** — the full pipeline on the paper's running
//!    example (`<a>hi</a>`, Figure 2) against an artificially slowed oracle
//!    (default 100 µs per distinct query, `GLADE_BENCH_ORACLE_US` to
//!    override), swept over worker counts. Reports per-stage wall times,
//!    the wall-clock speedup of the parallel stages (phase-2 merge +
//!    character generalization) versus the sequential path, and asserts
//!    that the synthesized grammar is byte-identical and the distinct-query
//!    count unchanged at every worker count.
//! 2. **`pipeline`** — the fig4/fig5 synthesis configurations: full GLADE
//!    on each handwritten Section 8.2 language (URL, Grep, Lisp, XML) plus
//!    the toy-XML running-example language, with grammar-membership
//!    oracles and sampled seeds. Reports wall time, unique/total queries,
//!    and merge-pair counts.
//! 3. **`chargen_memo`** — the query-reduction layer measured at the
//!    source: the same fig4/fig5 configurations run with the byte-class
//!    memo table + check-context dedup off and then on (the default).
//!    Reports unique/total query counts, elided probes, memo hits, and
//!    wall time per mode; asserts the grammar is byte-identical in both
//!    modes for every language and that the url language — the
//!    memo-heaviest workload — sheds ≥ 1.3× of its unique queries.
//! 4. **`cache_reuse`** — the session API's persistent query cache: one
//!    cold run on the running example, snapshot, then the identical run in
//!    a fresh session warm-started from the snapshot. Records wall times
//!    and asserts the warm run pays zero new unique queries.
//! 5. **`skewed_latency`** — heterogeneous query latencies, the workload
//!    work-stealing dispatch exists for. A clustered 10–100× latency skew
//!    is dispatched under both static `chunks(div_ceil)` partitioning (the
//!    pre-PR-4 engine) and the engine's shared-cursor work stealing, and
//!    the full pipeline is swept over worker counts with a hash-skewed
//!    oracle, asserting grammar bytes and query counts stay invariant.
//!    Asserts work stealing beats static chunking.
//! 6. **`pooled_vs_spawn`** — real process-target oracle throughput. The
//!    bench binary re-executes *itself* as a protocol worker
//!    (`--oracle-worker`, via `glade_core::serve_oracle_worker`) and as a
//!    spawn-per-query target (`--oracle-once`), then measures spawn-per-
//!    query `ProcessOracle` versus `PooledProcessOracle` cold (pool spawn
//!    included) and warm. Asserts pooled execution sustains ≥ 5× the
//!    spawn-per-query queries/sec.
//! 7. **`batched_frames`** — the v2 batched wire protocol against v1
//!    per-query framing, both through the pool's event-driven batch
//!    dispatcher on small payloads with near-zero verdict compute
//!    (`--tiny-worker`), so the measurement isolates the per-query
//!    syscall/scheduling round-trip the batching exists to amortize. The
//!    v1 side runs against a genuine v1-only self-exec worker
//!    (`glade_core::serve_oracle_worker_v1`), so version negotiation
//!    itself is exercised. Asserts batched frames sustain ≥ 1.5× the v1
//!    per-query queries/sec.
//! 8. **`fault_recovery`** — throughput and query accounting under
//!    injected faults, against a clean pool run under the same query
//!    deadline. Three cells over the same workload: a clean pool (asserts
//!    zero failures/respawns/timeouts — the deadline machinery is free
//!    when nothing hangs), a crashy pool (`--crashy-worker`, a seeded
//!    `glade_core::FaultPlan` poisons ~10% of query *contents* so they
//!    kill every worker that touches them, defeating replay and forcing
//!    the spawn-per-query fallback), and a hangy pool (`--hangy-worker`
//!    hangs after 64 answers; only the deadline unwedges it). Every
//!    verdict in every cell must match the in-process reference.
//! 9. **`serve_overhead`** — the multi-tenant `glade serve` path versus a
//!    direct in-process session on the running example; the served
//!    grammar must be byte-identical and within 1.5× of direct.
//! 10. **`serve_restart`** — crash-safe campaign resume: cold run through
//!     a journaling server, abrupt restart, `RESUME` replay. Asserts the
//!     replay re-pays zero unique queries and reproduces the bytes.
//! 11. **`cache_scale`** — the binary snapshot codec at production cache
//!     sizes (`GLADE_BENCH_CACHE_N` synthetic entries, default 100 000):
//!     timed full loads in both formats plus the indexed partial-load
//!     path over a sparse query set. Asserts the binary full load is
//!     ≥ 5× faster than text (at the default size) and that the sparse
//!     partial load touches < 10% of the file.
//!
//! Usage: `cargo run --release -p glade-bench --bin bench-queries`
//! (writes `BENCH_queries.json` to the current directory, override with
//! `GLADE_BENCH_OUT`). Workload sizes are env-tunable for CI smoke runs:
//! `GLADE_BENCH_SKEW_N`, `GLADE_BENCH_SKEW_SLOW_US`,
//! `GLADE_BENCH_SKEW_BASE_US`, `GLADE_BENCH_MEMO_SEEDS`,
//! `GLADE_BENCH_SPAWN_QUERIES`,
//! `GLADE_BENCH_POOLED_QUERIES`, `GLADE_BENCH_FRAME_QUERIES`,
//! `GLADE_BENCH_FAULT_QUERIES`, `GLADE_BENCH_FAULT_TIMEOUT_MS`,
//! `GLADE_BENCH_CACHE_N`.

use glade_core::{
    serve_faulty_worker, serve_oracle_worker, serve_oracle_worker_v1, snapshot_from_binary_reader,
    snapshot_from_reader, snapshot_to_binary, snapshot_to_text_with_memo, BinaryCacheFile,
    FaultPlan, FnOracle, GladeBuilder, Oracle, PooledProcessOracle, ProcessOracle, SynthesisStats,
};
use glade_eval::sample_seeds;
use glade_grammar::grammar_to_text;
use glade_targets::languages::{section82_languages, toy_xml};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io::Read as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

struct SpeedupRow {
    workers: usize,
    stats: SynthesisStats,
    grammar: String,
    wall: Duration,
}

fn run_speedup(workers: usize, oracle_delay: Duration) -> SpeedupRow {
    // Membership delegates to the canonical running-example language
    // (`toy_xml`) so the bench can never drift from the language it claims
    // to measure; the configurable delay stands in for target-program cost.
    let inner = toy_xml().oracle();
    let oracle = FnOracle::new(move |i: &[u8]| {
        if !oracle_delay.is_zero() {
            std::thread::sleep(oracle_delay);
        }
        inner.accepts(i)
    });
    let start = Instant::now();
    let result = GladeBuilder::new()
        .worker_threads(workers)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .expect("valid seed");
    SpeedupRow {
        workers,
        grammar: grammar_to_text(&result.grammar),
        stats: result.stats,
        wall: start.elapsed(),
    }
}

/// Cache-persistence experiment: one cold session run, snapshot the query
/// cache, then replay the identical run in a fresh session warm-started
/// from the snapshot. Returns (cold, warm) results; the warm run must pay
/// zero new unique queries.
fn run_cache_reuse(oracle_delay: Duration) -> (glade_core::Synthesis, glade_core::Synthesis) {
    let inner = toy_xml().oracle();
    let oracle = FnOracle::new(move |i: &[u8]| {
        if !oracle_delay.is_zero() {
            std::thread::sleep(oracle_delay);
        }
        inner.accepts(i)
    });
    let mut cold_session = GladeBuilder::new().session(&oracle);
    let cold = cold_session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    let snapshot = cold_session.export_cache();
    let mut warm_session = GladeBuilder::new().session(&oracle);
    warm_session.import_cache(&snapshot).expect("snapshot parses");
    let warm = warm_session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    (cold, warm)
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Simulates dispatching a batch of queries with the given per-query
/// delays across `workers` threads, either by static `chunks(div_ceil)`
/// partitioning (the pre-work-stealing engine) or by the engine's
/// shared-cursor work stealing. Returns the wall time of the whole batch.
fn simulate_dispatch(delays: &[Duration], workers: usize, work_stealing: bool) -> Duration {
    let start = Instant::now();
    if work_stealing {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= delays.len() {
                        break;
                    }
                    std::thread::sleep(delays[i]);
                });
            }
        });
    } else {
        let chunk = delays.len().div_ceil(workers);
        std::thread::scope(|s| {
            for c in delays.chunks(chunk) {
                s.spawn(move || {
                    for d in c {
                        std::thread::sleep(*d);
                    }
                });
            }
        });
    }
    start.elapsed()
}

/// Stable per-input delay with a 10–100× spread, for the engine-level
/// skewed sweep (FNV-1a so it is identical across runs and worker counts).
fn skewed_delay(input: &[u8], base_us: u64) -> Duration {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in input {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    Duration::from_micros(base_us * (1 + h % 100))
}

/// Distinct inputs for the pooled-vs-spawn oracle microbenchmark: a mix of
/// valid and invalid toy-XML documents, `offset` shifting the set so the
/// warm pooled round sees fresh queries.
fn process_workload(count: usize, offset: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let n = offset + i;
            if n.is_multiple_of(3) {
                format!("<a>{}</a", "h".repeat(n % 17)).into_bytes() // truncated: invalid
            } else {
                format!("<a>{}</a>", "hi".repeat(n % 23)).into_bytes()
            }
        })
        .collect()
}

/// The `--tiny-worker` predicate: deterministic mixed verdicts at
/// essentially zero compute, so the `batched_frames` experiment measures
/// wire-protocol overhead rather than target parsing cost.
fn tiny_accepts(input: &[u8]) -> bool {
    input.iter().fold(0u32, |acc, &b| acc.wrapping_mul(31).wrapping_add(u32::from(b))) % 3 != 0
}

/// Minimal JSON writer (no serde in the dependency set).
struct Json {
    out: String,
    needs_comma: Vec<bool>,
}

impl Json {
    fn new() -> Self {
        Json { out: String::new(), needs_comma: Vec::new() }
    }

    fn sep(&mut self) {
        if let Some(need) = self.needs_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    fn open_obj(&mut self, key: Option<&str>) {
        self.sep();
        if let Some(k) = key {
            write!(self.out, "{:?}:", k).unwrap();
        }
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn close_obj(&mut self) {
        self.out.push('}');
        self.needs_comma.pop();
    }

    fn open_arr(&mut self, key: &str) {
        self.sep();
        write!(self.out, "{:?}:[", key).unwrap();
        self.needs_comma.push(false);
    }

    fn close_arr(&mut self) {
        self.out.push(']');
        self.needs_comma.pop();
    }

    fn num(&mut self, key: &str, v: f64) {
        self.sep();
        write!(self.out, "{:?}:{:.6}", key, v).unwrap();
    }

    fn int(&mut self, key: &str, v: usize) {
        self.sep();
        write!(self.out, "{:?}:{}", key, v).unwrap();
    }

    fn boolean(&mut self, key: &str, v: bool) {
        self.sep();
        write!(self.out, "{:?}:{}", key, v).unwrap();
    }

    fn string(&mut self, key: &str, v: &str) {
        self.sep();
        write!(self.out, "{:?}:{:?}", key, v).unwrap();
    }
}

fn stats_fields(j: &mut Json, stats: &SynthesisStats) {
    j.int("unique_queries", stats.unique_queries);
    j.int("total_queries", stats.total_queries);
    j.int("merge_pairs_tried", stats.merge_pairs_tried);
    j.int("merges_accepted", stats.merges_accepted);
    j.int("chars_generalized", stats.chars_generalized);
    j.int("probes_elided", stats.probes_elided);
    j.int("memo_hits", stats.memo_hits);
    j.num("phase1_secs", secs(stats.phase1_time));
    j.num("chargen_secs", secs(stats.chargen_time));
    j.num("phase2_secs", secs(stats.phase2_time));
}

fn main() {
    // Self-exec worker modes: the pooled-vs-spawn experiment drives this
    // binary as its own real process target, so the benchmark needs no
    // external worker binary to be built or located.
    match std::env::args().nth(1).as_deref() {
        Some("--oracle-worker") => {
            // Persistent protocol worker for PooledProcessOracle
            // (negotiates v2 batched frames).
            let oracle = toy_xml().oracle();
            serve_oracle_worker(|input| oracle.accepts(input)).expect("worker protocol");
            return;
        }
        Some("--oracle-worker-v1") => {
            // v1-pinned worker: never upgrades, so the oracle speaks
            // legacy one-query-per-round-trip frames against it.
            let oracle = toy_xml().oracle();
            serve_oracle_worker_v1(|input| oracle.accepts(input)).expect("worker protocol");
            return;
        }
        Some("--tiny-worker") => {
            // Near-zero-cost verdicts for the batched_frames experiment:
            // with the target compute stripped out, what remains is the
            // wire protocol's own per-query cost.
            serve_oracle_worker(tiny_accepts).expect("worker protocol");
            return;
        }
        Some("--tiny-worker-v1") => {
            serve_oracle_worker_v1(tiny_accepts).expect("worker protocol");
            return;
        }
        Some("--crashy-worker") => {
            // Fault-injected worker for the fault_recovery experiment:
            // ~10% of query contents are poisoned by the seeded content
            // hash and kill every worker that touches them — replay on a
            // fresh worker fails too, so exactly those queries must
            // degrade to the spawn-per-query fallback.
            let oracle = toy_xml().oracle();
            let plan = FaultPlan::new().crash_permille(100).seed(0x5eed);
            serve_faulty_worker(&plan, move |input| oracle.accepts(input))
                .expect("worker protocol");
            return;
        }
        Some("--hangy-worker") => {
            // Hangs (without exiting) after 64 answers: only a query
            // deadline can unwedge the pool.
            let oracle = toy_xml().oracle();
            let plan = FaultPlan::new().hang_after(64);
            serve_faulty_worker(&plan, move |input| oracle.accepts(input))
                .expect("worker protocol");
            return;
        }
        Some("--oracle-once") => {
            // Spawn-per-query target for ProcessOracle: verdict = exit 0.
            let oracle = toy_xml().oracle();
            let mut input = Vec::new();
            std::io::stdin().read_to_end(&mut input).expect("read stdin");
            std::process::exit(i32::from(!oracle.accepts(&input)));
        }
        _ => {}
    }

    let oracle_us: u64 =
        std::env::var("GLADE_BENCH_ORACLE_US").ok().and_then(|v| v.parse().ok()).unwrap_or(100);
    let oracle_delay = Duration::from_micros(oracle_us);
    let out_path = std::env::var("GLADE_BENCH_OUT").unwrap_or_else(|_| "BENCH_queries.json".into());

    let mut j = Json::new();
    j.open_obj(None);
    j.string("bench", "glade membership-query engine");
    j.int("oracle_delay_us", oracle_us as usize);
    j.int("available_parallelism", std::thread::available_parallelism().map_or(1, |n| n.get()));

    // ---- Experiment 1: worker-count sweep on the running example. ----
    eprintln!("[bench-queries] parallel_speedup: oracle delay {oracle_us} µs");
    let worker_counts = [1usize, 2, 4, 8];
    let rows: Vec<SpeedupRow> =
        worker_counts.iter().map(|&w| run_speedup(w, oracle_delay)).collect();
    let baseline = &rows[0];
    // The parallel stages of the pipeline: phase-2 merge + chargen.
    let par_stage = |r: &SpeedupRow| r.stats.chargen_time + r.stats.phase2_time;

    j.open_arr("parallel_speedup");
    for row in &rows {
        let stage_speedup = secs(par_stage(baseline)) / secs(par_stage(row)).max(1e-9);
        let wall_speedup = secs(baseline.wall) / secs(row.wall).max(1e-9);
        eprintln!(
            "[bench-queries]   workers={} wall={:.3}s merge+chargen={:.3}s (x{:.2}) unique={}",
            row.workers,
            secs(row.wall),
            secs(par_stage(row)),
            stage_speedup,
            row.stats.unique_queries,
        );
        j.open_obj(None);
        j.int("workers", row.workers);
        j.num("wall_secs", secs(row.wall));
        j.num("merge_chargen_secs", secs(par_stage(row)));
        j.num("merge_chargen_speedup_vs_sequential", stage_speedup);
        j.num("wall_speedup_vs_sequential", wall_speedup);
        j.boolean("grammar_identical_to_sequential", row.grammar == baseline.grammar);
        j.boolean(
            "unique_queries_equal_to_sequential",
            row.stats.unique_queries == baseline.stats.unique_queries,
        );
        stats_fields(&mut j, &row.stats);
        j.close_obj();
    }
    j.close_arr();

    for row in &rows[1..] {
        assert_eq!(row.grammar, baseline.grammar, "grammar drifted at {} workers", row.workers);
        assert_eq!(
            row.stats.unique_queries, baseline.stats.unique_queries,
            "query count drifted at {} workers",
            row.workers
        );
    }

    // ---- Experiment 2: fig4/fig5 pipeline configs. ----
    j.open_arr("pipeline");
    let mut languages = section82_languages();
    languages.push(toy_xml());
    for language in &languages {
        let mut rng = StdRng::seed_from_u64(17);
        let seeds = sample_seeds(language, 10, &mut rng);
        let oracle = language.oracle();
        let start = Instant::now();
        match GladeBuilder::new().max_queries(200_000).synthesize(&seeds, &oracle) {
            Ok(result) => {
                let wall = start.elapsed();
                eprintln!(
                    "[bench-queries] pipeline {}: wall={:.3}s unique={} merges={}/{}",
                    language.name(),
                    secs(wall),
                    result.stats.unique_queries,
                    result.stats.merges_accepted,
                    result.stats.merge_pairs_tried,
                );
                j.open_obj(None);
                j.string("language", language.name());
                j.int("num_seeds", seeds.len());
                j.num("wall_secs", secs(wall));
                j.boolean("budget_exhausted", result.stats.budget_exhausted);
                stats_fields(&mut j, &result.stats);
                j.close_obj();
            }
            Err(e) => {
                j.open_obj(None);
                j.string("language", language.name());
                j.string("error", &e.to_string());
                j.close_obj();
            }
        }
    }
    j.close_arr();

    // ---- Experiment 3: byte-class memoization — fewer queries planned.
    // The same fig4/fig5 configurations with the byte-class memo table +
    // check-context dedup off, then on (the default). The savings are
    // measured at the source — how many distinct membership checks the
    // planner poses at all — and the grammar must be byte-identical in
    // both modes: elision may only remove provably-redundant probes.
    let memo_seed_count = env_usize("GLADE_BENCH_MEMO_SEEDS", 10);
    j.open_arr("chargen_memo");
    for language in &languages {
        let run = |memo: bool| {
            let mut rng = StdRng::seed_from_u64(17);
            let seeds = sample_seeds(language, memo_seed_count, &mut rng);
            let oracle = language.oracle();
            let start = Instant::now();
            let result = GladeBuilder::new()
                .max_queries(200_000)
                .memoize_byte_classes(memo)
                .synthesize(&seeds, &oracle)
                .expect("synthesis succeeds");
            assert!(
                !result.stats.budget_exhausted,
                "{} exhausted the query budget (memo={memo}); the reduction ratio \
                 would be meaningless",
                language.name()
            );
            (grammar_to_text(&result.grammar), result.stats, start.elapsed())
        };
        let (grammar_off, off, wall_off) = run(false);
        let (grammar_on, on, wall_on) = run(true);
        assert_eq!(
            grammar_on,
            grammar_off,
            "{}: memoization changed the synthesized grammar",
            language.name()
        );
        assert_eq!(off.probes_elided, 0, "memo-off run elided probes");
        let reduction = off.unique_queries as f64 / (on.unique_queries as f64).max(1e-9);
        eprintln!(
            "[bench-queries] chargen_memo {}: unique {} -> {} (x{:.2}), \
             {} probes elided, {} memo hits, wall {:.3}s -> {:.3}s",
            language.name(),
            off.unique_queries,
            on.unique_queries,
            reduction,
            on.probes_elided,
            on.memo_hits,
            secs(wall_off),
            secs(wall_on),
        );
        if language.name() == "url" {
            assert!(
                reduction >= 1.3,
                "byte-class memoization must shed >= 1.3x of url's unique queries \
                 (off {}, on {})",
                off.unique_queries,
                on.unique_queries
            );
        }
        j.open_obj(None);
        j.string("language", language.name());
        j.int("num_seeds", memo_seed_count);
        j.int("unique_queries_off", off.unique_queries);
        j.int("unique_queries_on", on.unique_queries);
        j.int("total_queries_off", off.total_queries);
        j.int("total_queries_on", on.total_queries);
        j.num("unique_query_reduction", reduction);
        j.int("probes_elided", on.probes_elided);
        j.int("memo_hits", on.memo_hits);
        j.num("wall_secs_off", secs(wall_off));
        j.num("wall_secs_on", secs(wall_on));
        j.boolean("grammar_identical", grammar_on == grammar_off);
        j.close_obj();
    }
    j.close_arr();

    // ---- Experiment 4: persistent-cache warm start. ----
    let cold_start = Instant::now();
    let (cold, warm) = run_cache_reuse(oracle_delay);
    let reuse_wall = cold_start.elapsed();
    eprintln!(
        "[bench-queries] cache_reuse: cold unique={} warm new_unique={} (total {:.3}s)",
        cold.stats.unique_queries,
        warm.stats.new_unique_queries,
        secs(reuse_wall),
    );
    assert_eq!(warm.stats.new_unique_queries, 0, "warm re-run re-paid oracle calls");
    j.open_obj(Some("cache_reuse"));
    j.int("cold_unique_queries", cold.stats.unique_queries);
    j.int("warm_new_unique_queries", warm.stats.new_unique_queries);
    j.num("cold_total_secs", secs(cold.stats.total_time()));
    j.num("warm_total_secs", secs(warm.stats.total_time()));
    j.boolean(
        "warm_grammar_identical",
        grammar_to_text(&warm.grammar) == grammar_to_text(&cold.grammar),
    );
    j.close_obj();

    // ---- Experiment 5: skewed latencies — work stealing vs. static. ----
    // Clustered skew (the first eighth of the batch is 10–100× slower —
    // think "all the deeply nested candidates landed together"): static
    // chunking hands the whole slow cluster to one worker while the rest
    // idle; work stealing spreads it. Same total work, same results.
    let skew_n = env_usize("GLADE_BENCH_SKEW_N", 256);
    let slow_us = env_usize("GLADE_BENCH_SKEW_SLOW_US", 2_000) as u64;
    let fast_us = (slow_us / 40).max(1);
    let workers = 8usize;
    let delays: Vec<Duration> = (0..skew_n)
        .map(|i| Duration::from_micros(if i < skew_n / 8 { slow_us } else { fast_us }))
        .collect();
    let static_wall = simulate_dispatch(&delays, workers, false);
    let stealing_wall = simulate_dispatch(&delays, workers, true);
    let dispatch_speedup = secs(static_wall) / secs(stealing_wall).max(1e-9);
    eprintln!(
        "[bench-queries] skewed_latency: static={:.3}s stealing={:.3}s (x{:.2}, {} queries, {} workers)",
        secs(static_wall),
        secs(stealing_wall),
        dispatch_speedup,
        skew_n,
        workers,
    );
    assert!(
        stealing_wall < static_wall,
        "work stealing must beat static chunking on the skewed workload \
         (static {static_wall:?}, stealing {stealing_wall:?})"
    );

    // Engine-level sweep under a hash-skewed oracle (10–100× per-query
    // spread): the dispatch order changes with worker count, the grammar
    // and the query counts must not.
    let skew_base_us = env_usize("GLADE_BENCH_SKEW_BASE_US", 5) as u64;
    let skew_rows: Vec<SpeedupRow> = worker_counts
        .iter()
        .map(|&w| {
            let inner = toy_xml().oracle();
            let oracle = FnOracle::new(move |i: &[u8]| {
                if skew_base_us > 0 {
                    std::thread::sleep(skewed_delay(i, skew_base_us));
                }
                inner.accepts(i)
            });
            let start = Instant::now();
            let result = GladeBuilder::new()
                .worker_threads(w)
                .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
                .expect("valid seed");
            SpeedupRow {
                workers: w,
                grammar: grammar_to_text(&result.grammar),
                stats: result.stats,
                wall: start.elapsed(),
            }
        })
        .collect();
    let skew_baseline = &skew_rows[0];
    j.open_obj(Some("skewed_latency"));
    j.int("queries", skew_n);
    j.int("dispatch_workers", workers);
    j.int("slow_us", slow_us as usize);
    j.int("fast_us", fast_us as usize);
    j.num("static_chunking_secs", secs(static_wall));
    j.num("work_stealing_secs", secs(stealing_wall));
    j.num("work_stealing_speedup_vs_static", dispatch_speedup);
    j.boolean("work_stealing_beats_static", stealing_wall < static_wall);
    j.int("engine_sweep_base_us", skew_base_us as usize);
    j.open_arr("engine_sweep");
    for row in &skew_rows {
        eprintln!(
            "[bench-queries]   skewed engine sweep: workers={} wall={:.3}s unique={}",
            row.workers,
            secs(row.wall),
            row.stats.unique_queries,
        );
        assert_eq!(
            row.grammar, skew_baseline.grammar,
            "skewed-latency grammar drifted at {} workers",
            row.workers
        );
        assert_eq!(row.stats.unique_queries, skew_baseline.stats.unique_queries);
        assert_eq!(row.stats.total_queries, skew_baseline.stats.total_queries);
        j.open_obj(None);
        j.int("workers", row.workers);
        j.num("wall_secs", secs(row.wall));
        j.boolean("grammar_identical_to_sequential", row.grammar == skew_baseline.grammar);
        j.boolean(
            "unique_queries_equal_to_sequential",
            row.stats.unique_queries == skew_baseline.stats.unique_queries,
        );
        j.int("unique_queries", row.stats.unique_queries);
        j.close_obj();
    }
    j.close_arr();
    j.close_obj();

    // ---- Experiment 6: pooled vs. spawn-per-query process oracle. ----
    // This binary is its own process target (see the self-exec modes at
    // the top of main): spawn-per-query pays a full process start per
    // verdict, the pool pays one start per worker and a pipe round-trip
    // per verdict.
    let self_exe = std::env::current_exe().expect("current_exe");
    let spawn_queries = env_usize("GLADE_BENCH_SPAWN_QUERIES", 48);
    let pooled_queries = env_usize("GLADE_BENCH_POOLED_QUERIES", 512);
    let pool_workers = 4usize;

    let spawn_oracle = ProcessOracle::new(&self_exe).arg("--oracle-once");
    let reference = toy_xml().oracle();
    let spawn_workload = process_workload(spawn_queries, 0);
    let spawn_start = Instant::now();
    for input in &spawn_workload {
        assert_eq!(spawn_oracle.accepts(input), reference.accepts(input), "spawn verdict");
    }
    let spawn_wall = spawn_start.elapsed();
    let spawn_qps = spawn_queries as f64 / secs(spawn_wall).max(1e-9);

    let pooled_oracle = PooledProcessOracle::new(&self_exe)
        .arg("--oracle-worker")
        .pool_size(pool_workers)
        // A *fresh* fallback oracle: ProcessOracle clones share a failure
        // counter, and any transient spawn failure absorbed by the spawn
        // experiment above must not bleed into the pooled failure assert.
        .fallback(ProcessOracle::new(&self_exe).arg("--oracle-once"));
    // Cold: includes lazy worker spawns. Queries fan out across threads
    // the way the engine's batch dispatch would.
    let pose_all = |inputs: &[Vec<u8>]| {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..pool_workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(input) = inputs.get(i) else { break };
                    assert_eq!(
                        pooled_oracle.accepts(input),
                        reference.accepts(input),
                        "pooled verdict"
                    );
                });
            }
        });
    };
    let cold_workload = process_workload(pooled_queries, 10_000);
    let cold_start = Instant::now();
    pose_all(&cold_workload);
    let pooled_cold_wall = cold_start.elapsed();
    let warm_workload = process_workload(pooled_queries, 20_000);
    let warm_start = Instant::now();
    pose_all(&warm_workload);
    let pooled_warm_wall = warm_start.elapsed();
    let pooled_cold_qps = pooled_queries as f64 / secs(pooled_cold_wall).max(1e-9);
    let pooled_warm_qps = pooled_queries as f64 / secs(pooled_warm_wall).max(1e-9);
    let pooled_speedup = pooled_warm_qps / spawn_qps.max(1e-9);
    eprintln!(
        "[bench-queries] pooled_vs_spawn: spawn {:.0} q/s, pooled cold {:.0} q/s, \
         pooled warm {:.0} q/s (x{:.1} vs spawn, {} workers)",
        spawn_qps, pooled_cold_qps, pooled_warm_qps, pooled_speedup, pool_workers,
    );
    assert!(
        pooled_speedup >= 5.0,
        "pooled execution must sustain >= 5x spawn-per-query throughput \
         (spawn {spawn_qps:.0} q/s, pooled warm {pooled_warm_qps:.0} q/s)"
    );
    assert_eq!(pooled_oracle.failure_count(), 0, "pooled path degraded to the fallback");

    j.open_obj(Some("pooled_vs_spawn"));
    j.string("target", "self (toy-xml verdicts over the worker protocol)");
    j.int("pool_workers", pool_workers);
    j.int("spawn_queries", spawn_queries);
    j.int("pooled_queries", pooled_queries);
    j.num("spawn_secs", secs(spawn_wall));
    j.num("spawn_queries_per_sec", spawn_qps);
    j.num("pooled_cold_secs", secs(pooled_cold_wall));
    j.num("pooled_cold_queries_per_sec", pooled_cold_qps);
    j.num("pooled_warm_secs", secs(pooled_warm_wall));
    j.num("pooled_warm_queries_per_sec", pooled_warm_qps);
    j.num("pooled_warm_speedup_vs_spawn", pooled_speedup);
    j.int("pool_respawns", pooled_oracle.respawn_count());
    j.int("oracle_failures", pooled_oracle.failure_count());
    j.close_obj();

    // ---- Experiment 7: v2 batched frames vs. v1 per-query frames. ----
    // Same event-driven dispatcher, same small-payload workload, two wire
    // versions: v1 pays a write+read round-trip (and two scheduler hops)
    // per query, v2 amortizes them over a whole frame. The workers answer
    // near-zero-cost verdicts (`tiny_accepts`) so the wire overhead is
    // what is measured; the v1 worker is a genuine v1-only server, so the
    // measurement includes real version negotiation falling back.
    let frame_queries = env_usize("GLADE_BENCH_FRAME_QUERIES", 4096);
    let frame_pool = 4usize;
    let mut frame_results: Vec<(String, f64)> = Vec::new();
    for (mode, worker_flag) in
        [("v1_per_query", "--tiny-worker-v1"), ("v2_batched", "--tiny-worker")]
    {
        let oracle = PooledProcessOracle::new(&self_exe).arg(worker_flag).pool_size(frame_pool);
        // Warm the whole pool (spawns + negotiation) outside the timed
        // window: enough queries that the dispatcher wants every worker.
        let warmup = process_workload(frame_pool * 64, 30_000);
        let warmup_refs: Vec<&[u8]> = warmup.iter().map(Vec::as_slice).collect();
        let _ = oracle.accepts_batch_checked(&warmup_refs);
        let workload = process_workload(frame_queries, 40_000);
        let refs: Vec<&[u8]> = workload.iter().map(Vec::as_slice).collect();
        let start = Instant::now();
        let verdicts = oracle.accepts_batch_checked(&refs);
        let wall = start.elapsed();
        for (input, verdict) in workload.iter().zip(&verdicts) {
            assert_eq!(*verdict, Some(tiny_accepts(input)), "batched verdict drifted");
        }
        assert_eq!(oracle.failure_count(), 0, "{mode} degraded");
        let qps = frame_queries as f64 / secs(wall).max(1e-9);
        eprintln!(
            "[bench-queries] batched_frames {mode}: {:.0} q/s ({} queries, {:.3}s, {} workers)",
            qps,
            frame_queries,
            secs(wall),
            frame_pool,
        );
        frame_results.push((mode.to_owned(), qps));
    }
    let v1_qps = frame_results[0].1;
    let v2_qps = frame_results[1].1;
    let frame_speedup = v2_qps / v1_qps.max(1e-9);
    eprintln!("[bench-queries] batched_frames: v2 is x{frame_speedup:.2} vs v1 per-query frames");
    assert!(
        frame_speedup >= 1.5,
        "v2 batched frames must sustain >= 1.5x v1 per-query framing on small payloads \
         (v1 {v1_qps:.0} q/s, v2 {v2_qps:.0} q/s)"
    );
    j.open_obj(Some("batched_frames"));
    j.string("target", "self (near-zero-cost verdicts; measures wire overhead)");
    j.int("pool_workers", frame_pool);
    j.int("queries", frame_queries);
    j.num("v1_per_query_queries_per_sec", v1_qps);
    j.num("v2_batched_queries_per_sec", v2_qps);
    j.num("v2_speedup_vs_v1", frame_speedup);
    j.boolean("v2_beats_v1_by_1_5x", frame_speedup >= 1.5);
    j.close_obj();

    // ---- Experiment 8: fault recovery — throughput under injected
    // faults. The same workload and the same query deadline, three worker
    // personalities: clean (the deadline machinery must be free when
    // nothing hangs), crashy (~10% content-poisoned queries that defeat
    // replay and degrade to the fallback), and hangy (silent hangs that
    // only the deadline can unwedge). Every verdict in every cell must
    // match the in-process reference — faults shift cost, never answers.
    let fault_queries = env_usize("GLADE_BENCH_FAULT_QUERIES", 512);
    let fault_timeout_ms = env_usize("GLADE_BENCH_FAULT_TIMEOUT_MS", 250) as u64;
    let fault_pool = 4usize;
    let fault_workload = process_workload(fault_queries, 50_000);
    let fault_refs: Vec<&[u8]> = fault_workload.iter().map(Vec::as_slice).collect();
    let fault_expected: Vec<Option<bool>> =
        fault_workload.iter().map(|i| Some(reference.accepts(i))).collect();
    let run_fault_cell = |mode: &str, worker_flag: &str| {
        let mut oracle = PooledProcessOracle::new(&self_exe)
            .arg(worker_flag)
            .pool_size(fault_pool)
            .query_timeout(Duration::from_millis(fault_timeout_ms));
        if mode == "crashy" {
            // Content-poisoned queries defeat replay; only a clean
            // spawn-per-query fallback can still answer them truthfully.
            oracle = oracle.fallback(ProcessOracle::new(&self_exe).arg("--oracle-once"));
        }
        let start = Instant::now();
        let verdicts = oracle.accepts_batch_checked(&fault_refs);
        let wall = start.elapsed();
        assert_eq!(verdicts, fault_expected, "{mode} pool changed a verdict");
        (oracle, wall)
    };
    let (clean_oracle, clean_wall) = run_fault_cell("clean", "--oracle-worker");
    assert_eq!(clean_oracle.failure_count(), 0, "clean pool counted failures");
    assert_eq!(clean_oracle.respawn_count(), 0, "clean pool respawned workers");
    assert_eq!(clean_oracle.timed_out_count(), 0, "clean pool hit the deadline");
    assert_eq!(clean_oracle.tripped_worker_count(), 0, "clean pool tripped a breaker");
    let (crashy_oracle, crashy_wall) = run_fault_cell("crashy", "--crashy-worker");
    assert_eq!(crashy_oracle.failure_count(), 0, "the fallback answers every poisoned query");
    assert!(crashy_oracle.respawn_count() > 0, "poisoned queries must kill workers");
    let (hangy_oracle, hangy_wall) = run_fault_cell("hangy", "--hangy-worker");
    assert_eq!(hangy_oracle.failure_count(), 0, "every hang was replayed successfully");
    assert!(
        hangy_oracle.timed_out_count() > 0,
        "{fault_queries} queries across {fault_pool} workers must outlive 64-answer hangs"
    );
    let clean_qps = fault_queries as f64 / secs(clean_wall).max(1e-9);
    let crashy_qps = fault_queries as f64 / secs(crashy_wall).max(1e-9);
    let hangy_qps = fault_queries as f64 / secs(hangy_wall).max(1e-9);
    eprintln!(
        "[bench-queries] fault_recovery: clean {:.0} q/s, crashy {:.0} q/s ({} respawns, \
         {} trips), hangy {:.0} q/s ({} hung queries killed at the {}ms deadline)",
        clean_qps,
        crashy_qps,
        crashy_oracle.respawn_count(),
        crashy_oracle.tripped_worker_count(),
        hangy_qps,
        hangy_oracle.timed_out_count(),
        fault_timeout_ms,
    );
    j.open_obj(Some("fault_recovery"));
    j.string("target", "self (toy-xml verdicts; seeded FaultPlan injection)");
    j.int("pool_workers", fault_pool);
    j.int("queries", fault_queries);
    j.int("query_timeout_ms", fault_timeout_ms as usize);
    for (mode, oracle, wall, qps) in [
        ("clean", &clean_oracle, clean_wall, clean_qps),
        ("crashy", &crashy_oracle, crashy_wall, crashy_qps),
        ("hangy", &hangy_oracle, hangy_wall, hangy_qps),
    ] {
        j.open_obj(Some(mode));
        j.num("wall_secs", secs(wall));
        j.num("queries_per_sec", qps);
        j.num("throughput_vs_clean", qps / clean_qps.max(1e-9));
        j.int("oracle_failures", oracle.failure_count());
        j.int("respawns", oracle.respawn_count());
        j.int("timed_out_queries", oracle.timed_out_count());
        j.int("breaker_trips", oracle.tripped_worker_count());
        j.int("breaker_recoveries", oracle.recovered_worker_count());
        j.close_obj();
    }
    j.close_obj();

    // ---- Experiment 9: serve_overhead — the multi-tenant `glade serve`
    // path (campaign thread + fair-scheduler turns + result framing over a
    // unix socket) versus a direct in-process Session on the running
    // example. Best-of-N walls on both sides; the served grammar must be
    // byte-identical and the server path must stay within 1.5x of direct.
    #[cfg(any(target_os = "linux", target_os = "macos"))]
    {
        use glade_core::serve::{OpenRequest, OracleFactory, ServeClient, ServeConfig, Server};
        use std::sync::Arc;

        let serve_runs = env_usize("GLADE_BENCH_SERVE_RUNS", 3);
        let seeds = vec![b"<a>hi</a>".to_vec()];
        let direct_oracle = toy_xml().oracle();
        let mut direct_best = f64::INFINITY;
        let mut direct_grammar = String::new();
        let mut direct_stats = SynthesisStats::default();
        for _ in 0..serve_runs {
            let start = Instant::now();
            let result = GladeBuilder::new()
                .synthesize(&seeds, &direct_oracle)
                .expect("running example synthesizes");
            let wall = secs(start.elapsed());
            if wall < direct_best {
                direct_best = wall;
            }
            direct_grammar = grammar_to_text(&result.grammar);
            direct_stats = result.stats;
        }

        let factory: Arc<dyn OracleFactory> =
            Arc::new(|spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
                match spec {
                    "toy-xml" => Ok((Arc::new(toy_xml().oracle()), "bench:toy-xml".into())),
                    other => Err(format!("unknown bench spec {other:?}")),
                }
            });
        let socket =
            std::env::temp_dir().join(format!("glade-bench-serve-{}.sock", std::process::id()));
        let server = Server::new(factory, ServeConfig::default())
            .spawn(&socket)
            .expect("spawn bench server");
        let mut served_best = f64::INFINITY;
        let mut served_grammar = String::new();
        let mut served_stats = SynthesisStats::default();
        for _ in 0..serve_runs {
            // A fresh campaign per run (no persistent cache), so every
            // timed window pays the same cold query load as the direct
            // run plus the server machinery under measurement.
            let start = Instant::now();
            let mut client = ServeClient::connect(&socket).expect("connect bench client");
            let mut request = OpenRequest::new("toy-xml");
            request.events = false;
            client.open(&request).expect("open bench campaign");
            let outcome = client.synthesize(&seeds, |_| {}).expect("served run");
            client.close().expect("close bench client");
            let wall = secs(start.elapsed());
            if wall < served_best {
                served_best = wall;
            }
            served_grammar = outcome.grammar_text;
            served_stats = outcome.stats;
        }
        server.shutdown().expect("bench server shutdown");

        let overhead = served_best / direct_best.max(1e-9);
        eprintln!(
            "[bench-queries] serve_overhead: direct {:.3}s, served {:.3}s (x{:.2}, best of {})",
            direct_best, served_best, overhead, serve_runs,
        );
        assert_eq!(served_grammar, direct_grammar, "served grammar drifted from direct Session");
        assert_eq!(
            served_stats.unique_queries, direct_stats.unique_queries,
            "served query count drifted from direct Session"
        );
        assert!(
            overhead <= 1.5,
            "the serve path must stay within 1.5x of a direct Session \
             (direct {direct_best:.3}s, served {served_best:.3}s)"
        );
        j.open_obj(Some("serve_overhead"));
        j.string("target", "toy-xml running example (in-process server, unix socket)");
        j.int("runs", serve_runs);
        j.num("direct_best_secs", direct_best);
        j.num("served_best_secs", served_best);
        j.num("served_overhead_vs_direct", overhead);
        j.boolean("grammar_identical", served_grammar == direct_grammar);
        j.int("unique_queries", served_stats.unique_queries);
        j.int("total_queries", served_stats.total_queries);
        j.close_obj();

        // ---- Experiment 10: serve_restart — crash-safe campaign resume.
        // A campaign runs cold (filling the journal + persistent cache),
        // the server dies without a clean close, a fresh server over the
        // same cache dir replays the campaign via RESUME. The replay must
        // reproduce the grammar byte-for-byte while re-paying zero unique
        // oracle queries — the whole point of the journal.
        let factory: Arc<dyn OracleFactory> =
            Arc::new(|spec: &str| -> Result<(Arc<dyn Oracle>, String), String> {
                match spec {
                    "toy-xml" => Ok((Arc::new(toy_xml().oracle()), "bench:toy-xml".into())),
                    other => Err(format!("unknown bench spec {other:?}")),
                }
            });
        let cache_dir =
            std::env::temp_dir().join(format!("glade-bench-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        std::fs::create_dir_all(&cache_dir).expect("create bench cache dir");
        let config = ServeConfig { cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };

        let server = Server::new(Arc::clone(&factory), config.clone())
            .spawn(&socket)
            .expect("spawn restart-bench server");
        let start = Instant::now();
        let mut client = ServeClient::connect(&socket).expect("connect cold client");
        let mut request = OpenRequest::new("toy-xml");
        request.events = false;
        request.cache = true;
        let (campaign, _) = client.open(&request).expect("open cold campaign");
        let cold = client.synthesize(&seeds, |_| {}).expect("cold run");
        let cold_secs = secs(start.elapsed());
        // No close(): the campaign stays open in the journal, like a crash.
        drop(client);
        server.shutdown().expect("restart-bench server shutdown");

        let server =
            Server::new(factory, config).spawn(&socket).expect("respawn restart-bench server");
        let start = Instant::now();
        let mut client = ServeClient::connect(&socket).expect("connect resume client");
        client.resume(campaign).expect("resume campaign");
        let resumed = client.resume_result(|_| {}).expect("replay result");
        let resume_secs = secs(start.elapsed());
        client.close().expect("close resume client");
        server.shutdown().expect("respawned server shutdown");
        let _ = std::fs::remove_dir_all(&cache_dir);

        eprintln!(
            "[bench-queries] serve_restart: cold {:.3}s ({} unique), resume {:.3}s \
             ({} new unique queries re-paid)",
            cold_secs, cold.stats.unique_queries, resume_secs, resumed.stats.new_unique_queries,
        );
        assert_eq!(
            resumed.grammar_text, cold.grammar_text,
            "resumed grammar drifted from the interrupted campaign"
        );
        assert_eq!(
            resumed.stats.new_unique_queries, 0,
            "a checkpointed campaign must re-pay zero unique queries on resume"
        );
        j.open_obj(Some("serve_restart"));
        j.string("target", "toy-xml running example (journal + cache resume across restart)");
        j.num("cold_secs", cold_secs);
        j.num("resume_secs", resume_secs);
        j.int("cold_unique_queries", cold.stats.unique_queries);
        j.int("resume_new_unique_queries", resumed.stats.new_unique_queries);
        j.boolean("grammar_identical", resumed.grammar_text == cold.grammar_text);
        j.close_obj();
    }

    // ---- Experiment 11: cache_scale — the binary snapshot codec at
    // production cache sizes. A synthetic cache of `GLADE_BENCH_CACHE_N`
    // entries (deterministic ~36-byte queries, the scale of a long-lived
    // serve deployment) is written in both formats; full loads are timed
    // best-of-3, then the indexed partial-load path answers a sparse query
    // set through `BinaryCacheFile` and reports the fraction of the file
    // it touched. Pins (enforced at the full default size): binary full
    // load ≥5x faster than text, partial load touches <10% of the file.
    {
        let n = env_usize("GLADE_BENCH_CACHE_N", 100_000);
        eprintln!("[bench-queries] cache_scale: {n} synthetic cache entries");
        let mut entries: Vec<(Vec<u8>, bool)> = (0..n)
            .map(|i| {
                // Deterministic, realistic-length queries (~36 bytes, the
                // running example's context-wrapped candidate shape).
                let pad = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
                (format!("<tag id=\"{i:08}\" pad=\"{pad:016x}\"/>").into_bytes(), i % 3 != 0)
            })
            .collect();
        entries.sort();
        let fingerprint = Some("bench:cache-scale");
        let text = snapshot_to_text_with_memo(&entries, &[], fingerprint);
        let binary = snapshot_to_binary(&entries, &[], fingerprint);
        let dir = std::env::temp_dir();
        let text_path = dir.join(format!("glade-bench-cache-{}.txt", std::process::id()));
        let bin_path = dir.join(format!("glade-bench-cache-{}.bin", std::process::id()));
        std::fs::write(&text_path, &text).expect("write text snapshot");
        std::fs::write(&bin_path, &binary).expect("write binary snapshot");

        let best_of = |load: &dyn Fn() -> usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                let loaded = load();
                let wall = secs(start.elapsed());
                assert_eq!(loaded, n, "full load must decode every entry");
                if wall < best {
                    best = wall;
                }
            }
            best
        };
        let text_secs = best_of(&|| {
            let file = std::fs::File::open(&text_path).expect("open text snapshot");
            snapshot_from_reader(std::io::BufReader::new(file)).expect("text load").entries.len()
        });
        let bin_secs = best_of(&|| {
            let file = std::fs::File::open(&bin_path).expect("open binary snapshot");
            snapshot_from_binary_reader(&mut std::io::BufReader::new(file))
                .expect("binary load")
                .entries
                .len()
        });
        let speedup = text_secs / bin_secs;

        // Sparse warm start: a campaign that re-poses only a handful of
        // its historical queries should fault in a sliver of the file.
        let lookups = (n / 400).clamp(4, 256);
        let mut file = BinaryCacheFile::open(&bin_path).expect("open for partial load");
        let mut agree = true;
        for k in 0..lookups {
            // Half present (spread across the key space), half absent.
            if k % 2 == 0 {
                let (query, verdict) = &entries[(k * entries.len()) / lookups];
                agree &= file.lookup(query).expect("present lookup") == Some(*verdict);
            } else {
                let absent = format!("<absent id=\"{k:08}\"/>").into_bytes();
                agree &= file.lookup(&absent).expect("absent lookup").is_none();
            }
        }
        let fraction = file.bytes_touched() as f64 / file.file_len() as f64;
        let _ = std::fs::remove_file(&text_path);
        let _ = std::fs::remove_file(&bin_path);

        eprintln!(
            "[bench-queries] cache_scale: text load {:.1}ms, binary load {:.1}ms ({speedup:.1}x), \
             {lookups} sparse lookups touched {:.2}% of the file",
            text_secs * 1e3,
            bin_secs * 1e3,
            fraction * 100.0,
        );
        assert!(agree, "partial-load verdicts disagreed with the snapshot contents");
        assert!(
            fraction < 0.10,
            "sparse partial load touched {:.1}% of the file (pin: <10%)",
            fraction * 100.0
        );
        // The speedup pin only binds at production scale — tiny CI smoke
        // sizes are dominated by per-call constants, not decode rate.
        if n >= 100_000 {
            assert!(
                speedup >= 5.0,
                "binary load was only {speedup:.1}x faster than text at {n} entries (pin: >=5x)"
            );
        }
        j.open_obj(Some("cache_scale"));
        j.string("target", "synthetic query cache (binary vs text snapshot codecs)");
        j.int("entries", n);
        j.int("text_bytes", text.len());
        j.int("binary_bytes", binary.len());
        j.num("text_load_secs", text_secs);
        j.num("binary_load_secs", bin_secs);
        j.num("binary_load_speedup", speedup);
        j.int("partial_lookups", lookups);
        j.int("partial_bytes_touched", file.bytes_touched() as usize);
        j.num("partial_file_fraction", fraction);
        j.boolean("partial_verdicts_agree", agree);
        j.close_obj();
    }

    j.close_obj();

    std::fs::write(&out_path, format!("{}\n", j.out)).expect("write BENCH_queries.json");
    eprintln!("[bench-queries] wrote {out_path}");
}
