//! `bench-queries` — machine-readable benchmark of the membership-query
//! engine, emitted as `BENCH_queries.json`.
//!
//! Three experiment families, so the perf trajectory of the query layer
//! is recorded in-repo:
//!
//! 1. **`parallel_speedup`** — the full pipeline on the paper's running
//!    example (`<a>hi</a>`, Figure 2) against an artificially slowed oracle
//!    (default 100 µs per distinct query, `GLADE_BENCH_ORACLE_US` to
//!    override), swept over worker counts. Reports per-stage wall times,
//!    the wall-clock speedup of the parallel stages (phase-2 merge +
//!    character generalization) versus the sequential path, and asserts
//!    that the synthesized grammar is byte-identical and the distinct-query
//!    count unchanged at every worker count.
//! 2. **`pipeline`** — the fig4/fig5 synthesis configurations: full GLADE
//!    on each handwritten Section 8.2 language (URL, Grep, Lisp, XML) plus
//!    the toy-XML running-example language, with grammar-membership
//!    oracles and sampled seeds. Reports wall time, unique/total queries,
//!    and merge-pair counts.
//! 3. **`cache_reuse`** — the session API's persistent query cache: one
//!    cold run on the running example, snapshot, then the identical run in
//!    a fresh session warm-started from the snapshot. Records wall times
//!    and asserts the warm run pays zero new unique queries.
//!
//! Usage: `cargo run --release -p glade-bench --bin bench-queries`
//! (writes `BENCH_queries.json` to the current directory, override with
//! `GLADE_BENCH_OUT`).

use glade_core::{FnOracle, GladeBuilder, Oracle, SynthesisStats};
use glade_eval::sample_seeds;
use glade_grammar::grammar_to_text;
use glade_targets::languages::{section82_languages, toy_xml};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct SpeedupRow {
    workers: usize,
    stats: SynthesisStats,
    grammar: String,
    wall: Duration,
}

fn run_speedup(workers: usize, oracle_delay: Duration) -> SpeedupRow {
    // Membership delegates to the canonical running-example language
    // (`toy_xml`) so the bench can never drift from the language it claims
    // to measure; the configurable delay stands in for target-program cost.
    let inner = toy_xml().oracle();
    let oracle = FnOracle::new(move |i: &[u8]| {
        if !oracle_delay.is_zero() {
            std::thread::sleep(oracle_delay);
        }
        inner.accepts(i)
    });
    let start = Instant::now();
    let result = GladeBuilder::new()
        .worker_threads(workers)
        .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
        .expect("valid seed");
    SpeedupRow {
        workers,
        grammar: grammar_to_text(&result.grammar),
        stats: result.stats,
        wall: start.elapsed(),
    }
}

/// Cache-persistence experiment: one cold session run, snapshot the query
/// cache, then replay the identical run in a fresh session warm-started
/// from the snapshot. Returns (cold, warm) results; the warm run must pay
/// zero new unique queries.
fn run_cache_reuse(oracle_delay: Duration) -> (glade_core::Synthesis, glade_core::Synthesis) {
    let inner = toy_xml().oracle();
    let oracle = FnOracle::new(move |i: &[u8]| {
        if !oracle_delay.is_zero() {
            std::thread::sleep(oracle_delay);
        }
        inner.accepts(i)
    });
    let mut cold_session = GladeBuilder::new().session(&oracle);
    let cold = cold_session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    let snapshot = cold_session.export_cache();
    let mut warm_session = GladeBuilder::new().session(&oracle);
    warm_session.import_cache(&snapshot).expect("snapshot parses");
    let warm = warm_session.add_seeds(&[b"<a>hi</a>".to_vec()]).expect("valid seed");
    (cold, warm)
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Minimal JSON writer (no serde in the dependency set).
struct Json {
    out: String,
    needs_comma: Vec<bool>,
}

impl Json {
    fn new() -> Self {
        Json { out: String::new(), needs_comma: Vec::new() }
    }

    fn sep(&mut self) {
        if let Some(need) = self.needs_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    fn open_obj(&mut self, key: Option<&str>) {
        self.sep();
        if let Some(k) = key {
            write!(self.out, "{:?}:", k).unwrap();
        }
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn close_obj(&mut self) {
        self.out.push('}');
        self.needs_comma.pop();
    }

    fn open_arr(&mut self, key: &str) {
        self.sep();
        write!(self.out, "{:?}:[", key).unwrap();
        self.needs_comma.push(false);
    }

    fn close_arr(&mut self) {
        self.out.push(']');
        self.needs_comma.pop();
    }

    fn num(&mut self, key: &str, v: f64) {
        self.sep();
        write!(self.out, "{:?}:{:.6}", key, v).unwrap();
    }

    fn int(&mut self, key: &str, v: usize) {
        self.sep();
        write!(self.out, "{:?}:{}", key, v).unwrap();
    }

    fn boolean(&mut self, key: &str, v: bool) {
        self.sep();
        write!(self.out, "{:?}:{}", key, v).unwrap();
    }

    fn string(&mut self, key: &str, v: &str) {
        self.sep();
        write!(self.out, "{:?}:{:?}", key, v).unwrap();
    }
}

fn stats_fields(j: &mut Json, stats: &SynthesisStats) {
    j.int("unique_queries", stats.unique_queries);
    j.int("total_queries", stats.total_queries);
    j.int("merge_pairs_tried", stats.merge_pairs_tried);
    j.int("merges_accepted", stats.merges_accepted);
    j.int("chars_generalized", stats.chars_generalized);
    j.num("phase1_secs", secs(stats.phase1_time));
    j.num("chargen_secs", secs(stats.chargen_time));
    j.num("phase2_secs", secs(stats.phase2_time));
}

fn main() {
    let oracle_us: u64 =
        std::env::var("GLADE_BENCH_ORACLE_US").ok().and_then(|v| v.parse().ok()).unwrap_or(100);
    let oracle_delay = Duration::from_micros(oracle_us);
    let out_path = std::env::var("GLADE_BENCH_OUT").unwrap_or_else(|_| "BENCH_queries.json".into());

    let mut j = Json::new();
    j.open_obj(None);
    j.string("bench", "glade membership-query engine");
    j.int("oracle_delay_us", oracle_us as usize);
    j.int("available_parallelism", std::thread::available_parallelism().map_or(1, |n| n.get()));

    // ---- Experiment 1: worker-count sweep on the running example. ----
    eprintln!("[bench-queries] parallel_speedup: oracle delay {oracle_us} µs");
    let worker_counts = [1usize, 2, 4, 8];
    let rows: Vec<SpeedupRow> =
        worker_counts.iter().map(|&w| run_speedup(w, oracle_delay)).collect();
    let baseline = &rows[0];
    // The parallel stages of the pipeline: phase-2 merge + chargen.
    let par_stage = |r: &SpeedupRow| r.stats.chargen_time + r.stats.phase2_time;

    j.open_arr("parallel_speedup");
    for row in &rows {
        let stage_speedup = secs(par_stage(baseline)) / secs(par_stage(row)).max(1e-9);
        let wall_speedup = secs(baseline.wall) / secs(row.wall).max(1e-9);
        eprintln!(
            "[bench-queries]   workers={} wall={:.3}s merge+chargen={:.3}s (x{:.2}) unique={}",
            row.workers,
            secs(row.wall),
            secs(par_stage(row)),
            stage_speedup,
            row.stats.unique_queries,
        );
        j.open_obj(None);
        j.int("workers", row.workers);
        j.num("wall_secs", secs(row.wall));
        j.num("merge_chargen_secs", secs(par_stage(row)));
        j.num("merge_chargen_speedup_vs_sequential", stage_speedup);
        j.num("wall_speedup_vs_sequential", wall_speedup);
        j.boolean("grammar_identical_to_sequential", row.grammar == baseline.grammar);
        j.boolean(
            "unique_queries_equal_to_sequential",
            row.stats.unique_queries == baseline.stats.unique_queries,
        );
        stats_fields(&mut j, &row.stats);
        j.close_obj();
    }
    j.close_arr();

    for row in &rows[1..] {
        assert_eq!(row.grammar, baseline.grammar, "grammar drifted at {} workers", row.workers);
        assert_eq!(
            row.stats.unique_queries, baseline.stats.unique_queries,
            "query count drifted at {} workers",
            row.workers
        );
    }

    // ---- Experiment 2: fig4/fig5 pipeline configs. ----
    j.open_arr("pipeline");
    let mut languages = section82_languages();
    languages.push(toy_xml());
    for language in &languages {
        let mut rng = StdRng::seed_from_u64(17);
        let seeds = sample_seeds(language, 10, &mut rng);
        let oracle = language.oracle();
        let start = Instant::now();
        match GladeBuilder::new().max_queries(200_000).synthesize(&seeds, &oracle) {
            Ok(result) => {
                let wall = start.elapsed();
                eprintln!(
                    "[bench-queries] pipeline {}: wall={:.3}s unique={} merges={}/{}",
                    language.name(),
                    secs(wall),
                    result.stats.unique_queries,
                    result.stats.merges_accepted,
                    result.stats.merge_pairs_tried,
                );
                j.open_obj(None);
                j.string("language", language.name());
                j.int("num_seeds", seeds.len());
                j.num("wall_secs", secs(wall));
                j.boolean("budget_exhausted", result.stats.budget_exhausted);
                stats_fields(&mut j, &result.stats);
                j.close_obj();
            }
            Err(e) => {
                j.open_obj(None);
                j.string("language", language.name());
                j.string("error", &e.to_string());
                j.close_obj();
            }
        }
    }
    j.close_arr();

    // ---- Experiment 3: persistent-cache warm start. ----
    let cold_start = Instant::now();
    let (cold, warm) = run_cache_reuse(oracle_delay);
    let reuse_wall = cold_start.elapsed();
    eprintln!(
        "[bench-queries] cache_reuse: cold unique={} warm new_unique={} (total {:.3}s)",
        cold.stats.unique_queries,
        warm.stats.new_unique_queries,
        secs(reuse_wall),
    );
    assert_eq!(warm.stats.new_unique_queries, 0, "warm re-run re-paid oracle calls");
    j.open_obj(Some("cache_reuse"));
    j.int("cold_unique_queries", cold.stats.unique_queries);
    j.int("warm_new_unique_queries", warm.stats.new_unique_queries);
    j.num("cold_total_secs", secs(cold.stats.total_time()));
    j.num("warm_total_secs", secs(warm.stats.total_time()));
    j.boolean(
        "warm_grammar_identical",
        grammar_to_text(&warm.grammar) == grammar_to_text(&cold.grammar),
    );
    j.close_obj();

    j.close_obj();

    std::fs::write(&out_path, format!("{}\n", j.out)).expect("write BENCH_queries.json");
    eprintln!("[bench-queries] wrote {out_path}");
}
