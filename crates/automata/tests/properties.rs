//! Property-based tests cross-validating the automata stack against the
//! regex engine from `glade-grammar`, and checking learner guarantees.

use glade_automata::{dfa_from_regex, rpni, Alphabet, Dfa, LStar, PerfectEquivalence};
use glade_grammar::Regex;
use proptest::prelude::*;
use rand::SeedableRng;

fn small_byte() -> impl Strategy<Value = u8> {
    prop_oneof![Just(b'a'), Just(b'b')]
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        3 => small_byte().prop_map(|b| Regex::lit(&[b])),
        1 => Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(small_byte(), 0..10)
}

/// Random small DFA over {a, b}.
fn arb_dfa() -> impl Strategy<Value = Dfa> {
    (2usize..6).prop_flat_map(|n| {
        let trans =
            proptest::collection::vec(proptest::collection::vec(0u32..n as u32, 2..=2), n..=n);
        let acc = proptest::collection::vec(any::<bool>(), n..=n);
        (trans, acc).prop_map(move |(t, a)| Dfa::new(Alphabet::from_bytes(b"ab"), t, a, 0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Thompson + subset + minimize agrees with the derivative matcher.
    #[test]
    fn dfa_pipeline_matches_regex(r in arb_regex(), input in arb_input()) {
        let d = dfa_from_regex(&r, Alphabet::from_bytes(b"ab"));
        prop_assert_eq!(d.accepts(&input), r.is_match(&input), "regex {}", r);
    }

    /// Minimization preserves the language.
    #[test]
    fn minimize_preserves_language(d in arb_dfa(), input in arb_input()) {
        let m = d.minimize();
        prop_assert_eq!(m.accepts(&input), d.accepts(&input));
        prop_assert!(m.num_states() <= d.num_states());
    }

    /// Minimization is idempotent in state count.
    #[test]
    fn minimize_is_idempotent(d in arb_dfa()) {
        let m = d.minimize();
        prop_assert_eq!(m.minimize().num_states(), m.num_states());
    }

    /// `difference_witness` really witnesses a difference, and equivalence
    /// with itself always holds.
    #[test]
    fn difference_witness_is_sound(d1 in arb_dfa(), d2 in arb_dfa()) {
        prop_assert!(d1.equivalent(&d1));
        if let Some(w) = d1.difference_witness(&d2) {
            prop_assert_ne!(d1.accepts(&w), d2.accepts(&w));
        } else {
            // Equal languages: spot-check agreement.
            for s in [&b""[..], b"a", b"b", b"ab", b"ba", b"aabb"] {
                prop_assert_eq!(d1.accepts(s), d2.accepts(s));
            }
        }
    }

    /// DFA samples are members of the DFA's language.
    #[test]
    fn dfa_samples_are_members(d in arb_dfa(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(s) = d.sample(&mut rng, 8) {
            prop_assert!(d.accepts(&s));
        } else {
            // No member of length ≤ 8 exists; verify on short strings.
            for len in 0..=3usize {
                for bits in 0..(1usize << len) {
                    let s: Vec<u8> = (0..len)
                        .map(|i| if bits >> i & 1 == 1 { b'a' } else { b'b' })
                        .collect();
                    prop_assert!(!d.accepts(&s));
                }
            }
        }
    }

    /// L-Star with a perfect equivalence oracle learns any small DFA exactly
    /// (Angluin's guarantee).
    #[test]
    fn lstar_exact_with_perfect_oracle(d in arb_dfa()) {
        let target = d.minimize();
        let t = target.clone();
        let mut membership = move |w: &[u8]| t.accepts(w);
        let mut equiv = PerfectEquivalence::new(target.clone());
        let r = LStar::new(target.alphabet().clone()).learn(&mut membership, &mut equiv);
        prop_assert!(r.completed);
        prop_assert!(r.dfa.equivalent(&target));
        prop_assert_eq!(r.dfa.minimize().num_states(), target.num_states());
    }

    /// RPNI output is always consistent with its training examples.
    #[test]
    fn rpni_consistent_with_examples(
        strings in proptest::collection::vec(arb_input(), 1..12),
        labels in proptest::collection::vec(any::<bool>(), 12),
    ) {
        use std::collections::HashMap;
        let mut labelled: HashMap<Vec<u8>, bool> = HashMap::new();
        for (i, s) in strings.iter().enumerate() {
            labelled.entry(s.clone()).or_insert(labels[i % labels.len()]);
        }
        let pos: Vec<Vec<u8>> =
            labelled.iter().filter(|(_, &v)| v).map(|(k, _)| k.clone()).collect();
        let neg: Vec<Vec<u8>> =
            labelled.iter().filter(|(_, &v)| !v).map(|(k, _)| k.clone()).collect();
        let sigma = Alphabet::from_bytes(b"ab");
        let d = rpni(&sigma, &pos, &neg).expect("deduplicated examples are consistent");
        for p in &pos {
            prop_assert!(d.accepts(p), "positive {:?}", p);
        }
        for n in &neg {
            prop_assert!(!d.accepts(n), "negative {:?}", n);
        }
    }
}
