//! The RPNI passive learner (the second baseline of Section 8.2).
//!
//! RPNI (Oncina & García) learns a DFA from labelled examples: it builds the
//! prefix-tree acceptor of the positive examples, augments it with the
//! negative examples, and then greedily merges states in breadth-first
//! order, keeping a merge only if no negative example becomes accepted.
//! The merge step uses the standard union-find "merge and determinize" fold.

use crate::{Alphabet, Dfa};

/// Labels carried by prefix-tree states during learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Unknown,
    Accept,
    Reject,
}

impl Label {
    fn join(self, other: Label) -> Option<Label> {
        match (self, other) {
            (Label::Unknown, l) | (l, Label::Unknown) => Some(l),
            (Label::Accept, Label::Accept) => Some(Label::Accept),
            (Label::Reject, Label::Reject) => Some(Label::Reject),
            _ => None,
        }
    }
}

/// Errors reported by [`rpni`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpniError {
    /// An example contains a byte that is not in the learning alphabet.
    ByteOutsideAlphabet(u8),
    /// The same string appears both as a positive and a negative example.
    ContradictoryExamples(Vec<u8>),
}

impl std::fmt::Display for RpniError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpniError::ByteOutsideAlphabet(b) => {
                write!(f, "example byte {b:#04x} outside the learning alphabet")
            }
            RpniError::ContradictoryExamples(w) => write!(
                f,
                "string {:?} labelled both positive and negative",
                String::from_utf8_lossy(w)
            ),
        }
    }
}

impl std::error::Error for RpniError {}

/// Union-find with path compression.
#[derive(Debug, Clone)]
struct Partition {
    parent: Vec<u32>,
}

impl Partition {
    fn new(n: usize) -> Self {
        Partition { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the classes of `a` and `b`, keeping the smaller root id as
    /// representative (so the PTA's breadth-first canonical order survives).
    fn union(&mut self, a: u32, b: u32) -> (u32, u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        let (keep, drop) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent[drop as usize] = keep;
        (keep, drop)
    }
}

/// A quotiented prefix-tree acceptor: per-representative successor rows and
/// labels, refined destructively by merges.
#[derive(Debug, Clone)]
struct MergedAut {
    part: Partition,
    /// `children[rep][sym]` — meaningful only at representative indices;
    /// stored targets may be stale and must be canonicalized with `find`.
    children: Vec<Vec<Option<u32>>>,
    labels: Vec<Label>,
}

impl MergedAut {
    fn from_examples(
        alphabet: &Alphabet,
        positives: &[Vec<u8>],
        negatives: &[Vec<u8>],
    ) -> Result<Self, RpniError> {
        let k = alphabet.len();
        let mut children: Vec<Vec<Option<u32>>> = vec![vec![None; k]];
        let mut labels = vec![Label::Unknown];
        let insert = |word: &[u8],
                      label: Label,
                      children: &mut Vec<Vec<Option<u32>>>,
                      labels: &mut Vec<Label>|
         -> Result<(), RpniError> {
            let mut cur = 0usize;
            for &b in word {
                let a = alphabet.index_of(b).ok_or(RpniError::ByteOutsideAlphabet(b))?;
                cur = match children[cur][a] {
                    Some(c) => c as usize,
                    None => {
                        let id = children.len() as u32;
                        children.push(vec![None; k]);
                        labels.push(Label::Unknown);
                        children[cur][a] = Some(id);
                        id as usize
                    }
                };
            }
            labels[cur] = labels[cur]
                .join(label)
                .ok_or_else(|| RpniError::ContradictoryExamples(word.to_vec()))?;
            Ok(())
        };
        for p in positives {
            insert(p, Label::Accept, &mut children, &mut labels)?;
        }
        for n in negatives {
            insert(n, Label::Reject, &mut children, &mut labels)?;
        }
        let n = children.len();
        Ok(MergedAut { part: Partition::new(n), children, labels })
    }

    fn num_symbols(&self) -> usize {
        self.children[0].len()
    }

    /// The canonical successor of representative `rep` on symbol `sym`.
    fn child(&mut self, rep: u32, sym: usize) -> Option<u32> {
        let raw = self.children[rep as usize][sym]?;
        Some(self.part.find(raw))
    }

    /// Merges the classes of `r` and `b`, folding successors for
    /// determinism. Returns `None` on a positive/negative label conflict.
    fn try_merge(&self, r: u32, b: u32) -> Option<MergedAut> {
        let mut a = self.clone();
        let k = a.num_symbols();
        let mut work = vec![(r, b)];
        while let Some((x, y)) = work.pop() {
            let rx = a.part.find(x);
            let ry = a.part.find(y);
            if rx == ry {
                continue;
            }
            let joined = a.labels[rx as usize].join(a.labels[ry as usize])?;
            let (keep, drop) = a.part.union(rx, ry);
            a.labels[keep as usize] = joined;
            for sym in 0..k {
                let ck = a.children[keep as usize][sym];
                let cd = a.children[drop as usize][sym];
                match (ck, cd) {
                    (Some(cx), Some(cy)) => work.push((cx, cy)),
                    (None, Some(cy)) => a.children[keep as usize][sym] = Some(cy),
                    _ => {}
                }
            }
        }
        Some(a)
    }
}

/// Runs RPNI on the given positive and negative examples.
///
/// The learned DFA accepts every positive example and rejects every negative
/// example; states never pinned down by an example reject (the conventional
/// completion). With an empty negative set RPNI collapses to a near-universal
/// language — exactly the overgeneralization failure mode the paper
/// describes (Section 8.2).
///
/// # Errors
///
/// Returns an error if an example contains bytes outside `alphabet` or if
/// the same string is labelled both ways.
///
/// # Examples
///
/// ```
/// use glade_automata::{rpni, Alphabet};
///
/// let sigma = Alphabet::from_bytes(b"ab");
/// let positives: Vec<Vec<u8>> = vec![b"".to_vec(), b"ab".to_vec(), b"abab".to_vec()];
/// let negatives: Vec<Vec<u8>> = vec![b"a".to_vec(), b"b".to_vec(), b"aba".to_vec()];
/// let dfa = rpni(&sigma, &positives, &negatives)?;
/// assert!(dfa.accepts(b"abab"));
/// assert!(!dfa.accepts(b"aba"));
/// # Ok::<(), glade_automata::RpniError>(())
/// ```
pub fn rpni(
    alphabet: &Alphabet,
    positives: &[Vec<u8>],
    negatives: &[Vec<u8>],
) -> Result<Dfa, RpniError> {
    let mut aut = MergedAut::from_examples(alphabet, positives, negatives)?;
    let k = alphabet.len();
    let mut red: Vec<u32> = vec![0];

    loop {
        // Blue set: canonical successors of red classes that are not red.
        let mut blue: Vec<u32> = Vec::new();
        for &r in &red.clone() {
            for sym in 0..k {
                if let Some(c) = aut.child(r, sym) {
                    if !red.contains(&c) && !blue.contains(&c) {
                        blue.push(c);
                    }
                }
            }
        }
        if blue.is_empty() {
            break;
        }
        blue.sort_unstable();
        let b = blue[0];
        let mut merged = false;
        for &r in &red {
            if let Some(next) = aut.try_merge(r, b) {
                aut = next;
                merged = true;
                break;
            }
        }
        if merged {
            // Merging can collapse red representatives onto each other.
            let mut new_red: Vec<u32> = red.iter().map(|&r| aut.part.find(r)).collect();
            new_red.sort_unstable();
            new_red.dedup();
            red = new_red;
        } else {
            red.push(b);
            red.sort_unstable();
        }
    }

    // Quotient automaton over representatives reachable from the root.
    let n = aut.children.len();
    let mut reps: Vec<u32> = (0..n as u32).map(|s| aut.part.find(s)).collect();
    reps.sort_unstable();
    reps.dedup();
    let id_of = |rep: u32, reps: &[u32]| reps.binary_search(&rep).expect("rep present") as u32;

    let dead = reps.len() as u32;
    let mut trans = vec![vec![dead; k]; reps.len() + 1];
    let mut accepting = vec![false; reps.len() + 1];
    for &rep in &reps {
        let id = id_of(rep, &reps) as usize;
        accepting[id] = aut.labels[rep as usize] == Label::Accept;
        for (sym, slot) in trans[id].iter_mut().enumerate() {
            if let Some(c) = aut.child(rep, sym) {
                *slot = id_of(c, &reps);
            }
        }
    }
    let start = id_of(aut.part.find(0), &reps);
    Ok(Dfa::new(alphabet.clone(), trans, accepting, start).minimize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learn(pos: &[&[u8]], neg: &[&[u8]]) -> Dfa {
        let all: Vec<&[u8]> = pos.iter().chain(neg.iter()).copied().collect();
        let sigma = Alphabet::from_strings(all);
        rpni(
            &sigma,
            &pos.iter().map(|s| s.to_vec()).collect::<Vec<_>>(),
            &neg.iter().map(|s| s.to_vec()).collect::<Vec<_>>(),
        )
        .expect("consistent examples")
    }

    #[test]
    fn consistent_with_training_examples() {
        let pos: &[&[u8]] = &[b"", b"ab", b"abab", b"ababab"];
        let neg: &[&[u8]] = &[b"a", b"b", b"aba", b"ba", b"abb"];
        let d = learn(pos, neg);
        for p in pos {
            assert!(d.accepts(p), "positive {:?}", String::from_utf8_lossy(p));
        }
        for n in neg {
            assert!(!d.accepts(n), "negative {:?}", String::from_utf8_lossy(n));
        }
    }

    #[test]
    fn generalizes_ab_star_with_characteristic_sample() {
        let pos: &[&[u8]] = &[b"", b"ab", b"abab"];
        let neg: &[&[u8]] = &[b"a", b"b", b"ba", b"aba", b"abb", b"aab"];
        let d = learn(pos, neg);
        assert!(d.accepts(b"abababab"));
        assert!(!d.accepts(b"ababa"));
    }

    #[test]
    fn no_negatives_collapses_to_permissive_language() {
        // With no negatives RPNI merges everything: the classic
        // overgeneralization the paper criticizes.
        let pos: &[&[u8]] = &[b"ab", b"abab"];
        let d = learn(pos, &[]);
        assert!(d.accepts(b"ab"));
        assert!(d.accepts(b"ba"));
    }

    #[test]
    fn contradictory_examples_error() {
        let sigma = Alphabet::from_bytes(b"a");
        let err = rpni(&sigma, &[b"a".to_vec()], &[b"a".to_vec()]).unwrap_err();
        assert!(matches!(err, RpniError::ContradictoryExamples(_)));
    }

    #[test]
    fn byte_outside_alphabet_error() {
        let sigma = Alphabet::from_bytes(b"a");
        let err = rpni(&sigma, &[b"b".to_vec()], &[]).unwrap_err();
        assert_eq!(err, RpniError::ByteOutsideAlphabet(b'b'));
    }

    #[test]
    fn learns_parity_language() {
        // Even number of a's, any number of b's.
        let pos: &[&[u8]] = &[b"", b"aa", b"aaaa", b"abab", b"aabb", b"baba", b"bb", b"baa"];
        let neg: &[&[u8]] = &[b"a", b"aaa", b"ab", b"ba", b"bbba", b"aaab", b"abb"];
        let d = learn(pos, neg);
        assert!(d.accepts(b"bb"));
        assert!(d.accepts(b"abab"));
        assert!(!d.accepts(b"abbb"));
    }

    #[test]
    fn empty_examples_yield_empty_language() {
        let sigma = Alphabet::from_bytes(b"ab");
        let d = rpni(&sigma, &[], &[]).unwrap();
        assert!(d.is_language_empty());
    }

    #[test]
    fn single_positive_yields_exact_string() {
        // One positive, enough negatives to block every merge around it.
        let pos: &[&[u8]] = &[b"ab"];
        let neg: &[&[u8]] = &[b"", b"a", b"b", b"aa", b"ba", b"bb", b"aba", b"abb"];
        let d = learn(pos, neg);
        assert!(d.accepts(b"ab"));
        for n in neg {
            assert!(!d.accepts(n));
        }
    }
}
