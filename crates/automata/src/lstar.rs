//! Angluin's L-Star algorithm (the first baseline of Section 8.2).
//!
//! L-Star learns a regular language from a membership oracle and an
//! equivalence oracle. In the grammar-synthesis setting no true equivalence
//! oracle exists, so — following the paper — the equivalence oracle is
//! approximated by random sampling ([`SamplingEquivalence`]): the hypothesis
//! is accepted if no disagreement with the membership oracle is found within
//! a fixed number of samples. A perfect product-automaton oracle
//! ([`PerfectEquivalence`]) is provided for unit tests, where L-Star's exact
//! learning guarantee must hold.

use crate::{Alphabet, Dfa};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Decides whether a hypothesis DFA matches the target language, returning a
/// counterexample string on which they disagree.
pub trait EquivalenceOracle {
    /// Returns `Some(w)` with `hypothesis.accepts(w) != target(w)`, or
    /// `None` to accept the hypothesis.
    fn counterexample(&mut self, hypothesis: &Dfa) -> Option<Vec<u8>>;
}

/// Perfect equivalence oracle backed by a known target DFA (tests only).
#[derive(Debug, Clone)]
pub struct PerfectEquivalence {
    target: Dfa,
}

impl PerfectEquivalence {
    /// Creates an oracle for `target`.
    pub fn new(target: Dfa) -> Self {
        PerfectEquivalence { target }
    }
}

impl EquivalenceOracle for PerfectEquivalence {
    fn counterexample(&mut self, hypothesis: &Dfa) -> Option<Vec<u8>> {
        self.target.difference_witness(hypothesis)
    }
}

/// The paper's sampling approximation of an equivalence oracle: draw up to
/// `samples` strings from a generator and report the first disagreement with
/// the membership predicate.
pub struct SamplingEquivalence<G, M> {
    generator: G,
    membership: M,
    samples: usize,
}

impl<G, M> SamplingEquivalence<G, M>
where
    G: FnMut() -> Vec<u8>,
    M: FnMut(&[u8]) -> bool,
{
    /// Creates an oracle drawing at most `samples` strings per equivalence
    /// query (the paper uses 50).
    pub fn new(generator: G, membership: M, samples: usize) -> Self {
        SamplingEquivalence { generator, membership, samples }
    }
}

impl<G, M> EquivalenceOracle for SamplingEquivalence<G, M>
where
    G: FnMut() -> Vec<u8>,
    M: FnMut(&[u8]) -> bool,
{
    fn counterexample(&mut self, hypothesis: &Dfa) -> Option<Vec<u8>> {
        for _ in 0..self.samples {
            let w = (self.generator)();
            if hypothesis.accepts(&w) != (self.membership)(&w) {
                return Some(w);
            }
        }
        None
    }
}

/// Resource limits for a learning run, emulating the paper's 300-second
/// timeout.
#[derive(Debug, Clone, Copy)]
pub struct LearnBudget {
    /// Maximum number of membership queries.
    pub max_queries: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
}

impl Default for LearnBudget {
    fn default() -> Self {
        LearnBudget { max_queries: 2_000_000, time_limit: Duration::from_secs(300) }
    }
}

/// Result of a learning run.
#[derive(Debug, Clone)]
pub struct LearnResult {
    /// The final (or best-effort, on budget exhaustion) hypothesis.
    pub dfa: Dfa,
    /// Number of membership queries issued.
    pub membership_queries: usize,
    /// Number of equivalence queries issued.
    pub equivalence_queries: usize,
    /// Whether the run finished (equivalence oracle accepted) rather than
    /// exhausting its budget.
    pub completed: bool,
}

/// Angluin's L-Star learner over a fixed alphabet.
///
/// # Examples
///
/// ```
/// use glade_automata::{dfa_from_regex, Alphabet, LStar, PerfectEquivalence};
/// use glade_grammar::Regex;
///
/// let sigma = Alphabet::from_bytes(b"ab");
/// let target = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), sigma.clone());
/// let t = target.clone();
/// let mut membership = |w: &[u8]| t.accepts(w);
/// let mut equiv = PerfectEquivalence::new(target.clone());
/// let result = LStar::new(sigma).learn(&mut membership, &mut equiv);
/// assert!(result.completed);
/// assert!(result.dfa.equivalent(&target));
/// ```
#[derive(Debug, Clone)]
pub struct LStar {
    alphabet: Alphabet,
    budget: LearnBudget,
}

impl LStar {
    /// Creates a learner with the default budget.
    pub fn new(alphabet: Alphabet) -> Self {
        LStar { alphabet, budget: LearnBudget::default() }
    }

    /// Sets the resource budget.
    pub fn with_budget(mut self, budget: LearnBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the learner.
    pub fn learn(
        &self,
        membership: &mut dyn FnMut(&[u8]) -> bool,
        equivalence: &mut dyn EquivalenceOracle,
    ) -> LearnResult {
        let start_time = Instant::now();
        let mut table = ObservationTable::new(self.alphabet.clone());
        let mut queries = 0usize;
        let mut eq_queries = 0usize;
        let mut last_hypothesis: Option<Dfa> = None;

        let over_budget = |queries: usize, start_time: Instant, budget: &LearnBudget| {
            queries >= budget.max_queries || start_time.elapsed() >= budget.time_limit
        };

        loop {
            // Close and make consistent, querying as needed.
            loop {
                if over_budget(queries, start_time, &self.budget) {
                    return self.bail(table, membership, &mut queries, eq_queries, last_hypothesis);
                }
                table.fill(membership, &mut queries);
                if let Some(unclosed) = table.find_unclosed() {
                    table.add_prefix(unclosed);
                    continue;
                }
                if let Some(new_suffix) = table.find_inconsistent() {
                    table.add_suffix(new_suffix);
                    continue;
                }
                break;
            }
            let hyp = table.to_dfa();
            last_hypothesis = Some(hyp.clone());
            eq_queries += 1;
            match equivalence.counterexample(&hyp) {
                None => {
                    return LearnResult {
                        dfa: hyp,
                        membership_queries: queries,
                        equivalence_queries: eq_queries,
                        completed: true,
                    };
                }
                Some(cex) => {
                    // Filter counterexamples containing out-of-alphabet
                    // bytes: the hypothesis space cannot express them.
                    if cex.iter().all(|&b| self.alphabet.index_of(b).is_some()) {
                        for plen in 1..=cex.len() {
                            table.add_prefix(cex[..plen].to_vec());
                        }
                    }
                    if over_budget(queries, start_time, &self.budget) {
                        return self.bail(
                            table,
                            membership,
                            &mut queries,
                            eq_queries,
                            last_hypothesis,
                        );
                    }
                }
            }
        }
    }

    fn bail(
        &self,
        table: ObservationTable,
        _membership: &mut dyn FnMut(&[u8]) -> bool,
        queries: &mut usize,
        eq_queries: usize,
        last_hypothesis: Option<Dfa>,
    ) -> LearnResult {
        let dfa = last_hypothesis.unwrap_or_else(|| {
            // No hypothesis was ever built; return the trie of known-positive
            // prefixes so the result is at least consistent with the cache.
            let positives: Vec<Vec<u8>> =
                table.cache.iter().filter(|(_, &v)| v).map(|(k, _)| k.clone()).collect();
            Dfa::from_strings(self.alphabet.clone(), positives)
        });
        LearnResult {
            dfa,
            membership_queries: *queries,
            equivalence_queries: eq_queries,
            completed: false,
        }
    }
}

/// The classic L-Star observation table `(S, E, T)`.
struct ObservationTable {
    alphabet: Alphabet,
    /// Access prefixes `S` (deduplicated, insertion order).
    prefixes: Vec<Vec<u8>>,
    /// Distinguishing suffixes `E`.
    suffixes: Vec<Vec<u8>>,
    /// Membership cache `T`.
    cache: HashMap<Vec<u8>, bool>,
}

impl ObservationTable {
    fn new(alphabet: Alphabet) -> Self {
        ObservationTable {
            alphabet,
            prefixes: vec![Vec::new()],
            suffixes: vec![Vec::new()],
            cache: HashMap::new(),
        }
    }

    fn add_prefix(&mut self, p: Vec<u8>) {
        if !self.prefixes.contains(&p) {
            self.prefixes.push(p);
        }
    }

    fn add_suffix(&mut self, s: Vec<u8>) {
        if !self.suffixes.contains(&s) {
            self.suffixes.push(s);
        }
    }

    /// Ensures every needed cell is cached.
    fn fill(&mut self, membership: &mut dyn FnMut(&[u8]) -> bool, queries: &mut usize) {
        let mut words: Vec<Vec<u8>> = Vec::new();
        for p in &self.prefixes {
            for ext in self.one_extensions(p) {
                for s in &self.suffixes {
                    let mut w = ext.clone();
                    w.extend_from_slice(s);
                    words.push(w);
                }
            }
        }
        for w in words {
            if let std::collections::hash_map::Entry::Vacant(e) = self.cache.entry(w) {
                *queries += 1;
                let v = membership(e.key());
                e.insert(v);
            }
        }
    }

    /// `p` itself plus `p·a` for every symbol `a`.
    fn one_extensions(&self, p: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(self.alphabet.len() + 1);
        out.push(p.to_vec());
        for a in self.alphabet.iter() {
            let mut e = p.to_vec();
            e.push(a);
            out.push(e);
        }
        out
    }

    fn row(&self, p: &[u8]) -> Vec<bool> {
        self.suffixes
            .iter()
            .map(|s| {
                let mut w = p.to_vec();
                w.extend_from_slice(s);
                *self.cache.get(&w).unwrap_or(&false)
            })
            .collect()
    }

    /// Finds `p·a` whose row matches no prefix row (table not closed).
    fn find_unclosed(&self) -> Option<Vec<u8>> {
        let rows: Vec<Vec<bool>> = self.prefixes.iter().map(|p| self.row(p)).collect();
        for p in &self.prefixes {
            for a in self.alphabet.iter() {
                let mut ext = p.clone();
                ext.push(a);
                if !rows.contains(&self.row(&ext)) {
                    return Some(ext);
                }
            }
        }
        None
    }

    /// Finds a new suffix witnessing an inconsistency (two equal prefix rows
    /// whose one-symbol extensions differ).
    fn find_inconsistent(&self) -> Option<Vec<u8>> {
        for (i, p1) in self.prefixes.iter().enumerate() {
            for p2 in self.prefixes.iter().skip(i + 1) {
                if self.row(p1) != self.row(p2) {
                    continue;
                }
                for a in self.alphabet.iter() {
                    let mut e1 = p1.clone();
                    e1.push(a);
                    let mut e2 = p2.clone();
                    e2.push(a);
                    for (k, s) in self.suffixes.iter().enumerate() {
                        let r1 = self.row(&e1);
                        let r2 = self.row(&e2);
                        if r1[k] != r2[k] {
                            let mut new_suffix = vec![a];
                            new_suffix.extend_from_slice(s);
                            return Some(new_suffix);
                        }
                    }
                }
            }
        }
        None
    }

    /// Builds the hypothesis DFA from a closed, consistent table.
    fn to_dfa(&self) -> Dfa {
        let mut row_ids: HashMap<Vec<bool>, u32> = HashMap::new();
        let mut reps: Vec<Vec<u8>> = Vec::new();
        for p in &self.prefixes {
            let r = self.row(p);
            row_ids.entry(r).or_insert_with(|| {
                reps.push(p.clone());
                (reps.len() - 1) as u32
            });
        }
        let k = self.alphabet.len();
        let n = reps.len();
        let mut trans = vec![vec![0u32; k]; n];
        let mut accepting = vec![false; n];
        for (i, rep) in reps.iter().enumerate() {
            let row = self.row(rep);
            // ε ∈ E is always the first suffix, so acceptance is row[0].
            accepting[i] = row[0];
            for (a, b) in self.alphabet.iter().enumerate() {
                let mut ext = rep.clone();
                ext.push(b);
                let ext_row = self.row(&ext);
                // Closedness guarantees the row exists.
                trans[i][a] = *row_ids.get(&ext_row).expect("table closed");
            }
        }
        let start = *row_ids.get(&self.row(&[])).expect("ε row present");
        Dfa::new(self.alphabet.clone(), trans, accepting, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa_from_regex;
    use glade_grammar::Regex;
    use rand::Rng;
    use rand::SeedableRng;

    fn exact_learn(target: &Dfa) -> LearnResult {
        let t1 = target.clone();
        let mut membership = move |w: &[u8]| t1.accepts(w);
        let mut equiv = PerfectEquivalence::new(target.clone());
        LStar::new(target.alphabet().clone()).learn(&mut membership, &mut equiv)
    }

    #[test]
    fn learns_ab_star_exactly() {
        let sigma = Alphabet::from_bytes(b"ab");
        let target = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), sigma);
        let r = exact_learn(&target);
        assert!(r.completed);
        assert!(r.dfa.equivalent(&target));
        assert_eq!(r.dfa.minimize().num_states(), target.num_states());
    }

    #[test]
    fn learns_language_with_modular_structure() {
        // Strings over {a,b} with an even number of a's and ending in b.
        let sigma = Alphabet::from_bytes(b"ab");
        // states: (parity of a) x (last byte == b) + initial
        // Build via regex: (b|ab*a)* b  ... simpler to hand-code target:
        let target = Dfa::new(
            sigma,
            vec![
                // (even, last-not-b)=q0, (even,last-b)=q1, (odd,*)=q2,q3
                vec![2, 1], // q0: a->odd, b->even+b
                vec![2, 1], // q1
                vec![0, 3], // q2: a->even(last a), b->odd+b
                vec![0, 3], // q3
            ],
            vec![false, true, false, false],
            0,
        );
        let r = exact_learn(&target);
        assert!(r.completed);
        assert!(r.dfa.equivalent(&target));
    }

    #[test]
    fn learns_finite_language() {
        let sigma = Alphabet::from_bytes(b"xy");
        let target = Dfa::from_strings(sigma, [b"x".as_slice(), b"xy".as_slice()]).minimize();
        let r = exact_learn(&target);
        assert!(r.completed);
        assert!(r.dfa.equivalent(&target));
    }

    #[test]
    fn query_budget_is_respected() {
        let sigma = Alphabet::from_bytes(b"ab");
        let target = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), sigma.clone());
        let t1 = target.clone();
        let mut membership = move |w: &[u8]| t1.accepts(w);
        let mut equiv = PerfectEquivalence::new(target);
        let budget = LearnBudget { max_queries: 3, time_limit: Duration::from_secs(300) };
        let r = LStar::new(sigma).with_budget(budget).learn(&mut membership, &mut equiv);
        assert!(!r.completed);
        // A best-effort DFA is still produced.
        assert!(r.dfa.num_states() >= 1);
    }

    #[test]
    fn sampling_equivalence_finds_counterexamples() {
        let sigma = Alphabet::from_bytes(b"ab");
        let target = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), sigma.clone());
        let t1 = target.clone();
        let t2 = target.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let gen = move || {
            let len = rng.gen_range(0..8);
            (0..len).map(|_| if rng.gen_bool(0.5) { b'a' } else { b'b' }).collect::<Vec<u8>>()
        };
        let membership = move |w: &[u8]| t1.accepts(w);
        let mut equiv = SamplingEquivalence::new(gen, membership, 200);
        // Hypothesis = everything: must be refuted quickly.
        let all = Dfa::new(sigma, vec![vec![0, 0]], vec![true], 0);
        let cex = equiv.counterexample(&all).expect("must find counterexample");
        assert_ne!(all.accepts(&cex), t2.accepts(&cex));
    }

    #[test]
    fn learn_with_sampling_equivalence_approximates() {
        let sigma = Alphabet::from_bytes(b"ab");
        let target = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), sigma.clone());
        let t1 = target.clone();
        let t2 = target.clone();
        let mut membership = move |w: &[u8]| t1.accepts(w);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let gen = move || {
            let len = rng.gen_range(0..10);
            (0..len).map(|_| if rng.gen_bool(0.5) { b'a' } else { b'b' }).collect::<Vec<u8>>()
        };
        let t3 = target.clone();
        let mem2 = move |w: &[u8]| t3.accepts(w);
        let mut equiv = SamplingEquivalence::new(gen, mem2, 100);
        let r = LStar::new(sigma).learn(&mut membership, &mut equiv);
        assert!(r.completed);
        // With 100 samples over a tiny language this should be exact.
        assert!(r.dfa.equivalent(&t2));
    }
}
