//! Finite-automata substrate and language-inference baselines for the GLADE
//! reproduction.
//!
//! The GLADE paper (Bastani et al., PLDI 2017, Section 8.2) compares its
//! grammar synthesizer against the two most widely studied language
//! inference algorithms, both of which learn DFAs:
//!
//! * [`LStar`] — Angluin's active learner, driven by a membership oracle and
//!   an [`EquivalenceOracle`]. In the paper's blackbox setting the
//!   equivalence oracle is approximated by sampling
//!   ([`SamplingEquivalence`]).
//! * [`rpni`] — the RPNI passive learner over positive and negative
//!   examples.
//!
//! Supporting machinery: [`Alphabet`]s, complete [`Dfa`]s with minimization,
//! equivalence checking and language sampling, and [`Nfa`]s with Thompson
//! construction from [`glade_grammar::Regex`] (see [`dfa_from_regex`]).
//!
//! # Example: exact learning with a perfect oracle
//!
//! ```
//! use glade_automata::{dfa_from_regex, Alphabet, LStar, PerfectEquivalence};
//! use glade_grammar::Regex;
//!
//! let sigma = Alphabet::from_bytes(b"ab");
//! let target = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), sigma.clone());
//! let t = target.clone();
//! let result = LStar::new(sigma).learn(
//!     &mut |w: &[u8]| t.accepts(w),
//!     &mut PerfectEquivalence::new(target.clone()),
//! );
//! assert!(result.dfa.equivalent(&target));
//! ```

#![warn(missing_docs)]

mod alphabet;
mod dfa;
mod lstar;
mod nfa;
mod rpni;

pub use alphabet::Alphabet;
pub use dfa::Dfa;
pub use lstar::{
    EquivalenceOracle, LStar, LearnBudget, LearnResult, PerfectEquivalence, SamplingEquivalence,
};
pub use nfa::{dfa_from_regex, Nfa};
pub use rpni::{rpni, RpniError};
