//! Nondeterministic finite automata and the regex → NFA → DFA pipeline.
//!
//! Handwritten target languages in the evaluation (e.g. the URL regex of
//! Section 8.2) are regular expressions; the learners and the perfect
//! equivalence oracles used in tests need DFAs. This module provides the
//! classic Thompson construction and subset construction to bridge the two.

use crate::{Alphabet, Dfa};
use glade_grammar::Regex;
use std::collections::{BTreeSet, HashMap};

/// A Thompson-style NFA with ε-transitions and byte-class edges.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// ε-successors per state.
    eps: Vec<Vec<u32>>,
    /// Labelled edges per state.
    edges: Vec<Vec<(glade_grammar::CharClass, u32)>>,
    start: u32,
    accept: u32,
}

impl Nfa {
    /// Builds an NFA recognizing `L(regex)` by Thompson's construction.
    pub fn from_regex(regex: &Regex) -> Nfa {
        let mut nfa = Nfa { eps: Vec::new(), edges: Vec::new(), start: 0, accept: 0 };
        let (s, a) = nfa.compile(regex);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    fn fresh(&mut self) -> u32 {
        let id = self.eps.len() as u32;
        self.eps.push(Vec::new());
        self.edges.push(Vec::new());
        id
    }

    /// Compiles `r`, returning `(entry, exit)` states.
    fn compile(&mut self, r: &Regex) -> (u32, u32) {
        match r {
            Regex::Empty => {
                let s = self.fresh();
                let a = self.fresh();
                (s, a) // no path from s to a
            }
            Regex::Epsilon => {
                let s = self.fresh();
                let a = self.fresh();
                self.eps[s as usize].push(a);
                (s, a)
            }
            Regex::Class(c) => {
                let s = self.fresh();
                let a = self.fresh();
                self.edges[s as usize].push((*c, a));
                (s, a)
            }
            Regex::Concat(parts) => {
                let mut entry = None;
                let mut prev_exit: Option<u32> = None;
                for p in parts {
                    let (s, a) = self.compile(p);
                    if let Some(pe) = prev_exit {
                        self.eps[pe as usize].push(s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(a);
                }
                match (entry, prev_exit) {
                    (Some(s), Some(a)) => (s, a),
                    _ => self.compile(&Regex::Epsilon),
                }
            }
            Regex::Alt(parts) => {
                let s = self.fresh();
                let a = self.fresh();
                for p in parts {
                    let (ps, pa) = self.compile(p);
                    self.eps[s as usize].push(ps);
                    self.eps[pa as usize].push(a);
                }
                (s, a)
            }
            Regex::Star(inner) => {
                let s = self.fresh();
                let a = self.fresh();
                let (is, ia) = self.compile(inner);
                self.eps[s as usize].push(is);
                self.eps[s as usize].push(a);
                self.eps[ia as usize].push(is);
                self.eps[ia as usize].push(a);
                (s, a)
            }
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.eps.len()
    }

    fn eps_closure(&self, states: &BTreeSet<u32>) -> BTreeSet<u32> {
        let mut closure = states.clone();
        let mut stack: Vec<u32> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if closure.insert(t) {
                    stack.push(t);
                }
            }
        }
        closure
    }

    /// Whether the NFA accepts `input` (direct simulation).
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut cur = self.eps_closure(&BTreeSet::from([self.start]));
        for &b in input {
            let mut next = BTreeSet::new();
            for &s in &cur {
                for (c, t) in &self.edges[s as usize] {
                    if c.contains(b) {
                        next.insert(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = self.eps_closure(&next);
        }
        cur.contains(&self.accept)
    }

    /// Determinizes over an explicit alphabet by subset construction.
    ///
    /// Bytes outside `alphabet` have no transitions in the result (the DFA
    /// rejects them), so choose an alphabet covering every class in the
    /// source regex when exactness matters.
    pub fn to_dfa(&self, alphabet: Alphabet) -> Dfa {
        let k = alphabet.len();
        let start_set = self.eps_closure(&BTreeSet::from([self.start]));
        let mut ids: HashMap<BTreeSet<u32>, u32> = HashMap::new();
        let mut sets: Vec<BTreeSet<u32>> = Vec::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();

        // State 0 is the dead state (empty subset).
        ids.insert(BTreeSet::new(), 0);
        sets.push(BTreeSet::new());
        trans.push(vec![0; k]);

        let start_id = if start_set.is_empty() {
            0
        } else {
            ids.insert(start_set.clone(), 1);
            sets.push(start_set);
            trans.push(vec![0; k]);
            1
        };

        let mut work = vec![start_id];
        while let Some(id) = work.pop() {
            for a in 0..k {
                let b = alphabet.symbol(a);
                let mut next = BTreeSet::new();
                for &s in &sets[id as usize] {
                    for (c, t) in &self.edges[s as usize] {
                        if c.contains(b) {
                            next.insert(*t);
                        }
                    }
                }
                let next = self.eps_closure(&next);
                let next_id = match ids.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = sets.len() as u32;
                        ids.insert(next.clone(), i);
                        sets.push(next);
                        trans.push(vec![0; k]);
                        work.push(i);
                        i
                    }
                };
                trans[id as usize][a] = next_id;
            }
        }
        let accepting: Vec<bool> = sets.iter().map(|s| s.contains(&self.accept)).collect();
        Dfa::new(alphabet, trans, accepting, start_id)
    }
}

/// Convenience: regex → minimized DFA over `alphabet`.
///
/// # Examples
///
/// ```
/// use glade_automata::{dfa_from_regex, Alphabet};
/// use glade_grammar::Regex;
///
/// let r = Regex::star(Regex::lit(b"ab"));
/// let d = dfa_from_regex(&r, Alphabet::from_bytes(b"ab"));
/// assert!(d.accepts(b"abab"));
/// assert!(!d.accepts(b"aba"));
/// ```
pub fn dfa_from_regex(regex: &Regex, alphabet: Alphabet) -> Dfa {
    Nfa::from_regex(regex).to_dfa(alphabet).minimize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_grammar::CharClass;

    #[test]
    fn thompson_on_literal() {
        let n = Nfa::from_regex(&Regex::lit(b"ab"));
        assert!(n.accepts(b"ab"));
        assert!(!n.accepts(b"a"));
        assert!(!n.accepts(b"abb"));
    }

    #[test]
    fn thompson_on_star_and_alt() {
        let r = Regex::star(Regex::alt(vec![Regex::lit(b"ab"), Regex::lit(b"c")]));
        let n = Nfa::from_regex(&r);
        assert!(n.accepts(b""));
        assert!(n.accepts(b"abccab"));
        assert!(!n.accepts(b"b"));
    }

    #[test]
    fn empty_regex_accepts_nothing() {
        let n = Nfa::from_regex(&Regex::Empty);
        assert!(!n.accepts(b""));
        assert!(!n.accepts(b"a"));
    }

    #[test]
    fn subset_construction_matches_nfa() {
        let r = Regex::concat(vec![
            Regex::star(Regex::class(CharClass::from_bytes(b"ab"))),
            Regex::lit(b"c"),
        ]);
        let n = Nfa::from_regex(&r);
        let d = n.to_dfa(Alphabet::from_bytes(b"abc"));
        for s in [&b""[..], b"c", b"ac", b"abbac", b"cc", b"ca", b"ab"] {
            assert_eq!(n.accepts(s), d.accepts(s), "disagree on {s:?}");
        }
    }

    #[test]
    fn dfa_from_regex_minimizes() {
        let r = Regex::alt(vec![Regex::lit(b"a"), Regex::lit(b"a")]);
        let d = dfa_from_regex(&r, Alphabet::from_bytes(b"a"));
        // "a" needs exactly 3 states (start, accept, dead).
        assert_eq!(d.num_states(), 3);
        assert!(d.accepts(b"a"));
        assert!(!d.accepts(b""));
        assert!(!d.accepts(b"aa"));
    }

    #[test]
    fn determinization_of_empty_language() {
        let d = dfa_from_regex(&Regex::Empty, Alphabet::from_bytes(b"a"));
        assert!(d.is_language_empty());
    }

    #[test]
    fn running_example_through_pipeline() {
        let hi = Regex::alt(vec![Regex::lit(b"h"), Regex::lit(b"i")]);
        let xml = Regex::star(Regex::concat(vec![
            Regex::lit(b"<a>"),
            Regex::star(hi),
            Regex::lit(b"</a>"),
        ]));
        let d = dfa_from_regex(&xml, Alphabet::from_bytes(b"<a>/hi"));
        assert!(d.accepts(b"<a>hi</a><a></a>"));
        assert!(!d.accepts(b"<a>hi</a"));
    }
}
