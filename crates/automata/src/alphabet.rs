//! Finite alphabets for the automata learners.
//!
//! L-Star and RPNI work over an explicit finite alphabet. In the paper's
//! setting the alphabet is taken from the bytes observed in the seed inputs
//! (Section 8.2): learners cannot invent terminals they have never seen, and
//! a full 256-symbol alphabet makes the observation table intractably wide.

use std::fmt;

/// An ordered set of distinct byte symbols with O(1) byte→index lookup.
///
/// # Examples
///
/// ```
/// use glade_automata::Alphabet;
///
/// let sigma = Alphabet::from_bytes(b"abcab");
/// assert_eq!(sigma.len(), 3);
/// assert_eq!(sigma.index_of(b'b'), Some(1));
/// assert_eq!(sigma.index_of(b'z'), None);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alphabet {
    symbols: Vec<u8>,
    index: [Option<u8>; 256],
}

impl Alphabet {
    /// Builds an alphabet from the distinct bytes of `bytes`, in ascending
    /// byte order.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut present = [false; 256];
        for &b in bytes {
            present[b as usize] = true;
        }
        let symbols: Vec<u8> = (0..=255u8).filter(|&b| present[b as usize]).collect();
        Self::from_sorted(symbols)
    }

    /// Builds an alphabet from the distinct bytes occurring in any of the
    /// given strings.
    pub fn from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let mut present = [false; 256];
        for s in strings {
            for &b in s.as_ref() {
                present[b as usize] = true;
            }
        }
        let symbols: Vec<u8> = (0..=255u8).filter(|&b| present[b as usize]).collect();
        Self::from_sorted(symbols)
    }

    /// The printable ASCII alphabet (0x20..=0x7e).
    pub fn printable_ascii() -> Self {
        Self::from_sorted((0x20..=0x7eu8).collect())
    }

    fn from_sorted(symbols: Vec<u8>) -> Self {
        let mut index = [None; 256];
        for (i, &b) in symbols.iter().enumerate() {
            index[b as usize] = Some(i as u8);
        }
        Alphabet { symbols, index }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn symbol(&self, idx: usize) -> u8 {
        self.symbols[idx]
    }

    /// The index of byte `b`, or `None` if `b` is not in the alphabet.
    pub fn index_of(&self, b: u8) -> Option<usize> {
        self.index[b as usize].map(|i| i as usize)
    }

    /// Iterates over the symbols in order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.symbols.iter().copied()
    }

    /// The symbols as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.symbols
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:?}", *b as char)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_dedups_and_sorts() {
        let a = Alphabet::from_bytes(b"cbaab");
        assert_eq!(a.as_slice(), b"abc");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn index_roundtrip() {
        let a = Alphabet::from_bytes(b"xz");
        for (i, b) in a.iter().enumerate() {
            assert_eq!(a.index_of(b), Some(i));
            assert_eq!(a.symbol(i), b);
        }
        assert_eq!(a.index_of(b'y'), None);
    }

    #[test]
    fn from_strings_unions_bytes() {
        let a = Alphabet::from_strings([b"ab".as_slice(), b"bc".as_slice()]);
        assert_eq!(a.as_slice(), b"abc");
    }

    #[test]
    fn printable_ascii_has_95_symbols() {
        assert_eq!(Alphabet::printable_ascii().len(), 95);
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::from_bytes(b"");
        assert!(a.is_empty());
        assert_eq!(a.index_of(b'a'), None);
    }
}
