//! Deterministic finite automata.
//!
//! DFAs are the hypothesis space of the L-Star and RPNI baselines
//! (Section 8.2 of the paper). This module provides a complete-transition
//! DFA with minimization, equivalence checking (used to build perfect
//! equivalence oracles in tests), and language sampling (used to estimate
//! the precision of learned DFAs).

use crate::Alphabet;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// A complete deterministic finite automaton over an [`Alphabet`].
///
/// Every state has a transition for every alphabet symbol; inputs containing
/// bytes outside the alphabet are rejected outright.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dfa {
    alphabet: Alphabet,
    /// `trans[state * alphabet.len() + sym]` = successor state.
    trans: Vec<u32>,
    accepting: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Creates a DFA from explicit tables.
    ///
    /// `trans[s][a]` is the successor of state `s` on symbol index `a`.
    ///
    /// # Panics
    ///
    /// Panics if the tables are ragged, reference out-of-range states, or if
    /// `start` is out of range.
    pub fn new(alphabet: Alphabet, trans: Vec<Vec<u32>>, accepting: Vec<bool>, start: u32) -> Self {
        let n = trans.len();
        assert_eq!(accepting.len(), n, "accepting table length mismatch");
        assert!((start as usize) < n.max(1), "start state out of range");
        let k = alphabet.len();
        let mut flat = Vec::with_capacity(n * k);
        for row in &trans {
            assert_eq!(row.len(), k, "transition row length mismatch");
            for &t in row {
                assert!((t as usize) < n, "transition target out of range");
                flat.push(t);
            }
        }
        Dfa { alphabet, trans: flat, accepting, start }
    }

    /// The single-state DFA rejecting every string.
    pub fn empty(alphabet: Alphabet) -> Self {
        let k = alphabet.len();
        Dfa { alphabet, trans: vec![0; k], accepting: vec![false], start: 0 }
    }

    /// The DFA accepting exactly the given finite set of strings (a trie
    /// with a dead state).
    pub fn from_strings<I, S>(alphabet: Alphabet, strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let k = alphabet.len();
        // State 0 = dead.
        let mut trans: Vec<Vec<u32>> = vec![vec![0; k]];
        let mut accepting = vec![false];
        let start = {
            trans.push(vec![0; k]);
            accepting.push(false);
            1u32
        };
        for s in strings {
            let mut cur = start as usize;
            for &b in s.as_ref() {
                let Some(a) = alphabet.index_of(b) else { break };
                let next = trans[cur][a];
                let next = if next == 0 {
                    let id = trans.len() as u32;
                    trans.push(vec![0; k]);
                    accepting.push(false);
                    trans[cur][a] = id;
                    id
                } else {
                    next
                };
                cur = next as usize;
            }
            accepting[cur] = true;
        }
        Dfa::new(alphabet, trans, accepting, start)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }

    /// The successor of `state` on symbol index `sym`.
    pub fn step(&self, state: u32, sym: usize) -> u32 {
        self.trans[state as usize * self.alphabet.len() + sym]
    }

    /// Runs the DFA; returns the final state, or `None` if some byte is
    /// outside the alphabet.
    pub fn run(&self, input: &[u8]) -> Option<u32> {
        let mut cur = self.start;
        for &b in input {
            let a = self.alphabet.index_of(b)?;
            cur = self.step(cur, a);
        }
        Some(cur)
    }

    /// Whether the DFA accepts `input`.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.run(input).is_some_and(|s| self.is_accepting(s))
    }

    /// Whether the language is empty.
    pub fn is_language_empty(&self) -> bool {
        self.reachable().iter().all(|&s| !self.accepting[s as usize])
    }

    fn reachable(&self) -> Vec<u32> {
        let mut seen = vec![false; self.num_states()];
        let mut order = Vec::new();
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            order.push(s);
            for a in 0..self.alphabet.len() {
                let t = self.step(s, a);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        order
    }

    /// Minimizes the DFA (reachable-state restriction + Moore partition
    /// refinement), preserving the language.
    pub fn minimize(&self) -> Dfa {
        let reach = self.reachable();
        let mut id_map = vec![u32::MAX; self.num_states()];
        for (i, &s) in reach.iter().enumerate() {
            id_map[s as usize] = i as u32;
        }
        let k = self.alphabet.len();
        let n = reach.len();
        // Initial partition: accepting vs rejecting.
        let mut class: Vec<u32> =
            reach.iter().map(|&s| u32::from(self.accepting[s as usize])).collect();
        loop {
            // Signature = (class, classes of successors).
            let mut sig_map: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut next_class = vec![0u32; n];
            for (i, &s) in reach.iter().enumerate() {
                let mut sig = Vec::with_capacity(k + 1);
                sig.push(class[i]);
                for a in 0..k {
                    let t = self.step(s, a);
                    sig.push(class[id_map[t as usize] as usize]);
                }
                let fresh = sig_map.len() as u32;
                let c = *sig_map.entry(sig).or_insert(fresh);
                next_class[i] = c;
            }
            let stable = next_class == class;
            class = next_class;
            if stable {
                break;
            }
        }
        let num_classes = class.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut trans = vec![vec![0u32; k]; num_classes];
        let mut accepting = vec![false; num_classes];
        for (i, &s) in reach.iter().enumerate() {
            let c = class[i] as usize;
            accepting[c] = self.accepting[s as usize];
            for (a, slot) in trans[c].iter_mut().enumerate() {
                let t = self.step(s, a);
                *slot = class[id_map[t as usize] as usize];
            }
        }
        let start = class[id_map[self.start as usize] as usize];
        Dfa::new(self.alphabet.clone(), trans, accepting, start)
    }

    /// Searches for a string on which `self` and `other` disagree, via BFS
    /// over the product automaton. Returns `None` iff the languages are
    /// equal.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn difference_witness(&self, other: &Dfa) -> Option<Vec<u8>> {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let k = self.alphabet.len();
        // product state -> predecessor product state + symbol (None at start)
        type Breadcrumbs = HashMap<(u32, u32), Option<(u32, u32, usize)>>;
        let mut seen: Breadcrumbs = HashMap::new();
        let startp = (self.start, other.start);
        seen.insert(startp, None);
        let mut queue = std::collections::VecDeque::from([startp]);
        while let Some((s1, s2)) = queue.pop_front() {
            if self.is_accepting(s1) != other.is_accepting(s2) {
                // Reconstruct the witness.
                let mut path = Vec::new();
                let mut cur = (s1, s2);
                while let Some(&Some((p1, p2, a))) = seen.get(&cur) {
                    path.push(self.alphabet.symbol(a));
                    cur = (p1, p2);
                }
                path.reverse();
                return Some(path);
            }
            for a in 0..k {
                let np = (self.step(s1, a), other.step(s2, a));
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(np) {
                    e.insert(Some((s1, s2, a)));
                    queue.push_back(np);
                }
            }
        }
        None
    }

    /// Whether `self` and `other` accept the same language (requires equal
    /// alphabets).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.difference_witness(other).is_none()
    }

    /// Samples a random accepted string of length at most `max_len`.
    ///
    /// Lengths are chosen with probability proportional to the number of
    /// accepted strings of that length (approximated in `f64`), then a
    /// uniform path of that length is drawn. Returns `None` if no string of
    /// length ≤ `max_len` is accepted.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, max_len: usize) -> Option<Vec<u8>> {
        let k = self.alphabet.len();
        let n = self.num_states();
        // counts[len][state] = number of accepted strings of length `len`
        // starting at `state`.
        let mut counts: Vec<Vec<f64>> = Vec::with_capacity(max_len + 1);
        counts.push(self.accepting.iter().map(|&a| f64::from(u8::from(a))).collect());
        for len in 1..=max_len {
            let prev = &counts[len - 1];
            let mut row = vec![0.0f64; n];
            for (s, cell) in row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for a in 0..k {
                    acc += prev[self.step(s as u32, a) as usize];
                }
                *cell = acc;
            }
            counts.push(row);
        }
        let total: f64 = (0..=max_len).map(|l| counts[l][self.start as usize]).sum();
        if total <= 0.0 {
            return None;
        }
        // Pick a length weighted by count.
        let mut pick = rng.gen_range(0.0..total);
        let mut len = max_len;
        for (l, row) in counts.iter().enumerate().take(max_len + 1) {
            let c = row[self.start as usize];
            if pick < c {
                len = l;
                break;
            }
            pick -= c;
        }
        // Walk, weighting each symbol by the count of completions.
        let mut out = Vec::with_capacity(len);
        let mut state = self.start;
        for remaining in (1..=len).rev() {
            let weights: Vec<f64> =
                (0..k).map(|a| counts[remaining - 1][self.step(state, a) as usize]).collect();
            let total: f64 = weights.iter().sum();
            debug_assert!(total > 0.0);
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = k - 1;
            for (a, w) in weights.iter().enumerate() {
                if pick < *w {
                    chosen = a;
                    break;
                }
                pick -= w;
            }
            out.push(self.alphabet.symbol(chosen));
            state = self.step(state, chosen);
        }
        Some(out)
    }
}

impl fmt::Display for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DFA over {} ({} states, start q{})",
            self.alphabet,
            self.num_states(),
            self.start
        )?;
        for s in 0..self.num_states() as u32 {
            let marker = if self.is_accepting(s) { "*" } else { " " };
            write!(f, "{marker}q{s}:")?;
            for (a, b) in self.alphabet.iter().enumerate() {
                write!(f, " {:?}->q{}", b as char, self.step(s, a))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// DFA for (ab)* over {a, b}.
    fn ab_star() -> Dfa {
        let sigma = Alphabet::from_bytes(b"ab");
        // q0 accepting; q0 -a-> q1, q1 -b-> q0, others -> q2 dead.
        Dfa::new(sigma, vec![vec![1, 2], vec![2, 0], vec![2, 2]], vec![true, false, false], 0)
    }

    #[test]
    fn accepts_ab_star() {
        let d = ab_star();
        assert!(d.accepts(b""));
        assert!(d.accepts(b"abab"));
        assert!(!d.accepts(b"aba"));
        assert!(!d.accepts(b"ba"));
        // Byte outside alphabet rejects.
        assert!(!d.accepts(b"abx"));
    }

    #[test]
    fn from_strings_builds_trie_acceptor() {
        let sigma = Alphabet::from_bytes(b"abc");
        let d = Dfa::from_strings(sigma, [b"ab".as_slice(), b"c".as_slice(), b"".as_slice()]);
        assert!(d.accepts(b"ab"));
        assert!(d.accepts(b"c"));
        assert!(d.accepts(b""));
        assert!(!d.accepts(b"a"));
        assert!(!d.accepts(b"abc"));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // Build a redundant automaton for (ab)* with duplicated states.
        let sigma = Alphabet::from_bytes(b"ab");
        let d = Dfa::new(
            sigma,
            vec![
                vec![1, 4], // q0 (accepting)
                vec![4, 2], // q1
                vec![3, 4], // q2 (accepting, same as q0)
                vec![4, 2], // q3 (same as q1)
                vec![4, 4], // q4 dead
            ],
            vec![true, false, true, false, false],
            0,
        );
        let m = d.minimize();
        assert_eq!(m.num_states(), 3);
        assert!(m.equivalent(&d));
        assert!(m.accepts(b"abab"));
        assert!(!m.accepts(b"a"));
    }

    #[test]
    fn minimize_drops_unreachable() {
        let sigma = Alphabet::from_bytes(b"a");
        let d = Dfa::new(
            sigma,
            vec![vec![0], vec![1]], // q1 unreachable
            vec![true, true],
            0,
        );
        assert_eq!(d.minimize().num_states(), 1);
    }

    #[test]
    fn difference_witness_finds_disagreement() {
        let d1 = ab_star();
        let sigma = Alphabet::from_bytes(b"ab");
        let all = Dfa::new(sigma, vec![vec![0, 0]], vec![true], 0);
        let w = d1.difference_witness(&all).expect("languages differ");
        assert_ne!(d1.accepts(&w), all.accepts(&w));
        assert!(d1.equivalent(&d1.minimize()));
    }

    #[test]
    fn empty_language_detection() {
        let sigma = Alphabet::from_bytes(b"ab");
        assert!(Dfa::empty(sigma).is_language_empty());
        assert!(!ab_star().is_language_empty());
    }

    #[test]
    fn sampling_draws_members() {
        let d = ab_star();
        let mut rng = StdRng::seed_from_u64(13);
        let mut saw_nonempty = false;
        for _ in 0..100 {
            let s = d.sample(&mut rng, 8).expect("nonempty up to len 8");
            assert!(d.accepts(&s), "sample {s:?}");
            saw_nonempty |= !s.is_empty();
        }
        assert!(saw_nonempty, "sampler should produce nonempty members");
    }

    #[test]
    fn sampling_empty_language_returns_none() {
        let sigma = Alphabet::from_bytes(b"ab");
        let d = Dfa::empty(sigma);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng, 6), None);
    }

    #[test]
    fn display_lists_states() {
        let s = ab_star().to_string();
        assert!(s.contains("3 states"), "{s}");
        assert!(s.contains("*q0"), "{s}");
    }
}
