//! Runners for the four learners compared in Section 8.2: L-Star, RPNI,
//! GLADE-P1 (phase one only), and full GLADE.
//!
//! Methodology follows the paper: 50 seed inputs are sampled from the
//! target grammar; learners receive the seeds incrementally until they time
//! out, and the last successfully learned language is evaluated with
//! 1000-sample precision/recall.

use crate::metrics::{evaluate_dfa, evaluate_grammar, Quality};
use glade_automata::{rpni, Alphabet, LStar, LearnBudget, SamplingEquivalence};
use glade_core::{GladeBuilder, Oracle};
use glade_grammar::Sampler;
use glade_targets::Language;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Which learner to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    /// Angluin's L-Star with a sampling equivalence oracle.
    LStar,
    /// RPNI over the seeds plus sampled negative examples.
    Rpni,
    /// GLADE restricted to phase one (+ character generalization).
    GladeP1,
    /// Full GLADE.
    Glade,
}

impl Learner {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Learner::LStar => "L-Star",
            Learner::Rpni => "RPNI",
            Learner::GladeP1 => "GLADE-P1",
            Learner::Glade => "GLADE",
        }
    }

    /// All four, in the paper's presentation order.
    pub fn all() -> [Learner; 4] {
        [Learner::LStar, Learner::Rpni, Learner::GladeP1, Learner::Glade]
    }
}

/// Configuration of a Figure 4 run (scaled-down defaults; the paper's
/// values are in comments).
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Seed inputs sampled from the target grammar (paper: 50).
    pub num_seeds: usize,
    /// Samples per precision/recall estimate (paper: 1000).
    pub eval_samples: usize,
    /// Per-learner time budget (paper: 300 s).
    pub time_limit: Duration,
    /// Samples drawn per equivalence query in L-Star (paper: 50).
    pub equivalence_samples: usize,
    /// Negative examples for RPNI (paper: 50).
    pub num_negatives: usize,
    /// Hard cap on membership queries (keeps L-Star from thrashing).
    pub max_queries: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            num_seeds: 50,
            eval_samples: 1000,
            time_limit: Duration::from_secs(300),
            equivalence_samples: 50,
            num_negatives: 50,
            max_queries: 500_000,
        }
    }
}

/// One row of the Figure 4a/4b data.
#[derive(Debug, Clone)]
pub struct LearnRow {
    /// Target language name.
    pub language: String,
    /// Learner name.
    pub learner: &'static str,
    /// Precision/recall estimates.
    pub quality: Quality,
    /// Wall-clock learning time.
    pub time: Duration,
    /// Whether the time budget cut the run short.
    pub timed_out: bool,
    /// Number of seeds actually consumed before timeout.
    pub seeds_used: usize,
}

impl LearnRow {
    /// The F1 score.
    pub fn f1(&self) -> f64 {
        self.quality.f1()
    }
}

/// Samples `n` seed inputs from the language's grammar.
///
/// Seeds are drawn with a reduced depth budget and re-drawn (up to a bound)
/// when longer than [`MAX_SEED_LEN`]: the paper's seed suites are small
/// (Figure 6: 3–267 lines *total*), and phase one's candidate enumeration
/// is cubic in the seed length, so compact seeds keep the comparison
/// faithful *and* tractable.
pub fn sample_seeds(language: &Language, n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    let sampler = Sampler::with_max_depth(language.grammar(), 12);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut best: Option<Vec<u8>> = None;
        for _ in 0..20 {
            let Some(s) = sampler.sample(rng) else { continue };
            if s.len() <= MAX_SEED_LEN {
                best = Some(s);
                break;
            }
            // Keep the shortest over-long sample as a fallback.
            if best.as_ref().is_none_or(|b| s.len() < b.len()) {
                best = Some(s);
            }
        }
        // Over-long fallbacks stay untruncated — truncation would break
        // membership, violating E_in ⊆ L*.
        out.push(best.unwrap_or_default());
    }
    out
}

/// Length bound applied by [`sample_seeds`].
pub const MAX_SEED_LEN: usize = 48;

/// Samples `n` strings *not* in the language: random strings over the seed
/// alphabet, retried until the oracle rejects (the paper's RPNI setup).
pub fn sample_negatives(
    language: &Language,
    seeds: &[Vec<u8>],
    n: usize,
    rng: &mut StdRng,
) -> Vec<Vec<u8>> {
    let alphabet = Alphabet::from_strings(seeds.iter().map(Vec::as_slice));
    let oracle = language.oracle();
    let max_len = seeds.iter().map(Vec::len).max().unwrap_or(8).max(4);
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 200 {
        attempts += 1;
        let len = rng.gen_range(1..=max_len);
        let s: Vec<u8> =
            (0..len).map(|_| alphabet.symbol(rng.gen_range(0..alphabet.len().max(1)))).collect();
        if !oracle.accepts(&s) {
            out.push(s);
        }
    }
    out
}

/// Runs one learner on one language, returning the Figure 4 row.
pub fn run_learner(
    language: &Language,
    learner: Learner,
    config: &EvalConfig,
    rng: &mut StdRng,
) -> LearnRow {
    let seeds = sample_seeds(language, config.num_seeds, rng);
    run_learner_with_seeds(language, learner, &seeds, config, rng)
}

/// Runs one learner with explicit seeds (used by the Figure 4c seed sweep).
pub fn run_learner_with_seeds(
    language: &Language,
    learner: Learner,
    seeds: &[Vec<u8>],
    config: &EvalConfig,
    rng: &mut StdRng,
) -> LearnRow {
    match learner {
        Learner::Glade | Learner::GladeP1 => run_glade(language, learner, seeds, config, rng),
        Learner::LStar => run_lstar(language, seeds, config, rng),
        Learner::Rpni => run_rpni(language, seeds, config, rng),
    }
}

fn run_glade(
    language: &Language,
    learner: Learner,
    seeds: &[Vec<u8>],
    config: &EvalConfig,
    rng: &mut StdRng,
) -> LearnRow {
    let oracle = language.oracle();
    let start = Instant::now();
    // One session per row; the incremental-seed methodology stays the
    // paper's (all seeds in one run), but the session API lets callers
    // observe and resume these runs.
    let mut session = GladeBuilder::new()
        .phase2(learner == Learner::Glade)
        .max_queries(config.max_queries)
        .time_limit(config.time_limit)
        .session(&oracle);
    let result = session.add_seeds(seeds).expect("seeds sampled from the target are accepted");
    let time = start.elapsed();
    let quality =
        evaluate_grammar(&result.grammar, language.grammar(), &oracle, config.eval_samples, rng);
    LearnRow {
        language: language.name().to_owned(),
        learner: learner.name(),
        quality,
        time,
        timed_out: result.stats.budget_exhausted,
        seeds_used: result.stats.seeds_used,
    }
}

fn run_lstar(
    language: &Language,
    seeds: &[Vec<u8>],
    config: &EvalConfig,
    rng: &mut StdRng,
) -> LearnRow {
    let alphabet = Alphabet::from_strings(seeds.iter().map(Vec::as_slice));
    let oracle = language.oracle();
    let start = Instant::now();

    // Equivalence oracle: random samples, half from the target grammar and
    // half random strings over the alphabet (the paper's variant).
    let sampler_rng = StdRng::seed_from_u64(rng.gen());
    let target_grammar = language.grammar().clone();
    let alpha2 = alphabet.clone();
    let mut gen_rng = sampler_rng;
    let generator = move || {
        let sampler = Sampler::new(&target_grammar);
        if gen_rng.gen_bool(0.5) {
            sampler.sample(&mut gen_rng).unwrap_or_default()
        } else {
            let len = gen_rng.gen_range(0..24);
            (0..len).map(|_| alpha2.symbol(gen_rng.gen_range(0..alpha2.len().max(1)))).collect()
        }
    };
    let o2 = language.oracle();
    let membership_for_eq = move |w: &[u8]| o2.accepts(w);
    let mut equivalence =
        SamplingEquivalence::new(generator, membership_for_eq, config.equivalence_samples);

    let budget = LearnBudget { max_queries: config.max_queries, time_limit: config.time_limit };
    let mut membership = |w: &[u8]| oracle.accepts(w);
    let result = LStar::new(alphabet).with_budget(budget).learn(&mut membership, &mut equivalence);
    let time = start.elapsed();

    let max_len = seeds.iter().map(Vec::len).max().unwrap_or(8) + 8;
    let quality =
        evaluate_dfa(&result.dfa, language.grammar(), &oracle, config.eval_samples, max_len, rng);
    LearnRow {
        language: language.name().to_owned(),
        learner: Learner::LStar.name(),
        quality,
        time,
        timed_out: !result.completed,
        seeds_used: seeds.len(),
    }
}

fn run_rpni(
    language: &Language,
    seeds: &[Vec<u8>],
    config: &EvalConfig,
    rng: &mut StdRng,
) -> LearnRow {
    let oracle = language.oracle();
    let negatives = sample_negatives(language, seeds, config.num_negatives, rng);
    let alphabet = Alphabet::from_strings(seeds.iter().chain(negatives.iter()).map(Vec::as_slice));
    let start = Instant::now();

    // The paper feeds examples incrementally until the timeout and keeps
    // the last language successfully learned.
    let step = (seeds.len() / 10).max(1);
    let mut k = step.min(seeds.len());
    let mut dfa = rpni(&alphabet, &seeds[..k], &negatives).expect("examples are consistent");
    let mut used = k;
    while k < seeds.len() && start.elapsed() <= config.time_limit {
        k = (k + step).min(seeds.len());
        dfa = rpni(&alphabet, &seeds[..k], &negatives).expect("examples are consistent");
        used = k;
    }
    let timed_out = used < seeds.len();
    let time = start.elapsed();

    let max_len = seeds.iter().map(Vec::len).max().unwrap_or(8) + 8;
    let quality =
        evaluate_dfa(&dfa, language.grammar(), &oracle, config.eval_samples, max_len, rng);
    LearnRow {
        language: language.name().to_owned(),
        learner: Learner::Rpni.name(),
        quality,
        time,
        timed_out,
        seeds_used: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_targets::languages::toy_xml;

    fn small_config() -> EvalConfig {
        EvalConfig {
            num_seeds: 8,
            eval_samples: 150,
            time_limit: Duration::from_secs(8),
            equivalence_samples: 30,
            num_negatives: 20,
            max_queries: 60_000,
        }
    }

    #[test]
    fn glade_beats_baselines_on_toy_xml() {
        let lang = toy_xml();
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(42);
        let glade = run_learner(&lang, Learner::Glade, &config, &mut rng);
        let mut rng = StdRng::seed_from_u64(42);
        let rpni_row = run_learner(&lang, Learner::Rpni, &config, &mut rng);
        assert!(
            glade.f1() > 0.9,
            "GLADE should essentially recover toy-xml, got {:?}",
            glade.quality
        );
        assert!(glade.f1() >= rpni_row.f1(), "GLADE {} vs RPNI {}", glade.f1(), rpni_row.f1());
    }

    #[test]
    fn p1_has_high_precision_but_lower_recall_than_full() {
        let lang = toy_xml();
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(7);
        let p1 = run_learner(&lang, Learner::GladeP1, &config, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let full = run_learner(&lang, Learner::Glade, &config, &mut rng);
        assert!(p1.quality.precision > 0.9, "{:?}", p1.quality);
        // Allow sampling noise: full GLADE's recall is at worst ≈ P1's and
        // typically higher once the seed set exposes recursion.
        assert!(full.quality.recall >= p1.quality.recall - 0.05, "full {full:?} p1 {p1:?}");
    }

    #[test]
    fn negatives_are_rejected_by_oracle() {
        let lang = toy_xml();
        let mut rng = StdRng::seed_from_u64(9);
        let mut seeds = sample_seeds(&lang, 5, &mut rng);
        // Random seeds can come out letters-only, whose closure under the
        // induced alphabet contains no negatives; pin one structural seed so
        // the alphabet always includes tag bytes.
        seeds.push(b"<a>hi</a>".to_vec());
        let negs = sample_negatives(&lang, &seeds, 10, &mut rng);
        let oracle = lang.oracle();
        for n in &negs {
            assert!(!oracle.accepts(n));
        }
        assert!(!negs.is_empty());
    }

    #[test]
    fn lstar_runs_within_budget() {
        let lang = toy_xml();
        let mut config = small_config();
        config.time_limit = Duration::from_secs(3);
        config.max_queries = 20_000;
        let mut rng = StdRng::seed_from_u64(11);
        let row = run_learner(&lang, Learner::LStar, &config, &mut rng);
        // The DFA hypothesis space cannot express the recursive language;
        // we only require the run to terminate and produce sane numbers.
        assert!(row.quality.precision >= 0.0 && row.quality.precision <= 1.0);
        assert!(row.quality.recall >= 0.0 && row.quality.recall <= 1.0);
    }

    #[test]
    fn learner_names_and_order() {
        let names: Vec<&str> = Learner::all().iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["L-Star", "RPNI", "GLADE-P1", "GLADE"]);
    }
}
