//! The Figure 4c seed sweep: precision, recall, and running time of GLADE
//! as a function of the number of seed inputs.

use crate::learners::{run_learner_with_seeds, sample_seeds, EvalConfig, LearnRow, Learner};
use glade_targets::Language;
use rand::rngs::StdRng;
use std::time::Duration;

/// One point of the Figure 4c curves.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of seed inputs.
    pub num_seeds: usize,
    /// Precision at this seed count.
    pub precision: f64,
    /// Recall at this seed count.
    pub recall: f64,
    /// Synthesis time.
    pub time: Duration,
}

/// Runs GLADE at each seed count in `counts` and records quality/time.
///
/// Seed sets are nested (the first `n` of one master sample), matching the
/// paper's incremental presentation.
pub fn seed_sweep(
    language: &Language,
    counts: &[usize],
    config: &EvalConfig,
    rng: &mut StdRng,
) -> Vec<SweepPoint> {
    let max = counts.iter().copied().max().unwrap_or(0);
    let master = sample_seeds(language, max, rng);
    counts
        .iter()
        .map(|&n| {
            let row: LearnRow =
                run_learner_with_seeds(language, Learner::Glade, &master[..n], config, rng);
            SweepPoint {
                num_seeds: n,
                precision: row.quality.precision,
                recall: row.quality.recall,
                time: row.time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_targets::languages::toy_xml;
    use rand::SeedableRng;

    #[test]
    fn sweep_produces_one_point_per_count() {
        let lang = toy_xml();
        let config = EvalConfig {
            num_seeds: 6,
            eval_samples: 100,
            time_limit: Duration::from_secs(10),
            equivalence_samples: 10,
            num_negatives: 10,
            max_queries: 100_000,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let points = seed_sweep(&lang, &[1, 3, 6], &config, &mut rng);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].num_seeds, 1);
        assert_eq!(points[2].num_seeds, 6);
        for p in &points {
            assert!(p.precision >= 0.0 && p.precision <= 1.0);
            assert!(p.recall >= 0.0 && p.recall <= 1.0);
        }
        // More seeds never hurt recall much on this easy language; the last
        // point should essentially recover the target.
        assert!(points[2].recall > 0.9, "{points:?}");
    }
}
