//! Evaluation machinery for the GLADE reproduction.
//!
//! Implements the measurement methodology of Section 8 of the paper:
//!
//! * [`Quality`], [`evaluate_grammar`], [`evaluate_dfa`] — sampling-based
//!   precision/recall/F1 (Definition 2.1; 1000 samples each way in the
//!   paper).
//! * [`Learner`], [`run_learner`] — the four-way comparison of Figure 4a/4b
//!   (L-Star, RPNI, GLADE-P1, GLADE) with incremental seed feeding and
//!   timeouts.
//! * [`seed_sweep`] — the Figure 4c precision/recall/time curves over the
//!   number of seed inputs.
//!
//! ```
//! use glade_eval::{run_learner, EvalConfig, Learner};
//! use glade_targets::languages::toy_xml;
//! use rand::SeedableRng;
//! use std::time::Duration;
//!
//! let config = EvalConfig {
//!     num_seeds: 10,
//!     eval_samples: 100,
//!     time_limit: Duration::from_secs(20),
//!     ..EvalConfig::default()
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let row = run_learner(&toy_xml(), Learner::Glade, &config, &mut rng);
//! assert!(row.f1() > 0.8, "F1 = {}", row.f1());
//! ```

#![warn(missing_docs)]

mod learners;
mod metrics;
mod sweep;

pub use learners::{
    run_learner, run_learner_with_seeds, sample_negatives, sample_seeds, EvalConfig, LearnRow,
    Learner, MAX_SEED_LEN,
};
pub use metrics::{evaluate_dfa, evaluate_grammar, Quality};
pub use sweep::{seed_sweep, SweepPoint};
