//! Precision / recall / F1 estimation by sampling (Definition 2.1 and the
//! Section 8.2 methodology).
//!
//! * **Precision** `Pr_{α ~ P_L̂}[α ∈ L*]`: sample the hypothesis, ask the
//!   target oracle.
//! * **Recall** `Pr_{α ~ P_L*}[α ∈ L̂]`: sample the target grammar, test
//!   hypothesis membership.
//!
//! The paper estimates both with 1000 samples and reports
//! `F1 = 2·p·r / (p + r)`.

use glade_automata::Dfa;
use glade_core::Oracle;
use glade_grammar::{Earley, Grammar, Sampler};
use rand::rngs::StdRng;

/// An estimated precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Estimated `Pr_{α ~ P_L̂}[α ∈ L*]`.
    pub precision: f64,
    /// Estimated `Pr_{α ~ P_L*}[α ∈ L̂]`.
    pub recall: f64,
}

impl Quality {
    /// The F1 score (harmonic mean); zero when both components are zero.
    pub fn f1(&self) -> f64 {
        let s = self.precision + self.recall;
        if s == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / s
        }
    }
}

/// Estimates the quality of a hypothesis *grammar* against a target given
/// by `target_grammar` (for recall sampling) and `oracle` (for precision).
pub fn evaluate_grammar(
    hypothesis: &Grammar,
    target_grammar: &Grammar,
    oracle: &dyn Oracle,
    samples: usize,
    rng: &mut StdRng,
) -> Quality {
    let hyp_sampler = Sampler::new(hypothesis);
    let hyp_parser = Earley::new(hypothesis);
    let target_sampler = Sampler::new(target_grammar);

    let mut prec_hits = 0usize;
    let mut prec_total = 0usize;
    for _ in 0..samples {
        if let Some(s) = hyp_sampler.sample(rng) {
            prec_total += 1;
            if oracle.accepts(&s) {
                prec_hits += 1;
            }
        }
    }

    let mut rec_hits = 0usize;
    let mut rec_total = 0usize;
    for _ in 0..samples {
        if let Some(s) = target_sampler.sample(rng) {
            rec_total += 1;
            if hyp_parser.accepts(&s) {
                rec_hits += 1;
            }
        }
    }

    Quality { precision: ratio(prec_hits, prec_total), recall: ratio(rec_hits, rec_total) }
}

/// Estimates the quality of a hypothesis *DFA* (an L-Star or RPNI result)
/// against the same target. DFA precision samples use a length bound
/// `max_len` (we use the longest target sample observed, plus slack).
pub fn evaluate_dfa(
    hypothesis: &Dfa,
    target_grammar: &Grammar,
    oracle: &dyn Oracle,
    samples: usize,
    max_len: usize,
    rng: &mut StdRng,
) -> Quality {
    let target_sampler = Sampler::new(target_grammar);

    let mut prec_hits = 0usize;
    let mut prec_total = 0usize;
    for _ in 0..samples {
        if let Some(s) = hypothesis.sample(rng, max_len) {
            prec_total += 1;
            if oracle.accepts(&s) {
                prec_hits += 1;
            }
        }
    }

    let mut rec_hits = 0usize;
    let mut rec_total = 0usize;
    for _ in 0..samples {
        if let Some(s) = target_sampler.sample(rng) {
            rec_total += 1;
            if hypothesis.accepts(&s) {
                rec_hits += 1;
            }
        }
    }

    Quality { precision: ratio(prec_hits, prec_total), recall: ratio(rec_hits, rec_total) }
}

fn ratio(hits: usize, total: usize) -> f64 {
    if total == 0 {
        // An unsampleable (empty) hypothesis: zero precision by convention,
        // mirroring the paper's treatment of degenerate learners.
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_core::FnOracle;
    use glade_targets::languages::toy_xml;
    use rand::SeedableRng;

    #[test]
    fn f1_of_perfect_hypothesis_is_one() {
        let lang = toy_xml();
        let oracle = lang.oracle();
        let mut rng = StdRng::seed_from_u64(1);
        let q = evaluate_grammar(lang.grammar(), lang.grammar(), &oracle, 200, &mut rng);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn overgeneral_hypothesis_loses_precision_not_recall() {
        use glade_grammar::cfg::{cls, nt, GrammarBuilder};
        use glade_grammar::CharClass;
        // Hypothesis Σ* (any printable bytes) vs target toy-xml.
        let mut b = GrammarBuilder::new();
        let s = b.nt("S");
        b.prod(s, vec![]);
        b.prod(s, [nt(s), cls(CharClass::printable_ascii())].concat());
        let sigma_star = b.build(s).unwrap();

        let lang = toy_xml();
        let oracle = lang.oracle();
        let mut rng = StdRng::seed_from_u64(2);
        let q = evaluate_grammar(&sigma_star, lang.grammar(), &oracle, 300, &mut rng);
        assert_eq!(q.recall, 1.0, "Σ* contains everything");
        // The uniform-production sampler emits many very short strings
        // (ε is always valid), so precision is well below 1 but not tiny.
        assert!(q.precision < 0.8, "random strings are rarely valid: {q:?}");
        assert!(q.f1() < 0.95);
    }

    #[test]
    fn undergeneral_hypothesis_loses_recall_not_precision() {
        use glade_grammar::cfg::{lit, GrammarBuilder};
        // Hypothesis {exactly "<a>hi</a>"} vs target toy-xml.
        let mut b = GrammarBuilder::new();
        let s = b.nt("S");
        b.prod(s, lit(b"<a>hi</a>"));
        let singleton = b.build(s).unwrap();

        let lang = toy_xml();
        let oracle = lang.oracle();
        let mut rng = StdRng::seed_from_u64(3);
        let q = evaluate_grammar(&singleton, lang.grammar(), &oracle, 300, &mut rng);
        assert_eq!(q.precision, 1.0);
        assert!(q.recall < 0.2, "{q:?}");
    }

    #[test]
    fn dfa_evaluation_matches_expectations() {
        use glade_automata::{dfa_from_regex, Alphabet};
        use glade_grammar::cfg::{lit, nt as cfg_nt, GrammarBuilder};
        use glade_grammar::Regex;
        // Target: (ab)* as a CFG; hypothesis: the same language as a DFA.
        let mut b = GrammarBuilder::new();
        let s = b.nt("S");
        b.prod(s, vec![]);
        b.prod(s, [cfg_nt(s), lit(b"ab")].concat());
        let target = b.build(s).unwrap();
        let oracle = FnOracle::new(|w: &[u8]| w.chunks(2).all(|c| c == b"ab"));

        let dfa = dfa_from_regex(&Regex::star(Regex::lit(b"ab")), Alphabet::from_bytes(b"ab"));
        let mut rng = StdRng::seed_from_u64(4);
        let q = evaluate_dfa(&dfa, &target, &oracle, 200, 20, &mut rng);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn empty_dfa_gets_zero_precision() {
        use glade_automata::{Alphabet, Dfa};
        let lang = toy_xml();
        let oracle = lang.oracle();
        let dfa = Dfa::empty(Alphabet::from_bytes(b"ah<>/"));
        let mut rng = StdRng::seed_from_u64(5);
        let q = evaluate_dfa(&dfa, lang.grammar(), &oracle, 100, 20, &mut rng);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn f1_handles_zero_sum() {
        let q = Quality { precision: 0.0, recall: 0.0 };
        assert_eq!(q.f1(), 0.0);
    }
}
