//! An afl-like coverage-guided mutation fuzzer (the paper's second
//! baseline, Section 8.3).
//!
//! Reproduces the documented core loop of afl-fuzz: a queue of interesting
//! inputs seeded with `E_in`, deterministic bit-flip/byte stages over each
//! queue entry, a randomized havoc stage (stacked flips, byte overwrites,
//! insertions, deletions, block copies), and coverage feedback — an input
//! that reaches new coverage joins the queue. Queue entries are fuzzed
//! round-robin, as the paper runs afl over multiple seeds.

use crate::fuzzer::{mutation_alphabet, Fuzzer};
use glade_targets::{Coverage, RunOutcome};
use rand::rngs::StdRng;
use rand::Rng;

/// Interesting byte values borrowed from afl's mutation tables.
const INTERESTING: &[u8] = &[0, 1, 16, 32, 64, 100, 127, 128, 255, b'\n', b' ', b'0', b'A'];

/// The coverage-guided baseline fuzzer.
pub struct AflFuzzer {
    queue: Vec<Vec<u8>>,
    global_coverage: Coverage,
    /// Round-robin cursor into the queue.
    entry: usize,
    /// Next deterministic stage position for the current entry
    /// (bit index for flips, then byte index for interesting values).
    det_pos: usize,
    alphabet: Vec<u8>,
    max_queue: usize,
}

impl AflFuzzer {
    /// Creates a fuzzer seeded with `seeds`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(seeds: Vec<Vec<u8>>) -> Self {
        assert!(!seeds.is_empty(), "afl fuzzer needs at least one seed");
        AflFuzzer {
            queue: seeds,
            global_coverage: Coverage::new(),
            entry: 0,
            det_pos: 0,
            alphabet: mutation_alphabet(),
            max_queue: 4096,
        }
    }

    /// Current queue length (seeds + coverage-increasing discoveries).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn havoc(&self, base: &[u8], rng: &mut StdRng) -> Vec<u8> {
        let mut cur = base.to_vec();
        let stack = 1 << rng.gen_range(1..=5); // 2..32 stacked ops
        for _ in 0..stack {
            match rng.gen_range(0..6) {
                0 if !cur.is_empty() => {
                    // Bit flip.
                    let i = rng.gen_range(0..cur.len());
                    cur[i] ^= 1u8 << rng.gen_range(0..8);
                }
                1 if !cur.is_empty() => {
                    // Overwrite with an interesting value.
                    let i = rng.gen_range(0..cur.len());
                    cur[i] = INTERESTING[rng.gen_range(0..INTERESTING.len())];
                }
                2 if !cur.is_empty() => {
                    // Delete a block.
                    let i = rng.gen_range(0..cur.len());
                    let len = rng.gen_range(1..=(cur.len() - i).min(8));
                    cur.drain(i..i + len);
                }
                3 => {
                    // Insert a random byte.
                    let i = rng.gen_range(0..=cur.len());
                    let b = self.alphabet[rng.gen_range(0..self.alphabet.len())];
                    cur.insert(i, b);
                }
                4 if cur.len() >= 2 => {
                    // Copy a block elsewhere (afl's block splice).
                    let src = rng.gen_range(0..cur.len());
                    let len = rng.gen_range(1..=(cur.len() - src).min(8));
                    let block: Vec<u8> = cur[src..src + len].to_vec();
                    let dst = rng.gen_range(0..=cur.len());
                    for (k, b) in block.into_iter().enumerate() {
                        cur.insert(dst + k, b);
                    }
                }
                _ if !cur.is_empty() => {
                    // Overwrite with a random alphabet byte.
                    let i = rng.gen_range(0..cur.len());
                    cur[i] = self.alphabet[rng.gen_range(0..self.alphabet.len())];
                }
                _ => {}
            }
            // Keep inputs from growing without bound.
            if cur.len() > 4096 {
                cur.truncate(4096);
            }
        }
        cur
    }
}

impl Fuzzer for AflFuzzer {
    fn name(&self) -> &str {
        "afl"
    }

    fn next_input(&mut self, rng: &mut StdRng) -> Vec<u8> {
        let base = self.queue[self.entry].clone();
        let bitflips = base.len() * 8;
        let interesting_stage = bitflips + base.len();

        if self.det_pos < bitflips && !base.is_empty() {
            // Deterministic stage 1: single bit flips.
            let mut m = base.clone();
            m[self.det_pos / 8] ^= 1 << (self.det_pos % 8);
            self.det_pos += 1;
            m
        } else if self.det_pos < interesting_stage && !base.is_empty() {
            // Deterministic stage 2: interesting byte overwrites.
            let idx = self.det_pos - bitflips;
            let mut m = base.clone();
            m[idx] = INTERESTING[(idx + self.det_pos) % INTERESTING.len()];
            self.det_pos += 1;
            m
        } else {
            // Havoc stage, then move round-robin to the next entry.
            let m = self.havoc(&base, rng);
            self.entry = (self.entry + 1) % self.queue.len();
            self.det_pos = 0;
            m
        }
    }

    fn observe(&mut self, input: &[u8], outcome: &RunOutcome) {
        if self.global_coverage.would_grow(&outcome.coverage) {
            self.global_coverage.merge(&outcome.coverage);
            if self.queue.len() < self.max_queue {
                self.queue.push(input.to_vec());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_targets::programs::Xml;
    use glade_targets::Target;
    use rand::SeedableRng;

    #[test]
    fn deterministic_stage_flips_single_bits() {
        let mut f = AflFuzzer::new(vec![b"ab".to_vec()]);
        let mut rng = StdRng::seed_from_u64(1);
        let first = f.next_input(&mut rng);
        // Exactly one bit differs from the seed.
        let diff: u32 = first.iter().zip(b"ab".iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn coverage_feedback_grows_queue() {
        let xml = Xml;
        let mut f = AflFuzzer::new(vec![b"<a></a>".to_vec()]);
        let mut rng = StdRng::seed_from_u64(2);
        let initial = f.queue_len();
        for _ in 0..500 {
            let input = f.next_input(&mut rng);
            let outcome = xml.run(&input);
            f.observe(&input, &outcome);
        }
        assert!(f.queue_len() > initial, "coverage feedback never fired");
    }

    #[test]
    fn havoc_reaches_after_deterministic_stages() {
        let mut f = AflFuzzer::new(vec![b"x".to_vec()]);
        let mut rng = StdRng::seed_from_u64(3);
        // 8 bit flips + 1 interesting byte, then havoc.
        for _ in 0..9 {
            let _ = f.next_input(&mut rng);
        }
        let havoc_input = f.next_input(&mut rng);
        // Havoc output is some byte string; the fuzzer must not panic and
        // must keep cycling.
        let _ = havoc_input;
        let _ = f.next_input(&mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_set() {
        let _ = AflFuzzer::new(Vec::new());
    }
}
