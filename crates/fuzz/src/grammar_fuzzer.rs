//! The grammar-based fuzzer driven by a synthesized grammar (Section 8.3).
//!
//! "To generate a single random input, our grammar-based fuzzer first
//! uniformly selects a seed input α ∈ E_in and constructs the parse tree
//! for α according to Ĉ. Second, it performs a series of n modifications to
//! α, where n is chosen uniformly between 0 and 50. A single modification
//! … randomly choose[s] a node N of the parse tree … and [replaces the
//! subtree's substring] with a random sample α' ~ P_{L(C,A)}."
//!
//! Implementation note: each modification replaces a subtree with a freshly
//! sampled derivation. The replacement is kept as an opaque span labelled
//! with its nonterminal; later modifications in the same input may replace
//! it again wholesale but do not descend into its internal structure (the
//! original subtrees remain selectable). This matches the paper's
//! description of node replacement while avoiding a re-parse per
//! modification.

use crate::fuzzer::Fuzzer;
use glade_grammar::{Earley, Grammar, NtId, ParseTree, Sampler};
use rand::rngs::StdRng;
use rand::Rng;

/// A mutable derivation tree: parse-tree nodes plus opaque resampled spans.
#[derive(Debug, Clone)]
enum MutTree {
    /// Raw bytes (terminals, or an already-resampled region).
    Bytes(Vec<u8>),
    /// A nonterminal node that can still be resampled.
    Node { nt: NtId, children: Vec<MutTree> },
}

impl MutTree {
    fn from_parse_tree(t: &ParseTree) -> MutTree {
        match t {
            ParseTree::Leaf { byte, .. } => MutTree::Bytes(vec![*byte]),
            ParseTree::Node { nt, children, .. } => MutTree::Node {
                nt: *nt,
                children: children.iter().map(MutTree::from_parse_tree).collect(),
            },
        }
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        match self {
            MutTree::Bytes(b) => out.extend_from_slice(b),
            MutTree::Node { children, .. } => {
                for c in children {
                    c.write_bytes(out);
                }
            }
        }
    }

    /// Collects the paths of all `Node`s (preorder; the root path is empty).
    fn node_paths(&self, prefix: &mut Vec<u32>, out: &mut Vec<(Vec<u32>, NtId)>) {
        if let MutTree::Node { nt, children } = self {
            out.push((prefix.clone(), *nt));
            for (k, c) in children.iter().enumerate() {
                prefix.push(k as u32);
                c.node_paths(prefix, out);
                prefix.pop();
            }
        }
    }

    fn replace_at(&mut self, path: &[u32], replacement: MutTree) {
        match path.split_first() {
            None => *self = replacement,
            Some((&k, rest)) => {
                if let MutTree::Node { children, .. } = self {
                    children[k as usize].replace_at(rest, replacement);
                }
            }
        }
    }
}

/// The GLADE fuzzer: seed parse trees mutated by subtree resampling.
pub struct GrammarFuzzer {
    grammar: Grammar,
    seed_trees: Vec<MutTree>,
    max_mods: usize,
    max_sample_depth: usize,
    name: String,
}

impl GrammarFuzzer {
    /// Creates a fuzzer from a (synthesized) grammar and seed inputs.
    ///
    /// Seeds that the grammar cannot parse are dropped; if none parse, the
    /// fuzzer falls back to pure sampling from the grammar's start symbol.
    pub fn new(grammar: Grammar, seeds: &[Vec<u8>]) -> Self {
        let seed_trees: Vec<MutTree> = {
            let earley = Earley::new(&grammar);
            seeds
                .iter()
                .filter_map(|s| earley.parse(s))
                .map(|t| MutTree::from_parse_tree(&t))
                .collect()
        };
        GrammarFuzzer {
            grammar,
            seed_trees,
            max_mods: 50,
            max_sample_depth: 24,
            name: "glade".to_owned(),
        }
    }

    /// Overrides the maximum number of modifications per input (paper: 50).
    pub fn with_max_mods(mut self, max_mods: usize) -> Self {
        self.max_mods = max_mods;
        self
    }

    /// Overrides the sampling depth budget for replacement subtrees.
    pub fn with_sample_depth(mut self, depth: usize) -> Self {
        self.max_sample_depth = depth;
        self
    }

    /// Overrides the display name (used to distinguish grammar sources,
    /// e.g. "glade" vs "handwritten").
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of seeds the grammar could parse.
    pub fn parsed_seeds(&self) -> usize {
        self.seed_trees.len()
    }
}

impl Fuzzer for GrammarFuzzer {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_input(&mut self, rng: &mut StdRng) -> Vec<u8> {
        let sampler = Sampler::with_max_depth(&self.grammar, self.max_sample_depth);
        if self.seed_trees.is_empty() {
            return sampler.sample(rng).unwrap_or_default();
        }
        let mut tree = self.seed_trees[rng.gen_range(0..self.seed_trees.len())].clone();
        let n = rng.gen_range(0..=self.max_mods);
        for _ in 0..n {
            let mut paths = Vec::new();
            tree.node_paths(&mut Vec::new(), &mut paths);
            if paths.is_empty() {
                break;
            }
            let (path, nt) = paths[rng.gen_range(0..paths.len())].clone();
            let Some(replacement) = sampler.sample_nt(nt, rng) else {
                continue;
            };
            tree.replace_at(&path, MutTree::Bytes(replacement));
        }
        let mut out = Vec::new();
        tree.write_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_grammar::cfg::{cls, lit, nt, GrammarBuilder};
    use glade_grammar::CharClass;
    use rand::SeedableRng;

    /// The running-example grammar: A → ε | A B ; B → <a>A</a> | letter.
    fn xml_grammar() -> Grammar {
        let mut b = GrammarBuilder::new();
        let a = b.nt("A");
        let item = b.nt("B");
        b.prod(a, vec![]);
        b.prod(a, [nt(a), nt(item)].concat());
        b.prod(item, [lit(b"<a>"), nt(a), lit(b"</a>")].concat());
        b.prod(item, cls(CharClass::range(b'a', b'z')));
        b.build(a).unwrap()
    }

    #[test]
    fn outputs_are_members_of_the_grammar() {
        let g = xml_grammar();
        let seeds = vec![b"<a>hi</a>".to_vec()];
        let mut f = GrammarFuzzer::new(g.clone(), &seeds);
        assert_eq!(f.parsed_seeds(), 1);
        let e = Earley::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let input = f.next_input(&mut rng);
            assert!(
                e.accepts(&input),
                "fuzzer output {:?} not in grammar",
                String::from_utf8_lossy(&input)
            );
        }
    }

    #[test]
    fn produces_diverse_outputs() {
        let g = xml_grammar();
        let seeds = vec![b"<a>hi</a>".to_vec()];
        let mut f = GrammarFuzzer::new(g, &seeds);
        let mut rng = StdRng::seed_from_u64(6);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            distinct.insert(f.next_input(&mut rng));
        }
        assert!(distinct.len() > 20, "only {} distinct outputs", distinct.len());
    }

    #[test]
    fn unparseable_seeds_are_dropped() {
        let g = xml_grammar();
        let seeds = vec![b"NOT IN LANGUAGE 123".to_vec(), b"ok".to_vec()];
        let f = GrammarFuzzer::new(g, &seeds);
        assert_eq!(f.parsed_seeds(), 1);
    }

    #[test]
    fn falls_back_to_sampling_without_seeds() {
        let g = xml_grammar();
        let mut f = GrammarFuzzer::new(g.clone(), &[]);
        assert_eq!(f.parsed_seeds(), 0);
        let e = Earley::new(&g);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert!(e.accepts(&f.next_input(&mut rng)));
        }
    }

    #[test]
    fn custom_name_is_reported() {
        let g = xml_grammar();
        let f = GrammarFuzzer::new(g, &[]).with_name("handwritten");
        assert_eq!(f.name(), "handwritten");
    }
}
