//! The fuzzer abstraction shared by the three Section 8.3 fuzzers.

use glade_targets::RunOutcome;
use rand::rngs::StdRng;

/// A test-input generator.
///
/// The campaign runner repeatedly calls [`Fuzzer::next_input`], executes the
/// target, and reports the outcome back through [`Fuzzer::observe`] (only
/// the afl-like fuzzer uses the feedback).
pub trait Fuzzer {
    /// Display name ("naive", "afl", "glade", …).
    fn name(&self) -> &str;

    /// Produces the next test input.
    fn next_input(&mut self, rng: &mut StdRng) -> Vec<u8>;

    /// Receives the execution outcome of the input most recently produced.
    fn observe(&mut self, _input: &[u8], _outcome: &RunOutcome) {}
}

/// The byte alphabet used by mutation fuzzers: printable ASCII plus tab and
/// newline (the `Σ` of the paper's naive fuzzer).
pub fn mutation_alphabet() -> Vec<u8> {
    let mut v: Vec<u8> = (0x20..=0x7eu8).collect();
    v.push(b'\t');
    v.push(b'\n');
    v
}
