//! Fuzzing campaigns and the paper's coverage metrics (Section 8.3).
//!
//! For each (program, fuzzer) pair the paper generates 50 000 samples and
//! reports the **valid normalized incremental coverage**:
//!
//! ```text
//! valid coverage             = |lines covered by valid inputs| / |coverable|
//! valid incremental coverage = |covered by valid ∖ covered by seeds|
//!                              / |coverable ∖ covered by seeds|
//! normalized                 = incremental(fuzzer) / incremental(naive)
//! ```

use crate::fuzzer::Fuzzer;
use glade_core::{GladeBuilder, Synthesis, SynthesisError};
use glade_targets::{Coverage, Target, TargetOracle};
use rand::rngs::StdRng;
use std::path::Path;

/// Coverage results of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Fuzzer display name.
    pub fuzzer: String,
    /// Target program name.
    pub target: String,
    /// Number of generated samples.
    pub samples: usize,
    /// Number of samples the target accepted.
    pub valid: usize,
    /// Lines covered by the seed inputs alone.
    pub seed_coverage: Coverage,
    /// Lines covered by *valid* generated inputs.
    pub valid_coverage: Coverage,
    /// The target's coverable-line denominator.
    pub coverable: usize,
}

impl CampaignResult {
    /// Fraction of generated inputs the target accepted.
    pub fn valid_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.valid as f64 / self.samples as f64
        }
    }

    /// The paper's valid coverage: lines covered by valid inputs over all
    /// coverable lines.
    pub fn valid_coverage_ratio(&self) -> f64 {
        if self.coverable == 0 {
            0.0
        } else {
            self.valid_coverage.len() as f64 / self.coverable as f64
        }
    }

    /// The paper's valid incremental coverage: new lines (beyond the
    /// seeds') covered by valid inputs, over coverable lines not already
    /// covered by the seeds.
    pub fn valid_incremental_coverage(&self) -> f64 {
        let denom = self.coverable.saturating_sub(self.seed_coverage.len());
        if denom == 0 {
            return 0.0;
        }
        let num = self.valid_coverage.difference(&self.seed_coverage).len();
        num as f64 / denom as f64
    }
}

/// Learns an input grammar for `target` from its bundled seeds through the
/// session API — the synthesis step of a grammar-fuzzing campaign.
///
/// When `cache_path` is given, the session warm-starts from that
/// membership-query snapshot (if present and well-formed) and refreshes it
/// after the run, so repeated campaigns against the same target stop
/// re-paying oracle calls; a second run typically reports
/// `stats.new_unique_queries == 0`. Campaign snapshots are fingerprinted
/// with `target:<name>` (verdicts are facts about one target — a snapshot
/// recorded for a *different* target is refused rather than silently
/// replayed, overriding any fingerprint set on `builder`). Snapshot I/O is
/// best-effort: a missing, stale, mismatched, or unwritable snapshot only
/// costs the warm start, never the campaign — the mismatched file is then
/// overwritten with this target's snapshot after the run. Configure
/// budgets/observers/cancellation on `builder`.
///
/// # Errors
///
/// Returns a [`SynthesisError`] if the target rejects one of its own seeds
/// (or provides none).
pub fn learn_target_grammar(
    target: &dyn Target,
    builder: GladeBuilder,
    cache_path: Option<&Path>,
) -> Result<Synthesis, SynthesisError> {
    let oracle = TargetOracle::new(target);
    let mut session =
        builder.oracle_fingerprint(format!("target:{}", target.name())).session(&oracle);
    if let Some(path) = cache_path {
        if path.exists() {
            let _ = session.load_cache(path);
        }
    }
    let result = session.add_seeds(&target.seeds())?;
    if let Some(path) = cache_path {
        let _ = session.save_cache(path);
    }
    Ok(result)
}

/// Runs `fuzzer` against `target` for `samples` inputs.
pub fn run_campaign(
    target: &dyn Target,
    fuzzer: &mut dyn Fuzzer,
    samples: usize,
    rng: &mut StdRng,
) -> CampaignResult {
    let mut result = new_result(target, fuzzer.name());
    for _ in 0..samples {
        let input = fuzzer.next_input(rng);
        let outcome = target.run(&input);
        if outcome.valid {
            result.valid += 1;
            result.valid_coverage.merge(&outcome.coverage);
        }
        fuzzer.observe(&input, &outcome);
        result.samples += 1;
    }
    result
}

/// Replays a fixed corpus (the Figure 7b upper-bound proxy: handwritten
/// grammars' samples or a bundled test suite).
pub fn replay_corpus(target: &dyn Target, name: &str, corpus: &[Vec<u8>]) -> CampaignResult {
    let mut result = new_result(target, name);
    for input in corpus {
        let outcome = target.run(input);
        if outcome.valid {
            result.valid += 1;
            result.valid_coverage.merge(&outcome.coverage);
        }
        result.samples += 1;
    }
    result
}

/// Runs a campaign, recording the valid incremental coverage after each
/// checkpoint (the Figure 7c curve).
pub fn coverage_curve(
    target: &dyn Target,
    fuzzer: &mut dyn Fuzzer,
    checkpoints: &[usize],
    rng: &mut StdRng,
) -> Vec<(usize, f64)> {
    let mut result = new_result(target, fuzzer.name());
    let mut out = Vec::with_capacity(checkpoints.len());
    let total = checkpoints.iter().copied().max().unwrap_or(0);
    let mut next_cp = 0usize;
    for produced in 1..=total {
        let input = fuzzer.next_input(rng);
        let outcome = target.run(&input);
        if outcome.valid {
            result.valid += 1;
            result.valid_coverage.merge(&outcome.coverage);
        }
        fuzzer.observe(&input, &outcome);
        result.samples = produced;
        while next_cp < checkpoints.len() && checkpoints[next_cp] == produced {
            out.push((produced, result.valid_incremental_coverage()));
            next_cp += 1;
        }
    }
    out
}

fn new_result(target: &dyn Target, fuzzer_name: &str) -> CampaignResult {
    let mut seed_coverage = Coverage::new();
    for seed in target.seeds() {
        seed_coverage.merge(&target.run(&seed).coverage);
    }
    CampaignResult {
        fuzzer: fuzzer_name.to_owned(),
        target: target.name().to_owned(),
        samples: 0,
        valid: 0,
        seed_coverage,
        valid_coverage: Coverage::new(),
        coverable: target.coverable_lines(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveFuzzer;
    use glade_targets::programs::{Grep, Xml};
    use rand::SeedableRng;

    #[test]
    fn campaign_counts_and_metrics_are_consistent() {
        let xml = Xml;
        let mut f = NaiveFuzzer::new(xml.seeds());
        let mut rng = StdRng::seed_from_u64(11);
        let r = run_campaign(&xml, &mut f, 300, &mut rng);
        assert_eq!(r.samples, 300);
        assert!(r.valid <= r.samples);
        assert!(r.valid_rate() <= 1.0);
        assert!(r.valid_coverage_ratio() <= 1.0);
        assert!(r.valid_incremental_coverage() <= 1.0);
        assert_eq!(r.target, "xml");
        assert_eq!(r.fuzzer, "naive");
    }

    #[test]
    fn replay_covers_at_least_seed_lines() {
        let grep = Grep;
        let r = replay_corpus(&grep, "corpus", &grep.seeds());
        assert_eq!(r.valid, grep.seeds().len());
        // Replaying exactly the seeds adds nothing beyond the seeds.
        assert_eq!(r.valid_incremental_coverage(), 0.0);
        assert!(r.valid_coverage_ratio() > 0.0);
    }

    #[test]
    fn learn_target_grammar_warm_starts_from_cache() {
        let xml = Xml;
        let builder = || GladeBuilder::new().max_queries(60_000).character_generalization(false);
        let path = std::env::temp_dir()
            .join(format!("glade-fuzz-campaign-cache-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cold = learn_target_grammar(&xml, builder(), Some(&path)).expect("seeds valid");
        assert!(cold.stats.new_unique_queries > 0);
        assert!(path.exists(), "snapshot refreshed after the run");

        let warm = learn_target_grammar(&xml, builder(), Some(&path)).expect("seeds valid");
        let _ = std::fs::remove_file(&path);
        assert_eq!(warm.stats.new_unique_queries, 0, "second campaign re-paid oracle calls");
        assert_eq!(warm.stats.unique_queries, cold.stats.unique_queries);
    }

    #[test]
    fn learn_target_grammar_rejects_mismatched_cache() {
        // A snapshot recorded for one target must not warm-start a
        // campaign against another: verdicts are facts about one language.
        let path = std::env::temp_dir()
            .join(format!("glade-fuzz-campaign-mismatch-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let builder =
            || GladeBuilder::new().max_queries(2_000).character_generalization(false).phase2(false);
        learn_target_grammar(&Xml, builder(), Some(&path)).expect("seeds valid");
        let text = std::fs::read_to_string(&path).expect("snapshot written");
        assert!(text.starts_with("glade-cache v2\noracle "), "campaign snapshots are tagged");

        let grep = learn_target_grammar(&Grep, builder(), Some(&path)).expect("seeds valid");
        assert_eq!(
            grep.stats.unique_queries, grep.stats.new_unique_queries,
            "the xml-tagged snapshot must not seed the grep session"
        );
        // The refreshed snapshot is now grep's.
        let retagged = std::fs::read_to_string(&path).expect("snapshot rewritten");
        let _ = std::fs::remove_file(&path);
        let hex: String = b"target:grep".iter().map(|b| format!("{b:02x}")).collect();
        assert!(retagged.contains(&format!("oracle {hex}")), "snapshot re-tagged for grep");
    }

    #[test]
    fn curve_is_monotone() {
        let xml = Xml;
        let mut f = NaiveFuzzer::new(xml.seeds());
        let mut rng = StdRng::seed_from_u64(12);
        let curve = coverage_curve(&xml, &mut f, &[50, 100, 200], &mut rng);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1), "{curve:?}");
        assert_eq!(curve[0].0, 50);
        assert_eq!(curve[2].0, 200);
    }
}
