//! The naive mutation fuzzer (Section 8.3).
//!
//! "It randomly selects a seed input α ∈ E_in and performs n random
//! modifications to α, where n is chosen randomly between 0 and 50. A
//! single modification of α consists of randomly choosing an index i in
//! α = σ1…σk, and either deleting the terminal σi or inserting a randomly
//! chosen terminal σ ∈ Σ before σi."

use crate::fuzzer::{mutation_alphabet, Fuzzer};
use rand::rngs::StdRng;
use rand::Rng;

/// The grammar-oblivious baseline fuzzer.
#[derive(Debug, Clone)]
pub struct NaiveFuzzer {
    seeds: Vec<Vec<u8>>,
    alphabet: Vec<u8>,
    max_mods: usize,
}

impl NaiveFuzzer {
    /// Creates a fuzzer over the given seed inputs.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(seeds: Vec<Vec<u8>>) -> Self {
        assert!(!seeds.is_empty(), "naive fuzzer needs at least one seed");
        NaiveFuzzer { seeds, alphabet: mutation_alphabet(), max_mods: 50 }
    }

    /// Overrides the maximum number of modifications per input (paper: 50).
    pub fn with_max_mods(mut self, max_mods: usize) -> Self {
        self.max_mods = max_mods;
        self
    }
}

impl Fuzzer for NaiveFuzzer {
    fn name(&self) -> &str {
        "naive"
    }

    fn next_input(&mut self, rng: &mut StdRng) -> Vec<u8> {
        let mut cur = self.seeds[rng.gen_range(0..self.seeds.len())].clone();
        let n = rng.gen_range(0..=self.max_mods);
        for _ in 0..n {
            if cur.is_empty() {
                // Only insertion is possible.
                let b = self.alphabet[rng.gen_range(0..self.alphabet.len())];
                cur.push(b);
                continue;
            }
            let i = rng.gen_range(0..cur.len());
            if rng.gen_bool(0.5) {
                cur.remove(i);
            } else {
                let b = self.alphabet[rng.gen_range(0..self.alphabet.len())];
                cur.insert(i, b);
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_variations_of_seeds() {
        let mut f = NaiveFuzzer::new(vec![b"hello world".to_vec()]);
        let mut rng = StdRng::seed_from_u64(1);
        let inputs: Vec<Vec<u8>> = (0..50).map(|_| f.next_input(&mut rng)).collect();
        // Some inputs differ from the seed…
        assert!(inputs.iter().any(|i| i != b"hello world"));
        // …and with n=0 modifications some equal it.
        assert!(inputs.iter().any(|i| i == b"hello world"));
    }

    #[test]
    fn length_changes_stay_bounded() {
        let mut f = NaiveFuzzer::new(vec![b"abc".to_vec()]).with_max_mods(10);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let i = f.next_input(&mut rng);
            assert!(i.len() <= 3 + 10);
        }
    }

    #[test]
    fn empty_seed_grows_by_insertion() {
        let mut f = NaiveFuzzer::new(vec![Vec::new()]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_nonempty = false;
        for _ in 0..50 {
            saw_nonempty |= !f.next_input(&mut rng).is_empty();
        }
        assert!(saw_nonempty);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_set() {
        let _ = NaiveFuzzer::new(Vec::new());
    }
}
