//! Fuzzers and fuzzing campaigns for the GLADE reproduction (Section 8.3 of
//! the paper).
//!
//! Three fuzzers are provided, matching the paper's evaluation:
//!
//! * [`GrammarFuzzer`] — the GLADE client: parses a seed with the
//!   synthesized grammar and repeatedly resamples random subtrees.
//! * [`NaiveFuzzer`] — grammar-oblivious random insert/delete mutations.
//! * [`AflFuzzer`] — an afl-like coverage-guided mutation fuzzer
//!   (deterministic bit-flip stages, havoc, queue of coverage-increasing
//!   inputs).
//!
//! [`learn_target_grammar`] synthesizes a target's input grammar through
//! `glade-core`'s session API (optionally warm-starting from a persistent
//! query-cache snapshot, so repeated campaigns stop re-paying oracle
//! calls); [`run_campaign`] executes a fuzzer against a
//! [`glade_targets::Target`] and computes the paper's *valid (normalized)
//! incremental coverage* metrics; [`coverage_curve`] records the Figure 7c
//! time series and [`replay_corpus`] evaluates the Figure 7b upper-bound
//! proxies.
//!
//! ```
//! use glade_fuzz::{run_campaign, NaiveFuzzer};
//! use glade_targets::programs::Xml;
//! use glade_targets::Target;
//! use rand::SeedableRng;
//!
//! let xml = Xml;
//! let mut fuzzer = NaiveFuzzer::new(xml.seeds());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = run_campaign(&xml, &mut fuzzer, 100, &mut rng);
//! assert_eq!(result.samples, 100);
//! ```

#![warn(missing_docs)]

mod afl;
mod campaign;
mod fuzzer;
mod grammar_fuzzer;
mod naive;

pub use afl::AflFuzzer;
pub use campaign::{
    coverage_curve, learn_target_grammar, replay_corpus, run_campaign, CampaignResult,
};
pub use fuzzer::{mutation_alphabet, Fuzzer};
pub use grammar_fuzzer::GrammarFuzzer;
pub use naive::NaiveFuzzer;
