//! The pooled-oracle wire codec: v2 batched frames and version
//! negotiation constants.
//!
//! [`PooledProcessOracle`](crate::PooledProcessOracle) and
//! [`serve_oracle_worker`](crate::serve_oracle_worker) speak a
//! length-prefixed verdict protocol over a worker's stdin/stdout. Protocol
//! **v1** frames one query per request; protocol **v2** batches N queries
//! per request frame and N verdict bytes per response, cutting the
//! syscall + scheduling round-trips per query by the batch factor. This
//! module holds the pure encode/decode halves of the v2 framing so they
//! can be property-tested in isolation from any process plumbing; the full
//! wire-format specification (negotiation included) lives in the
//! [`oracle`](crate::Oracle) module documentation.
//!
//! All decoding fails closed: a malformed, truncated, or oversized frame
//! is an [`FrameError`], never a panic and never a fabricated verdict. The
//! pool turns such errors into counted oracle failures (the worker is
//! treated as crashed).

use std::io::Read;

/// Payload of the version-negotiation probe, sent by the oracle as an
/// ordinary v1 single-query frame right after a worker spawns.
///
/// A v2-capable worker recognizes the exact payload and answers
/// [`WIRE_V2_ACK`]; a v1 worker cannot distinguish it from a real
/// membership query and answers an ordinary verdict byte (`0`/`1`), which
/// the oracle discards. The payload starts with two NUL bytes precisely to
/// make a collision with a genuine membership query of some target
/// language implausible.
pub const WIRE_V2_PROBE: &[u8] = b"\x00\x00glade-wire-v2?";

/// Response byte acknowledging the v2 upgrade. Deliberately outside the
/// verdict byte range (`0x00`/`0x01`), so a v1 oracle that accidentally
/// poses the probe as a query to a v2 worker observes a protocol error (a
/// crash, recoverable) rather than a wrong verdict.
pub const WIRE_V2_ACK: u8 = 0x02;

/// Maximum number of queries a single v2 batch frame may carry.
///
/// The bound exists to fail fast on a corrupted count prefix: a decoder
/// must reject a bigger count *before* allocating for it.
pub const MAX_FRAME_QUERIES: usize = 1 << 16;

/// Maximum total payload bytes (the queries themselves, excluding the
/// length prefixes) a single v2 batch frame may carry. As with
/// [`MAX_FRAME_QUERIES`], the cap turns a corrupted length prefix into an
/// immediate decode error instead of an absurd allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// A v2 frame failed to encode or decode. Decoding errors mean the peer
/// (or the pipe) is broken; the pool reacts by reaping the worker and
/// counting the affected queries as oracle failures if retries are also
/// exhausted — malformed frames fail closed, they never produce verdicts.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// The underlying stream failed (including a truncated frame, which
    /// surfaces as an [`std::io::ErrorKind::UnexpectedEof`] read error).
    Io(std::io::Error),
    /// A frame declared zero queries; empty batches are not legal.
    EmptyFrame,
    /// A frame declared more than [`MAX_FRAME_QUERIES`] queries.
    TooManyQueries(usize),
    /// A frame declared more than [`MAX_FRAME_BYTES`] total payload bytes.
    FrameTooLarge(u64),
    /// A query exceeds the protocol's `u32` length prefix (encode-side
    /// only; the decode side cannot observe this).
    QueryTooLong(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::EmptyFrame => write!(f, "batch frame declares zero queries"),
            FrameError::TooManyQueries(n) => {
                write!(f, "batch frame declares {n} queries (max {MAX_FRAME_QUERIES})")
            }
            FrameError::FrameTooLarge(n) => {
                write!(f, "batch frame declares {n} payload bytes (max {MAX_FRAME_BYTES})")
            }
            FrameError::QueryTooLong(n) => {
                write!(f, "query of {n} bytes exceeds the u32 length prefix")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<FrameError> for std::io::Error {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Appends one v1 single-query frame (`u32` little-endian byte length,
/// then the raw bytes) to `out`.
///
/// # Errors
///
/// [`FrameError::QueryTooLong`] when the query cannot be framed behind a
/// `u32` length prefix.
pub fn encode_v1_frame(query: &[u8], out: &mut Vec<u8>) -> Result<(), FrameError> {
    let len = u32::try_from(query.len()).map_err(|_| FrameError::QueryTooLong(query.len()))?;
    out.reserve(4 + query.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(query);
    Ok(())
}

/// Appends one v2 batch frame to `out`: a `u32` little-endian query count,
/// then each query as a `u32` little-endian length followed by its bytes.
///
/// # Errors
///
/// [`FrameError::EmptyFrame`] for an empty batch,
/// [`FrameError::TooManyQueries`] past [`MAX_FRAME_QUERIES`],
/// [`FrameError::QueryTooLong`] when a query cannot be framed behind a
/// `u32` prefix, and [`FrameError::FrameTooLarge`] when the total payload
/// exceeds [`MAX_FRAME_BYTES`]. On error `out` is left unchanged.
pub fn encode_batch_frame(queries: &[&[u8]], out: &mut Vec<u8>) -> Result<(), FrameError> {
    if queries.is_empty() {
        return Err(FrameError::EmptyFrame);
    }
    if queries.len() > MAX_FRAME_QUERIES {
        return Err(FrameError::TooManyQueries(queries.len()));
    }
    let mut total: u64 = 0;
    for q in queries {
        if u32::try_from(q.len()).is_err() {
            return Err(FrameError::QueryTooLong(q.len()));
        }
        total += q.len() as u64;
    }
    if total > MAX_FRAME_BYTES as u64 {
        return Err(FrameError::FrameTooLarge(total));
    }
    out.reserve(4 + queries.len() * 4 + total as usize);
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for q in queries {
        out.extend_from_slice(&(q.len() as u32).to_le_bytes());
        out.extend_from_slice(q);
    }
    Ok(())
}

/// Reads exactly one v2 batch frame from `input`, returning the decoded
/// queries in frame order.
///
/// This is the worker-side decode half: it expects the stream to be
/// positioned at a frame's count prefix and reads nothing past the frame's
/// end. Callers that must distinguish a clean end-of-stream from a
/// truncated frame (a worker seeing EOF *between* frames exits cleanly)
/// should probe the first byte themselves; see
/// [`serve_oracle_worker`](crate::serve_oracle_worker).
///
/// # Errors
///
/// Any [`FrameError`]: truncation surfaces as
/// [`FrameError::Io`] with [`std::io::ErrorKind::UnexpectedEof`]; a count
/// or size prefix beyond the protocol caps is rejected *before* any
/// allocation for it.
pub fn decode_batch_frame(input: &mut impl Read) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    input.read_exact(&mut prefix)?;
    decode_batch_frame_after_count(u32::from_le_bytes(prefix), input)
}

/// [`decode_batch_frame`] for callers that already consumed the `u32`
/// query-count prefix (the worker loop peeks it to detect end-of-stream).
pub fn decode_batch_frame_after_count(
    count: u32,
    input: &mut impl Read,
) -> Result<Vec<Vec<u8>>, FrameError> {
    let count = count as usize;
    if count == 0 {
        return Err(FrameError::EmptyFrame);
    }
    if count > MAX_FRAME_QUERIES {
        return Err(FrameError::TooManyQueries(count));
    }
    let mut queries = Vec::with_capacity(count);
    let mut total: u64 = 0;
    for _ in 0..count {
        let mut prefix = [0u8; 4];
        input.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        total += len as u64;
        if total > MAX_FRAME_BYTES as u64 {
            return Err(FrameError::FrameTooLarge(total));
        }
        let mut query = vec![0u8; len];
        input.read_exact(&mut query)?;
        queries.push(query);
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_frame_roundtrip() {
        let queries: Vec<&[u8]> = vec![b"", b"<a>hi</a>", b"\x00\xff", b"x"];
        let mut buf = Vec::new();
        encode_batch_frame(&queries, &mut buf).expect("encodes");
        let decoded = decode_batch_frame(&mut &buf[..]).expect("decodes");
        assert_eq!(decoded, queries);
    }

    #[test]
    fn v1_frame_layout_is_the_legacy_wire_format() {
        let mut buf = Vec::new();
        encode_v1_frame(b"abc", &mut buf).expect("encodes");
        assert_eq!(buf, [3, 0, 0, 0, b'a', b'b', b'c']);
    }

    #[test]
    fn empty_batch_is_rejected_on_both_sides() {
        let mut buf = Vec::new();
        assert!(matches!(encode_batch_frame(&[], &mut buf), Err(FrameError::EmptyFrame)));
        assert!(buf.is_empty());
        let zero = 0u32.to_le_bytes();
        assert!(matches!(decode_batch_frame(&mut &zero[..]), Err(FrameError::EmptyFrame)));
    }

    #[test]
    fn truncated_frame_is_an_eof_error_not_a_panic() {
        let queries: Vec<&[u8]> = vec![b"hello", b"world"];
        let mut buf = Vec::new();
        encode_batch_frame(&queries, &mut buf).expect("encodes");
        for cut in 0..buf.len() {
            match decode_batch_frame(&mut &buf[..cut]) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                other => panic!("cut at {cut}: expected EOF error, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_counts_fail_before_allocating() {
        // A count prefix claiming u32::MAX queries must be rejected from
        // the 4-byte prefix alone.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(decode_batch_frame(&mut &huge[..]), Err(FrameError::TooManyQueries(_))));
        // A length prefix pushing the payload past the frame cap is
        // rejected at the offending query, not after a giant allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_batch_frame(&mut &buf[..]), Err(FrameError::FrameTooLarge(_))));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn probe_is_a_legal_v1_query_payload() {
        // The negotiation probe must be frameable as an ordinary v1 query
        // (that is what a v1 worker will take it for).
        let mut buf = Vec::new();
        encode_v1_frame(WIRE_V2_PROBE, &mut buf).expect("probe frames as v1");
        assert_eq!(&buf[4..], WIRE_V2_PROBE);
        assert!(WIRE_V2_ACK > 1, "ack byte must sit outside the verdict range");
    }
}
