//! Mutex-striped concurrent query cache with a negative-lookup filter and
//! optional residency caps.
//!
//! Both [`CachingOracle`](crate::CachingOracle) and the internal
//! `QueryRunner` memoize membership queries. The single-threaded seed
//! implementation used `RefCell<HashMap>`; to let checks fan out across
//! worker threads the cache is now sharded: keys are distributed over N
//! independently locked `HashMap` shards by hash, so concurrent lookups and
//! inserts of different keys almost never contend on the same mutex.
//!
//! Two production-scale layers sit on top of the shards:
//!
//! * **Negative-lookup filter** — synthesis is miss-dominated (most checks
//!   are posed exactly once), so the hot path of `get` consults a
//!   fixed-size lock-free bloom filter first and returns without touching
//!   any mutex when the key was definitely never inserted. The filter is
//!   marked on every insert (including snapshot loads, which go through
//!   `insert`); false positives merely fall through to the shard lock,
//!   false negatives cannot occur because marking precedes map insertion.
//! * **Residency cap** — [`ShardedCache::with_max_entries`] bounds the
//!   number of resident entries per cache for long-lived campaigns,
//!   evicting with a second-chance (clock) sweep over each shard's
//!   deterministic iteration order. Eviction can only cause a later
//!   re-query (same verdict — oracles are deterministic), never a changed
//!   answer, so grammars are unaffected. [`ShardedCache::len`] counts
//!   *distinct keys ever inserted* — an 8-byte per-key ledger survives
//!   eviction so `unique_queries` accounting stays exact.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Number of mutex stripes. 16 keeps contention negligible for the worker
/// counts this crate spawns (bounded by available cores) at trivial memory
/// cost.
const SHARD_COUNT: usize = 16;

/// Negative-lookup filter size: 2²¹ bits (256 KiB) with two probes per
/// key keeps the false-positive rate under ~1% at 10⁵ entries. Past ~10⁶
/// entries the filter saturates and `get` degrades gracefully to the
/// always-lock behavior.
const FILTER_WORDS: usize = 1 << 15;
const FILTER_BITS: u64 = (FILTER_WORDS as u64) * 64;

/// Deterministic (unkeyed) hasher: shard choice and dedup hashing must not
/// vary between runs, so synthesis stays reproducible.
type FixedState = BuildHasherDefault<DefaultHasher>;

/// Hashes a query string with the crate's fixed hasher.
pub(crate) fn hash_query(key: &[u8]) -> u64 {
    FixedState::default().hash_one(key)
}

/// One cached verdict plus its second-chance reference bit.
#[derive(Debug)]
struct Slot {
    verdict: bool,
    referenced: bool,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<Vec<u8>, Slot, FixedState>,
    /// Hashes of every key ever inserted into this shard. Maintained only
    /// when a residency cap is set: it is what keeps distinct-key counting
    /// (and therefore `unique_queries`) exact after evictions, at 8 bytes
    /// per distinct key instead of the key bytes themselves.
    seen: HashSet<u64, FixedState>,
}

/// A `Sync` map from query strings to oracle verdicts.
#[derive(Debug)]
pub(crate) struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    /// Lock-free negative-lookup filter over every key ever inserted.
    filter: Box<[AtomicU64]>,
    /// Distinct keys ever inserted (never decremented by eviction).
    len: AtomicUsize,
    /// Resident-entry cap per shard (`usize::MAX` = uncapped).
    shard_cap: usize,
    evictions: AtomicUsize,
    /// `get` calls answered "absent" by the filter alone (no lock taken).
    filter_negatives: AtomicUsize,
}

impl ShardedCache {
    pub fn new() -> Self {
        ShardedCache::with_max_entries(None)
    }

    /// A cache whose resident entries are capped at roughly
    /// `max_entries` (rounded up to a per-shard cap; `None` = unbounded).
    /// See the module docs for the eviction policy and its guarantees.
    pub fn with_max_entries(max_entries: Option<usize>) -> Self {
        ShardedCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect(),
            filter: (0..FILTER_WORDS).map(|_| AtomicU64::new(0)).collect(),
            len: AtomicUsize::new(0),
            shard_cap: max_entries.map_or(usize::MAX, |n| n.div_ceil(SHARD_COUNT).max(1)),
            evictions: AtomicUsize::new(0),
            filter_negatives: AtomicUsize::new(0),
        }
    }

    fn shard_index(h: u64) -> usize {
        // High bits: the low bits also pick the HashMap bucket.
        (h >> 59) as usize % SHARD_COUNT
    }

    /// The filter's two probe positions for a key hash: disjoint bit
    /// ranges of the (already well-mixed) 64-bit hash.
    fn filter_probes(h: u64) -> [(usize, u64); 2] {
        let b1 = h & (FILTER_BITS - 1);
        let b2 = (h >> 21) & (FILTER_BITS - 1);
        [((b1 / 64) as usize, 1u64 << (b1 % 64)), ((b2 / 64) as usize, 1u64 << (b2 % 64))]
    }

    /// Whether `h` might have been inserted. `false` is definitive.
    fn filter_maybe_contains(&self, h: u64) -> bool {
        Self::filter_probes(h)
            .iter()
            .all(|&(word, bit)| self.filter[word].load(Ordering::Relaxed) & bit != 0)
    }

    fn filter_mark(&self, h: u64) {
        for (word, bit) in Self::filter_probes(h) {
            self.filter[word].fetch_or(bit, Ordering::Relaxed);
        }
    }

    /// Looks up a cached verdict. Keys never inserted are usually
    /// answered by the negative filter without locking any shard.
    pub fn get(&self, key: &[u8]) -> Option<bool> {
        let h = hash_query(key);
        if !self.filter_maybe_contains(h) {
            self.filter_negatives.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shards[Self::shard_index(h)].lock().expect("cache shard poisoned");
        let slot = shard.map.get_mut(key)?;
        slot.referenced = true;
        Some(slot.verdict)
    }

    /// Records a verdict; returns `true` if the key was never cached
    /// before (an evicted-and-reinserted key is *not* fresh — it was
    /// already counted). An already-resident key keeps its original
    /// verdict (oracles are deterministic, so both verdicts agree).
    pub fn insert(&self, key: Vec<u8>, verdict: bool) -> bool {
        let h = hash_query(&key);
        // Mark before the map insert: a concurrent `get` that sees the
        // map entry must also see the filter bits.
        self.filter_mark(h);
        let mut guard = self.shards[Self::shard_index(h)].lock().expect("cache shard poisoned");
        let shard = &mut *guard;
        if shard.map.contains_key(&key) {
            return false;
        }
        if shard.map.len() >= self.shard_cap {
            Self::evict_one(shard, &self.evictions);
        }
        let fresh = if self.shard_cap == usize::MAX { true } else { shard.seen.insert(h) };
        shard.map.insert(key, Slot { verdict, referenced: false });
        drop(guard);
        if fresh {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Evicts one entry from a full shard: a second-chance sweep in the
    /// map's iteration order (deterministic — the hasher is fixed) clears
    /// reference bits until it finds an unreferenced entry; if every
    /// entry had its second chance pending, the first entry goes (its bit
    /// was just cleared, making the next sweep a plain clock pass).
    fn evict_one(shard: &mut Shard, evictions: &AtomicUsize) {
        let mut victim: Option<Vec<u8>> = None;
        for (key, slot) in shard.map.iter_mut() {
            if slot.referenced {
                slot.referenced = false;
            } else {
                victim = Some(key.clone());
                break;
            }
        }
        let victim = match victim.or_else(|| shard.map.keys().next().cloned()) {
            Some(v) => v,
            None => return,
        };
        shard.map.remove(&victim);
        evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct cached queries ever inserted. Not decremented
    /// by eviction: this is the session's `unique_queries` ledger, and an
    /// evicted entry was still a distinct query.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Number of entries currently resident (equals [`ShardedCache::len`]
    /// for uncapped caches; at most the configured cap otherwise).
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Entries evicted by the residency cap so far.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// `get` calls answered "absent" by the negative filter alone, i.e.
    /// without taking any shard lock.
    pub fn filter_negatives(&self) -> usize {
        self.filter_negatives.load(Ordering::Relaxed)
    }

    /// Copies every resident `(query, verdict)` entry out, in unspecified
    /// order (serialization via `persist::cache_to_text` sorts; sorting
    /// here too would be a redundant O(n log n) pass on every snapshot).
    ///
    /// The pass is consistent: **all** shard locks are acquired — in
    /// ascending shard-index order, the crate's only multi-shard lock
    /// site — before any entry is copied, and the output is sized from
    /// the locked shards' actual lengths. (The previous implementation
    /// sized from the lock-free `len()` hint and locked shards one at a
    /// time, so a concurrent insert could both stale the size hint and
    /// let the copy observe a key in two states across shards.)
    pub fn snapshot(&self) -> Vec<(Vec<u8>, bool)> {
        let guards: Vec<MutexGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.lock().expect("cache shard poisoned")).collect();
        let mut out = Vec::with_capacity(guards.iter().map(|g| g.map.len()).sum());
        for guard in &guards {
            out.extend(guard.map.iter().map(|(k, slot)| (k.clone(), slot.verdict)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_len() {
        let c = ShardedCache::new();
        assert_eq!(c.get(b"x"), None);
        assert!(c.insert(b"x".to_vec(), true));
        assert!(!c.insert(b"x".to_vec(), false), "duplicate insert is not fresh");
        assert_eq!(c.get(b"x"), Some(true), "first verdict wins");
        assert!(c.insert(b"y".to_vec(), false));
        assert_eq!(c.len(), 2);
        assert_eq!(c.resident(), 2);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn concurrent_inserts_count_once_per_key() {
        let c = ShardedCache::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..100u32 {
                        c.insert(i.to_le_bytes().to_vec(), t % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn snapshot_is_complete() {
        let c = ShardedCache::new();
        c.insert(b"zz".to_vec(), true);
        c.insert(b"a".to_vec(), false);
        c.insert(b"mm".to_vec(), true);
        let mut snap = c.snapshot();
        snap.sort();
        assert_eq!(
            snap,
            vec![(b"a".to_vec(), false), (b"mm".to_vec(), true), (b"zz".to_vec(), true)]
        );
    }

    #[test]
    fn snapshot_under_concurrent_inserts_is_well_formed() {
        // Regression for the stale-capacity/inconsistent-pass bug: snapshot
        // while writers insert; every snapshotted key must appear exactly
        // once with a valid verdict, and the size must equal its contents.
        let c = ShardedCache::new();
        std::thread::scope(|s| {
            let c = &c;
            s.spawn(move || {
                for i in 0..2000u32 {
                    c.insert(i.to_le_bytes().to_vec(), i % 2 == 0);
                }
            });
            for _ in 0..50 {
                let snap = c.snapshot();
                let mut keys: Vec<&Vec<u8>> = snap.iter().map(|(k, _)| k).collect();
                keys.sort();
                keys.dedup();
                assert_eq!(keys.len(), snap.len(), "a key appeared in two states");
            }
        });
        assert_eq!(c.snapshot().len(), 2000);
    }

    #[test]
    fn negative_filter_answers_absent_keys_without_locking() {
        let c = ShardedCache::new();
        c.insert(b"present".to_vec(), true);
        assert_eq!(c.get(b"present"), Some(true));
        let before = c.filter_negatives();
        for i in 0..100u32 {
            assert_eq!(c.get(format!("absent-{i}").as_bytes()), None);
        }
        // With 2 probes over 2^21 bits and one insert, essentially every
        // absent key is filtered; tolerate a stray false positive.
        assert!(c.filter_negatives() - before >= 99, "{}", c.filter_negatives() - before);
        // Present keys are never filtered (no false negatives).
        assert_eq!(c.get(b"present"), Some(true));
    }

    #[test]
    fn residency_cap_evicts_but_len_counts_distinct_ever() {
        let cap = 64;
        let c = ShardedCache::with_max_entries(Some(cap));
        let n = 1000u32;
        for i in 0..n {
            c.insert(format!("key-{i:04}").into_bytes(), i % 2 == 0);
        }
        assert_eq!(c.len(), n as usize, "distinct-ever ledger ignores eviction");
        // Per-shard cap is ceil(64/16) = 4, so at most 64 stay resident.
        assert!(c.resident() <= cap, "resident {} exceeds cap {cap}", c.resident());
        assert!(c.evictions() >= (n as usize) - cap);
        // Evicted keys read as absent; re-inserting one is not fresh and
        // does not grow the distinct count.
        let resident_before = c.resident();
        assert!(!c.insert(b"key-0000".to_vec(), true), "reinsert of an evicted key is not fresh");
        assert_eq!(c.len(), n as usize);
        assert!(c.resident() <= resident_before.max(cap));
        assert_eq!(c.get(b"key-0000"), Some(true), "reinserted key is resident again");
    }

    #[test]
    fn second_chance_prefers_unreferenced_victims() {
        // One shard's worth of traffic: keys that were `get`-referenced
        // survive the next eviction sweep; an untouched key goes first.
        let c = ShardedCache::with_max_entries(Some(SHARD_COUNT * 2)); // 2 per shard
        let mut keys: Vec<Vec<u8>> = Vec::new();
        // Find three keys landing in the same shard.
        let mut i = 0u32;
        while keys.len() < 3 {
            let k = format!("probe-{i}").into_bytes();
            if ShardedCache::shard_index(hash_query(&k)) == 0 {
                keys.push(k);
            }
            i += 1;
        }
        c.insert(keys[0].clone(), true);
        c.insert(keys[1].clone(), false);
        // Reference key[0] so it has a second chance; key[1] does not.
        assert_eq!(c.get(&keys[0]), Some(true));
        c.insert(keys[2].clone(), true);
        assert_eq!(c.get(&keys[0]), Some(true), "referenced key survived");
        assert_eq!(c.get(&keys[1]), None, "unreferenced key was evicted");
        assert_eq!(c.get(&keys[2]), Some(true));
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_query(b"abc"), hash_query(b"abc"));
        assert_ne!(hash_query(b"abc"), hash_query(b"abd"));
    }

    #[test]
    fn cache_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ShardedCache>();
    }
}
