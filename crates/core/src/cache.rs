//! Mutex-striped concurrent query cache.
//!
//! Both [`CachingOracle`](crate::CachingOracle) and the internal
//! `QueryRunner` memoize membership queries. The single-threaded seed
//! implementation used `RefCell<HashMap>`; to let checks fan out across
//! worker threads the cache is now sharded: keys are distributed over N
//! independently locked `HashMap` shards by hash, so concurrent lookups and
//! inserts of different keys almost never contend on the same mutex. The
//! entry count is tracked with a relaxed atomic incremented on successful
//! insert, making `len()` lock-free.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of mutex stripes. 16 keeps contention negligible for the worker
/// counts this crate spawns (bounded by available cores) at trivial memory
/// cost.
const SHARD_COUNT: usize = 16;

/// Deterministic (unkeyed) hasher: shard choice and dedup hashing must not
/// vary between runs, so synthesis stays reproducible.
type FixedState = BuildHasherDefault<DefaultHasher>;

/// Hashes a query string with the crate's fixed hasher.
pub(crate) fn hash_query(key: &[u8]) -> u64 {
    FixedState::default().hash_one(key)
}

/// A `Sync` map from query strings to oracle verdicts.
#[derive(Debug)]
pub(crate) struct ShardedCache {
    shards: Vec<Mutex<HashMap<Vec<u8>, bool, FixedState>>>,
    len: AtomicUsize,
}

impl ShardedCache {
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::default())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<HashMap<Vec<u8>, bool, FixedState>> {
        // High bits: the low bits also pick the HashMap bucket.
        let h = hash_query(key);
        &self.shards[(h >> 59) as usize % SHARD_COUNT]
    }

    /// Looks up a cached verdict.
    pub fn get(&self, key: &[u8]) -> Option<bool> {
        self.shard(key).lock().expect("cache shard poisoned").get(key).copied()
    }

    /// Records a verdict; returns `true` if the key was not cached before.
    /// An already-present key keeps its original verdict (oracles are
    /// deterministic, so both verdicts agree).
    pub fn insert(&self, key: Vec<u8>, verdict: bool) -> bool {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        let mut fresh = false;
        shard.entry(key).or_insert_with(|| {
            fresh = true;
            verdict
        });
        drop(shard);
        if fresh {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Number of distinct cached queries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Copies every `(query, verdict)` entry out, in unspecified order
    /// (serialization via `persist::cache_to_text` sorts; sorting here too
    /// would be a redundant O(n log n) pass on every snapshot).
    pub fn snapshot(&self) -> Vec<(Vec<u8>, bool)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            out.extend(shard.iter().map(|(k, &v)| (k.clone(), v)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_len() {
        let c = ShardedCache::new();
        assert_eq!(c.get(b"x"), None);
        assert!(c.insert(b"x".to_vec(), true));
        assert!(!c.insert(b"x".to_vec(), false), "duplicate insert is not fresh");
        assert_eq!(c.get(b"x"), Some(true), "first verdict wins");
        assert!(c.insert(b"y".to_vec(), false));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn concurrent_inserts_count_once_per_key() {
        let c = ShardedCache::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..100u32 {
                        c.insert(i.to_le_bytes().to_vec(), t % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn snapshot_is_complete() {
        let c = ShardedCache::new();
        c.insert(b"zz".to_vec(), true);
        c.insert(b"a".to_vec(), false);
        c.insert(b"mm".to_vec(), true);
        let mut snap = c.snapshot();
        snap.sort();
        assert_eq!(
            snap,
            vec![(b"a".to_vec(), false), (b"mm".to_vec(), true), (b"zz".to_vec(), true)]
        );
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_query(b"abc"), hash_query(b"abc"));
        assert_ne!(hash_query(b"abc"), hash_query(b"abd"));
    }

    #[test]
    fn cache_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ShardedCache>();
    }
}
