//! Phase one: regular-expression synthesis (Section 4 of the paper).
//!
//! Starting from the seed input annotated as `[α_in]rep`, each
//! generalization step selects a bracketed substring and proposes candidate
//! decompositions in a fixed preference order; carefully constructed
//! membership checks (context-wrapped residuals) reject candidates that
//! overgeneralize. The first candidate whose checks all pass is taken
//! (greedy search), and its sub-substrings are generalized recursively.
//!
//! Candidate rules and ordering (Sections 4.1–4.2):
//!
//! * **Repetitions** `[α]rep → α1 ([α2]alt)* [α3]rep` for every decomposition
//!   `α = α1 α2 α3`, `α2 ≠ ε`, ordered by `|α1|` ascending then `|α2|`
//!   descending; the constant `α` is the last candidate. Residuals:
//!   `α1 α3` (zero repetitions) and `α1 α2 α2 α3` (two repetitions).
//! * **Alternations** `[α]alt → ([α1]rep + [α2]alt)` for every split
//!   `α = α1 α2` with both parts nonempty, ordered by `|α1|` ascending;
//!   the last candidate re-brackets the whole string as `[α]rep`.
//!   Residuals: `α1` and `α2`.
//!
//! Checks are `γ·ρ·δ` where `(γ, δ)` is the context of the selected
//! bracketed substring (Section 4.3); contexts for newly created bracketed
//! substrings follow the paper's construction exactly.
//!
//! Termination note: a repetition node reached through the alternation
//! fallback (`Talt ::= Trep`) must not re-propose the identity decomposition
//! `(ε, α, ε)` — otherwise `[α]alt → [α]rep → ([α]alt)* → …` recurses
//! forever on the same string. This matches Figure 2 (step R3 proposes no
//! full-star candidate) and the meta-grammar's unambiguity requirement.
//!
//! # Why this phase does not aggregate batches
//!
//! Character generalization and phase two pose their whole check sets as
//! one aggregated batch (see `session.rs`), but phase one cannot: the
//! greedy search is *data-dependent*. Which candidate is tried next — and
//! which substrings are recursed into — is decided by the verdicts of the
//! previous candidate, and posing later candidates' checks speculatively
//! would charge the query budget for checks the sequential algorithm never
//! poses (breaking the paper's cost model and the repo's golden query-
//! count pins). The exploitable parallelism here is *within* a candidate:
//! its two residual checks are independent and go to the oracle as one
//! [`QueryRunner::accepts_batch`] pair.

use crate::runner::{CheckSpec, QueryRunner};
use crate::tree::{AltNode, ConstNode, Context, Node, RepNode, StarNode};

/// Phase-one synthesizer state.
pub(crate) struct Phase1<'a, 'o> {
    runner: &'a QueryRunner<'o>,
    next_star_id: usize,
}

impl<'a, 'o> Phase1<'a, 'o> {
    pub fn new(runner: &'a QueryRunner<'o>, first_star_id: usize) -> Self {
        Phase1 { runner, next_star_id: first_star_id }
    }

    /// The next unassigned star id (star ids are globally unique across
    /// seeds so phase two can merge across trees, Section 6.1).
    pub fn next_star_id(&self) -> usize {
        self.next_star_id
    }

    /// Generalizes one seed input into a tree.
    pub fn generalize_seed(&mut self, seed: &[u8]) -> Node {
        self.generalize_rep(seed, Context::root(), true)
    }

    fn fresh_star_id(&mut self) -> usize {
        let id = self.next_star_id;
        self.next_star_id += 1;
        id
    }

    /// Poses the two residual checks of one candidate as a single batch:
    /// the pair is built from borrowed segments (no per-candidate
    /// concatenation) and can hit the oracle concurrently. The greedy
    /// candidate loop itself stays sequential — each decision feeds the
    /// next — but its two checks per candidate are independent.
    fn check_pair(&self, ctx: &Context, first: &[&[u8]], second: &[&[u8]]) -> bool {
        let checks = [CheckSpec::wrapped(ctx, first), CheckSpec::wrapped(ctx, second)];
        let verdicts = self.runner.accepts_batch(&checks);
        verdicts[0] && verdicts[1]
    }

    /// Generalizes `[α]rep` in context `(γ, δ)`.
    ///
    /// `allow_full_star` gates the identity decomposition `(ε, α, ε)`; it is
    /// true for the seed root and for `[α3]rep` rests, false for nodes
    /// reached via alternation (fallback or branch), per the module notes.
    fn generalize_rep(&mut self, alpha: &[u8], ctx: Context, allow_full_star: bool) -> Node {
        let n = alpha.len();
        for a1_len in 0..n {
            // Prefer longer α2 (Section 4.2: a shorter repeated part loses
            // generality, e.g. (<a>h*i*</a>)* instead of (<a>(h+i)*</a>)*).
            for a2_len in (1..=n - a1_len).rev() {
                if !allow_full_star && a1_len == 0 && a2_len == n {
                    continue;
                }
                let (a1, a2, a3) =
                    (&alpha[..a1_len], &alpha[a1_len..a1_len + a2_len], &alpha[a1_len + a2_len..]);
                // Residuals: zero and two repetitions of α2.
                if !self.check_pair(&ctx, &[a1, a3], &[a1, a2, a2, a3]) {
                    continue;
                }
                // Candidate accepted: build contexts per Section 4.3.
                let star_ctx = ctx.narrowed(a1, a3); // for [α2]alt
                let rest_ctx = ctx.narrowed(&[a1, a2].concat(), b""); // for [α3]rep

                // Character-generalization contexts for the literal α1: the
                // zero-repetition form (γ, α3 δ) from Section 6.2's formula,
                // plus the one-repetition form (γ, α2 α3 δ) matching the
                // paper's `aa>hi</a>` example check.
                let pre_contexts =
                    vec![ctx.narrowed(b"", a3), ctx.narrowed(b"", &[a2, a3].concat())];
                let inner = self.generalize_alt(a2, star_ctx.clone());
                let rest = self.generalize_rep(a3, rest_ctx, true);
                return Node::Rep(Box::new(RepNode {
                    pre: ConstNode::new(a1, pre_contexts),
                    star: StarNode {
                        id: self.fresh_star_id(),
                        inner,
                        ctx: star_ctx,
                        original: a2.to_vec(),
                    },
                    rest,
                }));
            }
        }
        // Last candidate: the constant α (production Trep ::= β).
        Node::Const(ConstNode::new(alpha, vec![ctx]))
    }

    /// Generalizes `[α]alt` in context `(γ, δ)`.
    fn generalize_alt(&mut self, alpha: &[u8], ctx: Context) -> Node {
        let n = alpha.len();
        // Prefer shorter α1 (Section 4.2).
        for a1_len in 1..n {
            let (a1, a2) = (&alpha[..a1_len], &alpha[a1_len..]);
            // Residuals: each branch alone (the alternation always sits
            // inside a repetition, so a single branch is a valid residual).
            if !self.check_pair(&ctx, &[a1], &[a2]) {
                continue;
            }
            let left_ctx = ctx.narrowed(b"", a2);
            let right_ctx = ctx.narrowed(a1, b"");
            let mut left = self.generalize_rep(a1, left_ctx, false);
            let mut right = self.generalize_alt(a2, right_ctx);
            // The parent context (γ, δ) is also valid for either branch
            // standing alone (exactly what the checks above verified); give
            // it to directly-constant branches for stronger character
            // generalization (Section 6.2's `<a>a</a>` example check).
            if let Node::Const(c) = &mut left {
                c.contexts.push(ctx.clone());
            }
            if let Node::Const(c) = &mut right {
                c.contexts.push(ctx.clone());
            }
            return Node::Alt(Box::new(AltNode { left, right }));
        }
        // Last candidate: re-bracket as a repetition (Talt ::= Trep), with
        // the identity star disabled to guarantee termination.
        self.generalize_rep(alpha, ctx, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::runner::RunnerOptions;
    use crate::testing::xml_like;
    use crate::{FnOracle, Oracle};
    use glade_grammar::Regex;

    fn test_runner<'s>(oracle: &'s dyn Oracle, cache: &'s ShardedCache) -> QueryRunner<'s> {
        QueryRunner::new(oracle, cache, RunnerOptions { workers: 2, ..RunnerOptions::default() })
    }

    fn synthesize_regex(seed: &[u8]) -> Regex {
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        p1.generalize_seed(seed).to_regex()
    }

    #[test]
    fn oracle_sanity() {
        let o = FnOracle::new(xml_like);
        assert!(o.accepts(b""));
        assert!(o.accepts(b"<a>hi</a>"));
        assert!(o.accepts(b"hihi"));
        assert!(o.accepts(b"<a><a>x</a></a>"));
        assert!(!o.accepts(b"<a>hi</a"));
        assert!(!o.accepts(b">"));
    }

    #[test]
    fn running_example_synthesizes_figure_r9_regex() {
        // Figure 2 steps R1–R9: seed <a>hi</a> generalizes to
        // (<a>(h+i)*</a>)*.
        let r = synthesize_regex(b"<a>hi</a>");
        assert_eq!(r.to_string(), "(<a>[hi]*</a>)*");
        assert!(r.is_match(b""));
        assert!(r.is_match(b"<a>hihi</a><a></a>"));
        assert!(!r.is_match(b"<a>hi</a"));
        // Phase one alone cannot nest (that is phase two's job).
        assert!(!r.is_match(b"<a><a>hi</a></a>"));
    }

    #[test]
    fn running_example_star_metadata() {
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"<a>hi</a>");
        let mut stars = Vec::new();
        tree.collect_stars(&mut stars);
        assert_eq!(stars.len(), 2, "outer tag star and inner (h+i) star");
        // Outer star: the whole seed repeats in the empty context.
        assert_eq!(stars[0].original, b"<a>hi</a>".to_vec());
        assert_eq!(stars[0].ctx.wrap(b"X"), b"X".to_vec());
        // Inner star: "hi" repeats between the tags (Figure 2, step R3).
        assert_eq!(stars[1].original, b"hi".to_vec());
        assert_eq!(stars[1].ctx.wrap(b"X"), b"<a>X</a>".to_vec());
    }

    #[test]
    fn seed_with_single_letter() {
        let r = synthesize_regex(b"x");
        // "x" generalizes to (x)* at the root (zero and two copies valid).
        assert!(r.is_match(b""));
        assert!(r.is_match(b"xxx"));
        assert!(!r.is_match(b"<a>"));
    }

    #[test]
    fn empty_seed_yields_epsilon() {
        let r = synthesize_regex(b"");
        assert_eq!(r, Regex::Epsilon);
    }

    #[test]
    fn fixed_format_stays_constant() {
        // Language: exactly "ab". Nothing can generalize.
        let oracle = FnOracle::new(|i: &[u8]| i == b"ab");
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let r = p1.generalize_seed(b"ab").to_regex();
        assert!(r.is_match(b"ab"));
        assert!(!r.is_match(b""));
        assert!(!r.is_match(b"abab"));
        assert_eq!(r.to_string(), "ab");
    }

    #[test]
    fn budget_exhaustion_degrades_to_seed() {
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = QueryRunner::new(
            &oracle,
            &cache,
            RunnerOptions { max_queries: Some(0), workers: 2, ..RunnerOptions::default() },
        );
        let mut p1 = Phase1::new(&runner, 0);
        let r = p1.generalize_seed(b"<a>hi</a>").to_regex();
        // With no query budget every candidate is rejected: the language
        // collapses to exactly the seed (never *less* than the seed).
        assert!(r.is_match(b"<a>hi</a>"));
        assert!(!r.is_match(b""));
        assert!(runner.exhausted());
    }

    #[test]
    fn monotonicity_seed_always_matched() {
        // Proposition 4.1: every generalization step is monotone, so the
        // seed remains a member at every step; check the final result for a
        // few different languages.
        type BoxedPredicate = Box<dyn Fn(&[u8]) -> bool + Send + Sync>;
        let oracles: Vec<(&[u8], BoxedPredicate)> = vec![
            (b"<a>hi</a>", Box::new(xml_like)),
            (b"aaa", Box::new(|i: &[u8]| i.iter().all(|&b| b == b'a'))),
            (
                b"[]",
                Box::new(|i: &[u8]| {
                    // Balanced brackets.
                    let mut depth = 0i32;
                    for &b in i {
                        match b {
                            b'[' => depth += 1,
                            b']' => depth -= 1,
                            _ => return false,
                        }
                        if depth < 0 {
                            return false;
                        }
                    }
                    depth == 0
                }),
            ),
        ];
        for (seed, f) in oracles {
            let oracle = FnOracle::new(f);
            let cache = ShardedCache::new();
            let runner = test_runner(&oracle, &cache);
            let mut p1 = Phase1::new(&runner, 0);
            let r = p1.generalize_seed(seed).to_regex();
            assert!(r.is_match(seed), "seed {:?} lost", String::from_utf8_lossy(seed));
        }
    }

    #[test]
    fn terminates_on_permissive_oracle() {
        // Σ* accepts everything: the greedy search must still terminate.
        let oracle = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let r = p1.generalize_seed(b"abcd").to_regex();
        assert!(r.is_match(b"abcd"));
        assert!(r.is_match(b""));
    }
}
