//! Budgeted, cached oracle access shared by all synthesis phases.

use crate::Oracle;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Internal oracle front-end enforcing the query/time budget.
///
/// Once the budget is exhausted every further query answers `false`; since
/// checks gate *generalization*, this gracefully degrades synthesis (pending
/// substrings collapse to constants, pending merges are skipped) instead of
/// aborting, mirroring the paper's timeout handling of "use the last
/// language successfully learned".
pub(crate) struct QueryRunner<'o> {
    oracle: &'o dyn Oracle,
    cache: RefCell<HashMap<Vec<u8>, bool>>,
    total: Cell<usize>,
    max_queries: usize,
    deadline: Option<Instant>,
    exhausted: Cell<bool>,
}

impl<'o> QueryRunner<'o> {
    pub fn new(
        oracle: &'o dyn Oracle,
        max_queries: Option<usize>,
        time_limit: Option<Duration>,
    ) -> Self {
        QueryRunner {
            oracle,
            cache: RefCell::new(HashMap::new()),
            total: Cell::new(0),
            max_queries: max_queries.unwrap_or(usize::MAX),
            deadline: time_limit.map(|d| Instant::now() + d),
            exhausted: Cell::new(false),
        }
    }

    /// Budget-aware membership query.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.total.set(self.total.get() + 1);
        if let Some(&v) = self.cache.borrow().get(input) {
            return v;
        }
        if self.exhausted.get() {
            return false;
        }
        if self.cache.borrow().len() >= self.max_queries
            || self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            self.exhausted.set(true);
            return false;
        }
        let v = self.oracle.accepts(input);
        self.cache.borrow_mut().insert(input.to_vec(), v);
        v
    }

    /// Unbudgeted query used for seed validation (seeds must be consulted
    /// even if the budget is already gone).
    pub fn accepts_unbudgeted(&self, input: &[u8]) -> bool {
        if let Some(&v) = self.cache.borrow().get(input) {
            return v;
        }
        let v = self.oracle.accepts(input);
        self.cache.borrow_mut().insert(input.to_vec(), v);
        v
    }

    /// Distinct inputs forwarded to the oracle.
    pub fn unique_queries(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Total queries including cache hits.
    pub fn total_queries(&self) -> usize {
        self.total.get()
    }

    /// Whether the budget ran out at some point.
    pub fn exhausted(&self) -> bool {
        self.exhausted.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnOracle;

    #[test]
    fn caches_and_counts() {
        let o = FnOracle::new(|i: &[u8]| i.len() < 2);
        let r = QueryRunner::new(&o, None, None);
        assert!(r.accepts(b"a"));
        assert!(r.accepts(b"a"));
        assert!(!r.accepts(b"ab"));
        assert_eq!(r.unique_queries(), 2);
        assert_eq!(r.total_queries(), 3);
        assert!(!r.exhausted());
    }

    #[test]
    fn budget_exhaustion_fails_closed() {
        let o = FnOracle::new(|_: &[u8]| true);
        let r = QueryRunner::new(&o, Some(2), None);
        assert!(r.accepts(b"1"));
        assert!(r.accepts(b"2"));
        // Third distinct query exceeds the budget: rejected.
        assert!(!r.accepts(b"3"));
        assert!(r.exhausted());
        // Cached answers stay available.
        assert!(r.accepts(b"1"));
        // Unbudgeted path still works.
        assert!(r.accepts_unbudgeted(b"4"));
    }

    #[test]
    fn time_limit_expires() {
        let o = FnOracle::new(|_: &[u8]| true);
        let r = QueryRunner::new(&o, None, Some(Duration::from_nanos(1)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(!r.accepts(b"x"));
        assert!(r.exhausted());
    }
}
