//! Budgeted, cached, batch-parallel oracle access shared by all synthesis
//! phases.
//!
//! The paper measures synthesis cost purely in membership queries, and the
//! query layer dominates wall-clock time for any real target (each query
//! runs the program under test). This module is therefore built for
//! concurrency end to end:
//!
//! * the query cache is a mutex-striped [`ShardedCache`] and all counters
//!   are atomics, making [`QueryRunner`] `Sync`;
//! * callers describe checks as segment lists ([`CheckSpec`]) instead of
//!   pre-concatenated strings, so check construction writes into one
//!   reusable scratch buffer and allocates only for genuine cache misses;
//! * [`QueryRunner::accepts_batch`] deduplicates a batch, consults the
//!   cache once per distinct check, and fans the remaining misses out
//!   across a scoped worker pool (`std::thread::scope` — no dependencies).
//!
//! Determinism: with no time limit, batch results depend only on the
//! oracle (which must be deterministic, see [`Oracle`]) and the batch
//! contents — never on worker count or scheduling. Phase two and character
//! generalization exploit this by batching their embarrassingly parallel
//! check sets and applying the verdicts sequentially. A `time_limit` is the
//! one exception: which queries beat the deadline is inherently a function
//! of wall-clock speed (and therefore also of worker count), so
//! deadline-degraded runs are reproducible only in their guarantees
//! (fail-closed, seed preserved), not byte-for-byte.

use crate::cache::{hash_query, ShardedCache};
use crate::tree::Context;
use crate::Oracle;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Maximum number of byte-slice segments in a [`CheckSpec`].
///
/// The widest check the synthesizer builds is phase one's two-repetition
/// residual `γ·α1·α2·α2·α3·δ` — six segments.
pub(crate) const MAX_SEGMENTS: usize = 6;

/// Smallest number of distinct cache misses worth spawning worker threads
/// for; below this a batch runs inline on the calling thread.
const MIN_PARALLEL_MISSES: usize = 4;

/// A membership check described as a concatenation of byte slices, built
/// without allocating.
///
/// `CheckSpec` replaces the seed implementation's per-candidate
/// `Vec::concat` + `Context::wrap` allocations: the segments are borrowed
/// from the seed string and the context, and are materialized into a
/// reusable scratch buffer only at lookup time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CheckSpec<'a> {
    segments: [&'a [u8]; MAX_SEGMENTS],
    used: usize,
}

impl<'a> CheckSpec<'a> {
    /// Builds a spec from raw segments (at most [`MAX_SEGMENTS`]).
    pub fn new(segments: &[&'a [u8]]) -> Self {
        assert!(segments.len() <= MAX_SEGMENTS, "check has too many segments");
        let mut s: [&'a [u8]; MAX_SEGMENTS] = [b""; MAX_SEGMENTS];
        s[..segments.len()].copy_from_slice(segments);
        CheckSpec { segments: s, used: segments.len() }
    }

    /// Builds the check `γ·parts·δ` for a residual in context `ctx`.
    pub fn wrapped(ctx: &'a Context, parts: &[&'a [u8]]) -> Self {
        assert!(parts.len() + 2 <= MAX_SEGMENTS, "residual has too many segments");
        let mut s: [&'a [u8]; MAX_SEGMENTS] = [b""; MAX_SEGMENTS];
        s[0] = &ctx.before;
        s[1..=parts.len()].copy_from_slice(parts);
        s[parts.len() + 1] = &ctx.after;
        CheckSpec { segments: s, used: parts.len() + 2 }
    }

    /// Appends the concatenated check string to `out` (callers clear first).
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.segments[..self.used].iter().map(|s| s.len()).sum());
        for seg in &self.segments[..self.used] {
            out.extend_from_slice(seg);
        }
    }
}

/// Internal oracle front-end enforcing the query/time budget.
///
/// Once the budget is exhausted every further query answers `false`; since
/// checks gate *generalization*, this gracefully degrades synthesis (pending
/// substrings collapse to constants, pending merges are skipped) instead of
/// aborting, mirroring the paper's timeout handling of "use the last
/// language successfully learned".
///
/// The budget counts **budgeted distinct queries only**: seed validation
/// through [`QueryRunner::accepts_unbudgeted`] shares the cache but not the
/// budget (the seed implementation compared the budget against the cache
/// size, silently charging seed validation to the synthesis budget).
pub(crate) struct QueryRunner<'o> {
    oracle: &'o dyn Oracle,
    cache: ShardedCache,
    /// All queries, including cache hits.
    total: AtomicUsize,
    /// Distinct budgeted queries actually charged against `max_queries`.
    budget_used: AtomicUsize,
    max_queries: usize,
    deadline: Option<Instant>,
    exhausted: AtomicBool,
    /// Worker threads used by `accepts_batch` (1 = fully sequential).
    workers: usize,
}

impl<'o> QueryRunner<'o> {
    pub fn new(
        oracle: &'o dyn Oracle,
        max_queries: Option<usize>,
        time_limit: Option<Duration>,
        workers: usize,
    ) -> Self {
        QueryRunner {
            oracle,
            cache: ShardedCache::new(),
            total: AtomicUsize::new(0),
            budget_used: AtomicUsize::new(0),
            max_queries: max_queries.unwrap_or(usize::MAX),
            deadline: time_limit.map(|d| Instant::now() + d),
            exhausted: AtomicBool::new(false),
            workers: workers.max(1),
        }
    }

    /// Reserves one budget slot, or trips the exhausted flag and fails.
    fn reserve_budget(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        let reserved = self
            .budget_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                (used < self.max_queries).then_some(used + 1)
            })
            .is_ok();
        if !reserved {
            self.exhausted.store(true, Ordering::Relaxed);
        }
        reserved
    }

    /// Budget-aware membership query (single-check form of
    /// [`QueryRunner::accepts_batch`]; the synthesis phases all batch, so
    /// production builds reach this only through the batch path).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.cache.get(input) {
            return v;
        }
        if !self.reserve_budget() {
            return false;
        }
        let v = self.oracle.accepts(input);
        self.cache.insert(input.to_vec(), v);
        v
    }

    /// Budget-aware batched membership query.
    ///
    /// Deduplicates `checks`, answers what it can from the cache, reserves
    /// budget for the distinct misses (misses beyond the budget answer
    /// `false`, exactly like [`QueryRunner::accepts`]), then dispatches the
    /// misses across up to `workers` scoped threads. Results are returned
    /// in input order and are identical for every worker count.
    ///
    /// Budget note: a batch charges every distinct miss it poses. Callers
    /// that previously short-circuited (stop at the first failing check of
    /// a candidate) now pay for the whole batch — that is the price of
    /// posing the checks concurrently, and it is the same in sequential
    /// mode so query counts stay worker-count-independent.
    ///
    /// The time budget is enforced during execution too: once the deadline
    /// passes, remaining misses are skipped (answering `false`, *not*
    /// cached — only real oracle verdicts enter the cache) and the runner
    /// is marked exhausted, matching the seed implementation's
    /// per-query deadline check.
    pub fn accepts_batch(&self, checks: &[CheckSpec<'_>]) -> Vec<bool> {
        let mut results = vec![false; checks.len()];
        // Distinct cache misses to send to the oracle, with the positions
        // in `checks` each one answers. `dedup` buckets candidate miss
        // indices by hash; equality is confirmed on the bytes.
        let mut miss_keys: Vec<Vec<u8>> = Vec::new();
        let mut miss_targets: Vec<Vec<usize>> = Vec::new();
        let mut dedup: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut scratch: Vec<u8> = Vec::new();

        for (i, spec) in checks.iter().enumerate() {
            self.total.fetch_add(1, Ordering::Relaxed);
            scratch.clear();
            spec.write_into(&mut scratch);
            if let Some(v) = self.cache.get(&scratch) {
                results[i] = v;
                continue;
            }
            let h = hash_query(&scratch);
            if let Some(candidates) = dedup.get(&h) {
                if let Some(&m) = candidates.iter().find(|&&m| miss_keys[m] == scratch) {
                    miss_targets[m].push(i);
                    continue;
                }
            }
            if !self.reserve_budget() {
                // Over budget: this check (and its later duplicates, which
                // re-enter here and fail the same way) answers false.
                continue;
            }
            dedup.entry(h).or_default().push(miss_keys.len());
            miss_targets.push(vec![i]);
            miss_keys.push(scratch.clone());
        }

        // Fan the distinct misses out across the worker pool. `None` marks
        // a miss skipped because the deadline expired mid-batch: it answers
        // `false` but is not cached (only real oracle verdicts may enter
        // the cache).
        let run_chunk = |keys: &[Vec<u8>], out: &mut [Option<bool>]| {
            for (key, slot) in keys.iter().zip(out.iter_mut()) {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.exhausted.store(true, Ordering::Relaxed);
                    break;
                }
                *slot = Some(self.oracle.accepts(key));
            }
        };
        let mut verdicts: Vec<Option<bool>> = vec![None; miss_keys.len()];
        // Spawning threads costs tens of microseconds; only fan out when
        // the batch is big enough to amortize it (tiny batches — e.g.
        // phase 1's residual pairs against an in-process oracle — run
        // inline). Results are identical either way.
        let threads = if miss_keys.len() >= MIN_PARALLEL_MISSES {
            self.workers.min(miss_keys.len())
        } else {
            1
        };
        if threads > 1 {
            let chunk = miss_keys.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (keys, out) in miss_keys.chunks(chunk).zip(verdicts.chunks_mut(chunk)) {
                    scope.spawn(|| run_chunk(keys, out));
                }
            });
        } else {
            run_chunk(&miss_keys, &mut verdicts);
        }

        for ((key, verdict), targets) in miss_keys.into_iter().zip(verdicts).zip(miss_targets) {
            let Some(verdict) = verdict else { continue };
            self.cache.insert(key, verdict);
            for i in targets {
                results[i] = verdict;
            }
        }
        results
    }

    /// Unbudgeted query used for seed validation (seeds must be consulted
    /// even if the budget is already gone). Shares the cache but is not
    /// charged against `max_queries`.
    pub fn accepts_unbudgeted(&self, input: &[u8]) -> bool {
        if let Some(v) = self.cache.get(input) {
            return v;
        }
        let v = self.oracle.accepts(input);
        self.cache.insert(input.to_vec(), v);
        v
    }

    /// Distinct inputs forwarded to the oracle.
    pub fn unique_queries(&self) -> usize {
        self.cache.len()
    }

    /// Total queries including cache hits.
    pub fn total_queries(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether the budget ran out at some point.
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnOracle;
    use std::sync::atomic::AtomicUsize;

    fn spec<'a>(bytes: &'a [u8]) -> CheckSpec<'a> {
        CheckSpec::new(&[bytes])
    }

    #[test]
    fn caches_and_counts() {
        let o = FnOracle::new(|i: &[u8]| i.len() < 2);
        let r = QueryRunner::new(&o, None, None, 1);
        assert!(r.accepts(b"a"));
        assert!(r.accepts(b"a"));
        assert!(!r.accepts(b"ab"));
        assert_eq!(r.unique_queries(), 2);
        assert_eq!(r.total_queries(), 3);
        assert!(!r.exhausted());
    }

    #[test]
    fn budget_exhaustion_fails_closed() {
        let o = FnOracle::new(|_: &[u8]| true);
        let r = QueryRunner::new(&o, Some(2), None, 1);
        assert!(r.accepts(b"1"));
        assert!(r.accepts(b"2"));
        // Third distinct query exceeds the budget: rejected.
        assert!(!r.accepts(b"3"));
        assert!(r.exhausted());
        // Cached answers stay available.
        assert!(r.accepts(b"1"));
        // Unbudgeted path still works.
        assert!(r.accepts_unbudgeted(b"4"));
    }

    #[test]
    fn unbudgeted_queries_do_not_consume_budget() {
        // Regression: the seed implementation compared the budget against
        // the *cache size*, so seed validation (unbudgeted) silently ate
        // distinct-query budget.
        let o = FnOracle::new(|_: &[u8]| true);
        let r = QueryRunner::new(&o, Some(2), None, 1);
        assert!(r.accepts_unbudgeted(b"seed-1"));
        assert!(r.accepts_unbudgeted(b"seed-2"));
        assert!(r.accepts_unbudgeted(b"seed-3"));
        // The full budget of 2 distinct budgeted queries remains.
        assert!(r.accepts(b"q1"));
        assert!(r.accepts(b"q2"));
        assert!(!r.accepts(b"q3"));
        assert!(r.exhausted());
        assert_eq!(r.unique_queries(), 5, "cache still holds seeds + budgeted");
    }

    #[test]
    fn time_limit_expires() {
        let o = FnOracle::new(|_: &[u8]| true);
        let r = QueryRunner::new(&o, None, Some(Duration::from_nanos(1)), 1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!r.accepts(b"x"));
        assert!(r.exhausted());
    }

    #[test]
    fn batch_results_preserve_order_and_dedup() {
        let calls = AtomicUsize::new(0);
        let o = FnOracle::new(|i: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            i.len().is_multiple_of(2)
        });
        for workers in [1, 4] {
            calls.store(0, Ordering::Relaxed);
            let r = QueryRunner::new(&o, None, None, workers);
            let checks =
                [spec(b"aa"), spec(b"b"), spec(b"aa"), spec(b"cccc"), spec(b"b"), spec(b"")];
            let verdicts = r.accepts_batch(&checks);
            assert_eq!(verdicts, vec![true, false, true, true, false, true]);
            assert_eq!(r.unique_queries(), 4, "workers={workers}");
            assert_eq!(calls.load(Ordering::Relaxed), 4, "duplicates reach oracle once");
            assert_eq!(r.total_queries(), 6);
        }
    }

    #[test]
    fn batch_mixed_segments_concatenate() {
        let o = FnOracle::new(|i: &[u8]| i == b"<a>hi</a>");
        let r = QueryRunner::new(&o, None, None, 2);
        let (pre, mid, post) = (&b"<a>"[..], &b"hi"[..], &b"</a>"[..]);
        let checks = [CheckSpec::new(&[pre, mid, post]), CheckSpec::new(&[pre, post])];
        assert_eq!(r.accepts_batch(&checks), vec![true, false]);
        // The same strings by another segmentation hit the cache.
        let checks2 = [spec(b"<a>hi</a>"), spec(b"<a></a>")];
        assert_eq!(r.accepts_batch(&checks2), vec![true, false]);
        assert_eq!(r.unique_queries(), 2);
    }

    #[test]
    fn batch_budget_answers_false_beyond_limit() {
        let o = FnOracle::new(|_: &[u8]| true);
        let r = QueryRunner::new(&o, Some(2), None, 4);
        let checks = [spec(b"1"), spec(b"2"), spec(b"3"), spec(b"1")];
        let verdicts = r.accepts_batch(&checks);
        // First two distinct checks fit the budget; the third fails closed;
        // the duplicate of "1" is answered from the batch's dedup set.
        assert_eq!(verdicts, vec![true, true, false, true]);
        assert!(r.exhausted());
        assert_eq!(r.unique_queries(), 2);
    }

    #[test]
    fn deadline_expiring_mid_batch_stops_querying() {
        // Regression: the deadline must be honored between queries *inside*
        // a batch, not just at reservation time — a slow oracle must not
        // run an hour-long batch past a 30 ms limit.
        let calls = AtomicUsize::new(0);
        let o = FnOracle::new(|_: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(20));
            true
        });
        let r = QueryRunner::new(&o, None, Some(Duration::from_millis(30)), 1);
        let inputs: Vec<Vec<u8>> = (0..10u8).map(|b| vec![b]).collect();
        let specs: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        let verdicts = r.accepts_batch(&specs);
        assert!(r.exhausted());
        assert!(calls.load(Ordering::Relaxed) < 10, "deadline did not stop the batch");
        // Skipped misses answer false and are not poisoned into the cache.
        assert!(verdicts.iter().any(|&v| !v));
        assert!(r.unique_queries() < 10);
    }

    #[test]
    fn batch_agrees_with_sequential_accepts() {
        let o = FnOracle::new(|i: &[u8]| i.iter().all(|&b| b == b'x'));
        let seq = QueryRunner::new(&o, None, None, 1);
        let par = QueryRunner::new(&o, None, None, 8);
        let inputs: Vec<Vec<u8>> =
            (0..64).map(|n| std::iter::repeat_n(b'x', n % 7).collect()).collect();
        let specs: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        let par_verdicts = par.accepts_batch(&specs);
        let seq_verdicts: Vec<bool> = inputs.iter().map(|i| seq.accepts(i)).collect();
        assert_eq!(par_verdicts, seq_verdicts);
        assert_eq!(par.unique_queries(), seq.unique_queries());
    }

    #[test]
    fn runner_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<QueryRunner<'static>>();
    }

    #[test]
    fn check_spec_write_into_reuses_buffer() {
        let ctx = Context { before: b"<a>".to_vec(), after: b"</a>".to_vec() };
        let s = CheckSpec::wrapped(&ctx, &[b"h", b"i"]);
        let mut buf = Vec::new();
        s.write_into(&mut buf);
        assert_eq!(buf, b"<a>hi</a>");
        let cap = buf.capacity();
        buf.clear();
        s.write_into(&mut buf);
        assert_eq!(buf, b"<a>hi</a>");
        assert_eq!(buf.capacity(), cap, "no reallocation on reuse");
    }
}
