//! Budgeted, cached, batch-parallel oracle access shared by all synthesis
//! phases.
//!
//! The paper measures synthesis cost purely in membership queries, and the
//! query layer dominates wall-clock time for any real target (each query
//! runs the program under test). This module is therefore built for
//! concurrency end to end:
//!
//! * the query cache is a mutex-striped [`ShardedCache`] owned by the
//!   [`Session`](crate::Session) — it outlives any single run, so
//!   incremental `add_seeds` calls and warm-started runs (see
//!   `persist.rs`) answer repeated checks without re-paying oracle calls —
//!   and all counters are atomics, making [`QueryRunner`] `Sync`;
//! * callers describe checks as segment lists ([`CheckSpec`]) instead of
//!   pre-concatenated strings, so check construction writes into one
//!   reusable scratch buffer and allocates only for genuine cache misses;
//! * a partially loaded binary snapshot ([`BackingStore`], see
//!   `persist::BinaryCacheFile`) sits between the in-memory cache and the
//!   oracle: misses consult its on-disk index before paying an oracle
//!   call, and hits are faulted into the cache on demand — so a multi-GB
//!   warm-start snapshot costs index probes for the entries a campaign
//!   actually revisits instead of an up-front full materialization;
//! * [`QueryRunner::accepts_batch`] deduplicates a batch, consults the
//!   cache once per distinct check, and fans the remaining misses out
//!   across a scoped worker pool (`std::thread::scope` — no dependencies);
//! * dispatch inside a batch is **work-stealing**: workers pull the next
//!   un-posed miss from a shared atomic cursor instead of owning a static
//!   chunk, so one slow query (real oracles have heavy-tailed latencies —
//!   a pathological input can take 100× the median) delays only the worker
//!   running it while the rest drain the remaining misses;
//! * oracles that multiplex batches natively ([`Oracle::native_batching`],
//!   e.g. the pooled process oracle's `poll(2)` dispatcher over batched
//!   protocol frames) are instead handed the whole miss set from the
//!   calling thread in bounded sub-batches — no engine thread is parked
//!   per in-flight query, and the oracle keeps its own worker processes
//!   saturated regardless of the engine's `worker_threads` setting.
//!
//! The runner is also the engine's observation and cancellation point:
//! every batch emits a [`SynthEvent::QueryBatch`] to the installed
//! observer, budget exhaustion and cancellation emit their events exactly
//! once, and a [`CancelToken`] is checked both at budget-reservation time
//! and between the queries of an in-flight batch — cancellation takes the
//! same fail-closed path as the deadline.
//!
//! Determinism: with no time limit and no cancellation, batch results
//! depend only on the oracle (which must be deterministic, see
//! [`Oracle`]) and the batch contents — never on worker count or
//! scheduling. Phase two and character generalization exploit this by
//! batching their embarrassingly parallel check sets and applying the
//! verdicts sequentially. A `time_limit` (or a cancel) is the exception:
//! which queries beat the cutoff is inherently a function of wall-clock
//! speed, so degraded runs are reproducible only in their guarantees
//! (fail-closed, seeds preserved), not byte-for-byte.

use crate::cache::{hash_query, ShardedCache};
use crate::events::{CancelToken, SynthEvent, SynthesisObserver};
use crate::persist::BinaryCacheFile;
use crate::tree::Context;
use crate::Oracle;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Maximum number of byte-slice segments in a [`CheckSpec`].
///
/// The widest check the synthesizer builds is phase one's two-repetition
/// residual `γ·α1·α2·α2·α3·δ` — six segments.
pub(crate) const MAX_SEGMENTS: usize = 6;

/// Smallest number of distinct cache misses worth spawning worker threads
/// for; below this a batch runs inline on the calling thread.
const MIN_PARALLEL_MISSES: usize = 4;

/// Misses handed to a natively batching oracle per
/// [`Oracle::accepts_batch_checked`] call. The bound is the granularity at
/// which the deadline and the cancel token are re-checked during a huge
/// batch; within one sub-batch the oracle runs uninterrupted. Large enough
/// that frame batching amortizes fully, small enough that cancellation
/// latency stays in the tens-of-milliseconds range for real targets.
const NATIVE_DISPATCH_SUB_BATCH: usize = 1024;

/// A membership check described as a concatenation of byte slices, built
/// without allocating.
///
/// `CheckSpec` replaces the seed implementation's per-candidate
/// `Vec::concat` + `Context::wrap` allocations: the segments are borrowed
/// from the seed string and the context, and are materialized into a
/// reusable scratch buffer only at lookup time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CheckSpec<'a> {
    segments: [&'a [u8]; MAX_SEGMENTS],
    used: usize,
}

impl<'a> CheckSpec<'a> {
    /// Builds a spec from raw segments (at most [`MAX_SEGMENTS`]).
    pub fn new(segments: &[&'a [u8]]) -> Self {
        assert!(segments.len() <= MAX_SEGMENTS, "check has too many segments");
        let mut s: [&'a [u8]; MAX_SEGMENTS] = [b""; MAX_SEGMENTS];
        s[..segments.len()].copy_from_slice(segments);
        CheckSpec { segments: s, used: segments.len() }
    }

    /// Builds the check `γ·parts·δ` for a residual in context `ctx`.
    pub fn wrapped(ctx: &'a Context, parts: &[&'a [u8]]) -> Self {
        assert!(parts.len() + 2 <= MAX_SEGMENTS, "residual has too many segments");
        let mut s: [&'a [u8]; MAX_SEGMENTS] = [b""; MAX_SEGMENTS];
        s[0] = &ctx.before;
        s[1..=parts.len()].copy_from_slice(parts);
        s[parts.len() + 1] = &ctx.after;
        CheckSpec { segments: s, used: parts.len() + 2 }
    }

    /// Appends the concatenated check string to `out` (callers clear first).
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.segments[..self.used].iter().map(|s| s.len()).sum());
        for seg in &self.segments[..self.used] {
            out.extend_from_slice(seg);
        }
    }
}

/// A partially loaded binary cache snapshot serving as a read-only
/// second cache level.
///
/// Opened by [`Session::attach_cache`](crate::Session::attach_cache): the
/// snapshot's index stays on disk and entries are faulted into the
/// in-memory [`ShardedCache`] the first time a run revisits them.
/// `faulted` counts the *distinct* backing entries materialized so far, so
/// `unique_queries` accounting stays exact: distinct queries known to the
/// session = `cache.len() + (file.len() - faulted)` — every backing entry
/// is either still pending on disk or has been faulted (and is then
/// counted by the cache's distinct-ever ledger, which survives eviction).
#[derive(Debug)]
pub(crate) struct BackingStore {
    pub file: BinaryCacheFile,
    /// Distinct backing entries faulted into the in-memory cache.
    pub faulted: usize,
}

impl BackingStore {
    /// Backing entries not yet faulted into the in-memory cache.
    pub fn pending(&self) -> usize {
        self.file.len().saturating_sub(self.faulted)
    }
}

/// Construction-time knobs for a [`QueryRunner`], separate from the
/// borrowed oracle and cache so call sites stay readable.
pub(crate) struct RunnerOptions<'s> {
    /// Distinct-query budget for this run (`None` = unlimited).
    pub max_queries: Option<usize>,
    /// Wall-clock limit for this run.
    pub time_limit: Option<Duration>,
    /// Worker threads used by `accepts_batch` (1 = fully sequential).
    pub workers: usize,
    /// Progress observer; receives `QueryBatch`/`BudgetExhausted`/
    /// `Cancelled` events.
    pub observer: Option<&'s dyn SynthesisObserver>,
    /// Cooperative cancellation flag checked between and inside batches.
    pub cancel: Option<&'s CancelToken>,
    /// Session-owned partially loaded snapshot consulted on cache misses.
    pub backing: Option<&'s Mutex<BackingStore>>,
}

impl Default for RunnerOptions<'_> {
    fn default() -> Self {
        RunnerOptions {
            max_queries: None,
            time_limit: None,
            workers: 1,
            observer: None,
            cancel: None,
            backing: None,
        }
    }
}

/// Internal oracle front-end enforcing the query/time budget and the
/// cancel token.
///
/// Once the budget is exhausted (or the run is cancelled) every further
/// query answers `false`; since checks gate *generalization*, this
/// gracefully degrades synthesis (pending substrings collapse to
/// constants, pending merges are skipped) instead of aborting, mirroring
/// the paper's timeout handling of "use the last language successfully
/// learned".
///
/// The budget counts **budgeted distinct queries only**: seed validation
/// through [`QueryRunner::accepts_unbudgeted`] shares the cache but not the
/// budget (the seed implementation compared the budget against the cache
/// size, silently charging seed validation to the synthesis budget).
pub(crate) struct QueryRunner<'s> {
    oracle: &'s dyn Oracle,
    /// Session-owned cache; shared across the runs of one session.
    cache: &'s ShardedCache,
    /// Partially loaded snapshot consulted on cache misses (see
    /// [`BackingStore`]).
    backing: Option<&'s Mutex<BackingStore>>,
    observer: Option<&'s dyn SynthesisObserver>,
    cancel: Option<&'s CancelToken>,
    /// All queries, including cache hits.
    total: AtomicUsize,
    /// Distinct budgeted queries actually charged against `max_queries`.
    budget_used: AtomicUsize,
    max_queries: usize,
    deadline: Option<Instant>,
    exhausted: AtomicBool,
    /// Whether cancellation was actually observed by this run.
    cancelled: AtomicBool,
    /// One-shot latches so `BudgetExhausted`/`Cancelled` are emitted once.
    budget_event_sent: AtomicBool,
    cancel_event_sent: AtomicBool,
    /// Worker threads used by `accepts_batch` (1 = fully sequential).
    workers: usize,
    /// Oracle execution failures already accumulated before this run, so
    /// the runner reports per-run deltas (see [`Oracle::failure_count`]).
    failures_at_start: usize,
    /// Failures already surfaced through `SynthEvent::OracleFailures`.
    failures_reported: AtomicUsize,
    /// Pre-run baselines and already-surfaced marks for the oracle health
    /// counters (deadline timeouts, breaker trips/recoveries), mirroring
    /// the failure-count delta reporting above.
    timeouts_at_start: usize,
    timeouts_reported: AtomicUsize,
    trips_at_start: usize,
    trips_reported: AtomicUsize,
    recoveries_at_start: usize,
    recoveries_reported: AtomicUsize,
}

impl<'s> QueryRunner<'s> {
    pub fn new(oracle: &'s dyn Oracle, cache: &'s ShardedCache, opts: RunnerOptions<'s>) -> Self {
        let failures_at_start = oracle.failure_count();
        let timeouts_at_start = oracle.timed_out_count();
        let trips_at_start = oracle.tripped_worker_count();
        let recoveries_at_start = oracle.recovered_worker_count();
        QueryRunner {
            oracle,
            cache,
            backing: opts.backing,
            observer: opts.observer,
            cancel: opts.cancel,
            total: AtomicUsize::new(0),
            budget_used: AtomicUsize::new(0),
            max_queries: opts.max_queries.unwrap_or(usize::MAX),
            deadline: opts.time_limit.map(|d| Instant::now() + d),
            exhausted: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            budget_event_sent: AtomicBool::new(false),
            cancel_event_sent: AtomicBool::new(false),
            workers: opts.workers.max(1),
            failures_at_start,
            failures_reported: AtomicUsize::new(failures_at_start),
            timeouts_at_start,
            timeouts_reported: AtomicUsize::new(timeouts_at_start),
            trips_at_start,
            trips_reported: AtomicUsize::new(trips_at_start),
            recoveries_at_start,
            recoveries_reported: AtomicUsize::new(recoveries_at_start),
        }
    }

    fn emit(&self, event: SynthEvent) {
        if let Some(obs) = self.observer {
            obs.on_event(&event);
        }
    }

    /// Trips the fail-closed flag; emits the matching event exactly once.
    fn trip_exhausted(&self, by_cancel: bool) {
        self.exhausted.store(true, Ordering::Relaxed);
        if by_cancel {
            self.cancelled.store(true, Ordering::Relaxed);
            if !self.cancel_event_sent.swap(true, Ordering::Relaxed) {
                self.emit(SynthEvent::Cancelled);
            }
        } else if !self.budget_event_sent.swap(true, Ordering::Relaxed) {
            self.emit(SynthEvent::BudgetExhausted);
        }
    }

    /// Whether the cancel token has been flipped.
    fn cancel_requested(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Surfaces newly observed oracle execution failures (see
    /// [`Oracle::failure_count`]) as a [`SynthEvent::OracleFailures`]
    /// event. Called after every batch; emits only when the count grew.
    fn report_oracle_failures(&self) {
        let current = self.oracle.failure_count();
        let previous = self.failures_reported.swap(current, Ordering::Relaxed);
        if current > previous {
            self.emit(SynthEvent::OracleFailures {
                new_failures: current - previous,
                run_failures: current - self.failures_at_start,
            });
        }
    }

    /// Oracle execution failures observed during this run (queries whose
    /// verdict could not be obtained and degraded to `false`).
    pub fn oracle_failures(&self) -> usize {
        self.oracle.failure_count().saturating_sub(self.failures_at_start)
    }

    /// Surfaces newly observed oracle health transitions — deadline
    /// timeouts ([`SynthEvent::WorkerHung`]), breaker trips
    /// ([`SynthEvent::BreakerTripped`]) and recoveries
    /// ([`SynthEvent::BreakerRecovered`]) — with the same swap-delta
    /// pattern as [`QueryRunner::report_oracle_failures`]. Called after
    /// every batch; emits only when a counter grew.
    fn report_oracle_health(&self) {
        let current = self.oracle.timed_out_count();
        let previous = self.timeouts_reported.swap(current, Ordering::Relaxed);
        if current > previous {
            self.emit(SynthEvent::WorkerHung {
                new_timeouts: current - previous,
                run_timeouts: current - self.timeouts_at_start,
            });
        }
        let current = self.oracle.tripped_worker_count();
        let previous = self.trips_reported.swap(current, Ordering::Relaxed);
        if current > previous {
            self.emit(SynthEvent::BreakerTripped {
                new_trips: current - previous,
                run_trips: current - self.trips_at_start,
            });
        }
        let current = self.oracle.recovered_worker_count();
        let previous = self.recoveries_reported.swap(current, Ordering::Relaxed);
        if current > previous {
            self.emit(SynthEvent::BreakerRecovered {
                new_recoveries: current - previous,
                run_recoveries: current - self.recoveries_at_start,
            });
        }
    }

    /// Queries abandoned to the per-query deadline during this run (each
    /// was also retried or degraded, so it is *additionally* visible in
    /// [`QueryRunner::oracle_failures`] unless rescued).
    pub fn timed_out_queries(&self) -> usize {
        self.oracle.timed_out_count().saturating_sub(self.timeouts_at_start)
    }

    /// Worker-slot circuit-breaker trips during this run.
    pub fn tripped_workers(&self) -> usize {
        self.oracle.tripped_worker_count().saturating_sub(self.trips_at_start)
    }

    /// Reserves one budget slot, or trips the exhausted flag and fails.
    fn reserve_budget(&self) -> bool {
        if self.cancel_requested() {
            self.trip_exhausted(true);
            return false;
        }
        if self.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip_exhausted(false);
            return false;
        }
        let reserved = self
            .budget_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                (used < self.max_queries).then_some(used + 1)
            })
            .is_ok();
        if !reserved {
            self.trip_exhausted(false);
        }
        reserved
    }

    /// Consults the partially loaded backing snapshot for a cache miss.
    /// Hits are faulted into the in-memory cache (so later lookups answer
    /// lock-free) and charged to the store's `faulted` ledger exactly once
    /// per distinct entry — a re-fault after eviction is answered but not
    /// re-counted. I/O errors on a damaged file degrade to a miss: the
    /// oracle re-answers, trading queries for availability.
    fn backing_lookup(&self, key: &[u8]) -> Option<bool> {
        let store = self.backing?;
        let mut store = store.lock().expect("backing cache poisoned");
        match store.file.lookup(key) {
            Ok(Some(v)) => {
                if self.cache.insert(key.to_vec(), v) {
                    store.faulted += 1;
                }
                Some(v)
            }
            Ok(None) | Err(_) => None,
        }
    }

    /// Budget-aware membership query (single-check form of
    /// [`QueryRunner::accepts_batch`]; the synthesis phases all batch, so
    /// production builds reach this only through the batch path).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.cache.get(input) {
            return v;
        }
        // Backing-snapshot hits are warm answers: not budgeted.
        if let Some(v) = self.backing_lookup(input) {
            return v;
        }
        if !self.reserve_budget() {
            return false;
        }
        // Execution failures answer `false` but are not cached.
        let Some(v) = self.oracle.accepts_checked(input) else { return false };
        self.cache.insert(input.to_vec(), v);
        v
    }

    /// Budget-aware batched membership query.
    ///
    /// Deduplicates `checks`, answers what it can from the cache, reserves
    /// budget for the distinct misses (misses beyond the budget answer
    /// `false`, exactly like [`QueryRunner::accepts`]), then dispatches the
    /// misses across up to `workers` scoped threads. Results are returned
    /// in input order and are identical for every worker count. When an
    /// observer is installed, one [`SynthEvent::QueryBatch`] is emitted per
    /// call with the batch/cached/posed breakdown.
    ///
    /// Budget note: a batch charges every distinct miss it poses. Callers
    /// that previously short-circuited (stop at the first failing check of
    /// a candidate) now pay for the whole batch — that is the price of
    /// posing the checks concurrently, and it is the same in sequential
    /// mode so query counts stay worker-count-independent.
    ///
    /// The time budget and the cancel token are enforced during execution
    /// too: once the deadline passes or the token flips, remaining misses
    /// are skipped (answering `false`, *not* cached — only real oracle
    /// verdicts enter the cache) and the runner is marked exhausted.
    pub fn accepts_batch(&self, checks: &[CheckSpec<'_>]) -> Vec<bool> {
        let mut results = vec![false; checks.len()];
        // Distinct cache misses to send to the oracle, with the positions
        // in `checks` each one answers. `dedup` buckets candidate miss
        // indices by hash; equality is confirmed on the bytes.
        let mut miss_keys: Vec<Vec<u8>> = Vec::new();
        let mut miss_targets: Vec<Vec<usize>> = Vec::new();
        let mut dedup: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut scratch: Vec<u8> = Vec::new();
        let mut cached = 0usize;

        for (i, spec) in checks.iter().enumerate() {
            self.total.fetch_add(1, Ordering::Relaxed);
            scratch.clear();
            spec.write_into(&mut scratch);
            if let Some(v) = self.cache.get(&scratch) {
                results[i] = v;
                cached += 1;
                continue;
            }
            let h = hash_query(&scratch);
            if let Some(candidates) = dedup.get(&h) {
                if let Some(&m) = candidates.iter().find(|&&m| miss_keys[m] == scratch) {
                    miss_targets[m].push(i);
                    continue;
                }
            }
            // Backing-snapshot hits are warm answers: counted as cached,
            // not budgeted, never posed. The fault inserts the entry into
            // the cache, so later duplicates in this batch hit there.
            if let Some(v) = self.backing_lookup(&scratch) {
                results[i] = v;
                cached += 1;
                continue;
            }
            if !self.reserve_budget() {
                // Over budget: this check (and its later duplicates, which
                // re-enter here and fail the same way) answers false.
                continue;
            }
            dedup.entry(h).or_default().push(miss_keys.len());
            miss_targets.push(vec![i]);
            miss_keys.push(scratch.clone());
        }

        // Dispatch the distinct misses. Two strategies, same results:
        //
        // * **Native batch dispatch** — oracles that multiplex a whole
        //   batch themselves ([`Oracle::native_batching`], e.g. the pooled
        //   process oracle's poll(2) dispatcher) are handed the miss set
        //   in bounded sub-batches from this thread. No engine thread is
        //   parked per in-flight query; the oracle keeps its own workers
        //   saturated. The sub-batch bound exists so the deadline and the
        //   cancel token are still honored *during* a large batch.
        // * **Work stealing** — for ordinary per-query oracles, a shared
        //   atomic cursor hands each idle engine worker the next un-posed
        //   miss, so a single slow query (heterogeneous latencies are the
        //   norm for real targets) stalls one worker instead of the whole
        //   static chunk scheduled behind it.
        //
        // Every miss is posed exactly once and the oracle is
        // deterministic, so results — and the set of cached queries — are
        // identical for every worker count and for either strategy. A
        // verdict left `None` marks a miss skipped because the deadline
        // expired (or the run was cancelled) mid-batch, or an oracle
        // execution failure: it answers `false` but is not cached (only
        // real oracle verdicts may enter the cache, or a persisted
        // snapshot would poison every warm start).
        let verdicts: Vec<Option<bool>> = if self.oracle.native_batching() {
            let mut verdicts: Vec<Option<bool>> = vec![None; miss_keys.len()];
            for start in (0..miss_keys.len()).step_by(NATIVE_DISPATCH_SUB_BATCH) {
                if self.cancel_requested() {
                    self.trip_exhausted(true);
                    break;
                }
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.trip_exhausted(false);
                    break;
                }
                let end = (start + NATIVE_DISPATCH_SUB_BATCH).min(miss_keys.len());
                let refs: Vec<&[u8]> = miss_keys[start..end].iter().map(Vec::as_slice).collect();
                let answers = self.oracle.accepts_batch_checked(&refs);
                debug_assert_eq!(answers.len(), refs.len());
                verdicts[start..end].copy_from_slice(&answers);
            }
            verdicts
        } else {
            const SLOT_SKIPPED: u8 = 0;
            const SLOT_REJECT: u8 = 1;
            const SLOT_ACCEPT: u8 = 2;
            let slots: Vec<AtomicU8> =
                miss_keys.iter().map(|_| AtomicU8::new(SLOT_SKIPPED)).collect();
            let cursor = AtomicUsize::new(0);
            let steal_loop = || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= miss_keys.len() {
                    break;
                }
                if self.cancel_requested() {
                    self.trip_exhausted(true);
                    break;
                }
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.trip_exhausted(false);
                    break;
                }
                if let Some(v) = self.oracle.accepts_checked(&miss_keys[i]) {
                    slots[i].store(if v { SLOT_ACCEPT } else { SLOT_REJECT }, Ordering::Relaxed);
                }
            };
            // Spawning threads costs tens of microseconds; only fan out
            // when the batch is big enough to amortize it (tiny batches —
            // e.g. phase 1's residual pairs against an in-process oracle —
            // run inline). Results are identical either way.
            let threads = if miss_keys.len() >= MIN_PARALLEL_MISSES {
                self.workers.min(miss_keys.len())
            } else {
                1
            };
            if threads > 1 {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(steal_loop);
                    }
                });
            } else {
                steal_loop();
            }
            slots
                .iter()
                .map(|s| match s.load(Ordering::Relaxed) {
                    SLOT_SKIPPED => None,
                    v => Some(v == SLOT_ACCEPT),
                })
                .collect()
        };
        self.report_oracle_failures();
        self.report_oracle_health();

        if self.observer.is_some() {
            // `posed` counts misses that actually reached the oracle —
            // slots left `None` were skipped by the deadline or a cancel.
            self.emit(SynthEvent::QueryBatch {
                checks: checks.len(),
                cached,
                posed: verdicts.iter().filter(|v| v.is_some()).count(),
            });
        }

        for ((key, verdict), targets) in miss_keys.into_iter().zip(verdicts).zip(miss_targets) {
            let Some(verdict) = verdict else { continue };
            self.cache.insert(key, verdict);
            for i in targets {
                results[i] = verdict;
            }
        }
        results
    }

    /// Unbudgeted query used for seed validation (seeds must be consulted
    /// even if the budget is already gone). Shares the cache but is not
    /// charged against `max_queries`, and ignores cancellation — a
    /// returned `Synthesis` must always have validated its seeds.
    pub fn accepts_unbudgeted(&self, input: &[u8]) -> bool {
        if let Some(v) = self.cache.get(input) {
            return v;
        }
        if let Some(v) = self.backing_lookup(input) {
            return v;
        }
        // A seed whose validation *execution* fails is rejected (the
        // premise `E_in ⊆ L*` cannot be confirmed) without caching the
        // non-verdict.
        let Some(v) = self.oracle.accepts_checked(input) else { return false };
        self.cache.insert(input.to_vec(), v);
        v
    }

    /// Distinct inputs known so far (cumulative across the session):
    /// the in-memory cache's distinct-ever count plus the backing
    /// snapshot's not-yet-faulted entries, so partial and full loads of
    /// the same snapshot report identical `unique_queries`.
    pub fn unique_queries(&self) -> usize {
        let pending =
            self.backing.map_or(0, |b| b.lock().expect("backing cache poisoned").pending());
        self.cache.len() + pending
    }

    /// Total queries posed through this runner, including cache hits.
    pub fn total_queries(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether the budget ran out (or the run was cancelled) at some point.
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Whether cancellation was observed by this run.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventLog;
    use crate::FnOracle;
    use std::sync::atomic::AtomicUsize;

    fn spec<'a>(bytes: &'a [u8]) -> CheckSpec<'a> {
        CheckSpec::new(&[bytes])
    }

    fn runner<'s>(
        oracle: &'s dyn Oracle,
        cache: &'s ShardedCache,
        max_queries: Option<usize>,
        time_limit: Option<Duration>,
        workers: usize,
    ) -> QueryRunner<'s> {
        QueryRunner::new(
            oracle,
            cache,
            RunnerOptions { max_queries, time_limit, workers, ..RunnerOptions::default() },
        )
    }

    #[test]
    fn caches_and_counts() {
        let o = FnOracle::new(|i: &[u8]| i.len() < 2);
        let cache = ShardedCache::new();
        let r = runner(&o, &cache, None, None, 1);
        assert!(r.accepts(b"a"));
        assert!(r.accepts(b"a"));
        assert!(!r.accepts(b"ab"));
        assert_eq!(r.unique_queries(), 2);
        assert_eq!(r.total_queries(), 3);
        assert!(!r.exhausted());
    }

    #[test]
    fn budget_exhaustion_fails_closed() {
        let o = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let r = runner(&o, &cache, Some(2), None, 1);
        assert!(r.accepts(b"1"));
        assert!(r.accepts(b"2"));
        // Third distinct query exceeds the budget: rejected.
        assert!(!r.accepts(b"3"));
        assert!(r.exhausted());
        // Cached answers stay available.
        assert!(r.accepts(b"1"));
        // Unbudgeted path still works.
        assert!(r.accepts_unbudgeted(b"4"));
    }

    #[test]
    fn unbudgeted_queries_do_not_consume_budget() {
        // Regression: the seed implementation compared the budget against
        // the *cache size*, so seed validation (unbudgeted) silently ate
        // distinct-query budget.
        let o = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let r = runner(&o, &cache, Some(2), None, 1);
        assert!(r.accepts_unbudgeted(b"seed-1"));
        assert!(r.accepts_unbudgeted(b"seed-2"));
        assert!(r.accepts_unbudgeted(b"seed-3"));
        // The full budget of 2 distinct budgeted queries remains.
        assert!(r.accepts(b"q1"));
        assert!(r.accepts(b"q2"));
        assert!(!r.accepts(b"q3"));
        assert!(r.exhausted());
        assert_eq!(r.unique_queries(), 5, "cache still holds seeds + budgeted");
    }

    #[test]
    fn time_limit_expires() {
        let o = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let r = runner(&o, &cache, None, Some(Duration::from_nanos(1)), 1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!r.accepts(b"x"));
        assert!(r.exhausted());
        assert!(!r.was_cancelled());
    }

    #[test]
    fn cancellation_fails_closed_and_reports() {
        let calls = AtomicUsize::new(0);
        let o = FnOracle::new(|_: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        });
        let cache = ShardedCache::new();
        let token = CancelToken::new();
        let log = EventLog::new();
        let r = QueryRunner::new(
            &o,
            &cache,
            RunnerOptions {
                cancel: Some(&token),
                observer: Some(&log),
                ..RunnerOptions::default()
            },
        );
        assert!(r.accepts(b"before"));
        token.cancel();
        assert!(!r.accepts(b"after"), "cancelled runs answer false");
        assert!(!r.accepts(b"again"));
        assert!(r.exhausted(), "cancellation shares the fail-closed path");
        assert!(r.was_cancelled());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no oracle calls after cancel");
        // Cached answers stay available, unbudgeted validation still works.
        assert!(r.accepts(b"before"));
        assert!(r.accepts_unbudgeted(b"seed"));
        let cancels = log.events().iter().filter(|e| matches!(e, SynthEvent::Cancelled)).count();
        assert_eq!(cancels, 1, "Cancelled is emitted exactly once");
    }

    #[test]
    fn cancellation_mid_batch_stops_querying() {
        let calls = AtomicUsize::new(0);
        let token = CancelToken::new();
        let token_in_oracle = token.clone();
        let o = FnOracle::new(move |_: &[u8]| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= 3 {
                token_in_oracle.cancel();
            }
            true
        });
        let cache = ShardedCache::new();
        let r = QueryRunner::new(
            &o,
            &cache,
            RunnerOptions { cancel: Some(&token), ..RunnerOptions::default() },
        );
        let inputs: Vec<Vec<u8>> = (0..10u8).map(|b| vec![b]).collect();
        let specs: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        let verdicts = r.accepts_batch(&specs);
        assert!(r.was_cancelled());
        assert!(verdicts.iter().any(|&v| !v), "skipped misses answer false");
        assert!(r.unique_queries() < 10, "skipped misses are not cached");
    }

    #[test]
    fn batch_results_preserve_order_and_dedup() {
        let calls = AtomicUsize::new(0);
        let o = FnOracle::new(|i: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            i.len().is_multiple_of(2)
        });
        for workers in [1, 4] {
            calls.store(0, Ordering::Relaxed);
            let cache = ShardedCache::new();
            let r = runner(&o, &cache, None, None, workers);
            let checks =
                [spec(b"aa"), spec(b"b"), spec(b"aa"), spec(b"cccc"), spec(b"b"), spec(b"")];
            let verdicts = r.accepts_batch(&checks);
            assert_eq!(verdicts, vec![true, false, true, true, false, true]);
            assert_eq!(r.unique_queries(), 4, "workers={workers}");
            assert_eq!(calls.load(Ordering::Relaxed), 4, "duplicates reach oracle once");
            assert_eq!(r.total_queries(), 6);
        }
    }

    #[test]
    fn batch_emits_query_batch_event() {
        let o = FnOracle::new(|i: &[u8]| i.len().is_multiple_of(2));
        let cache = ShardedCache::new();
        cache.insert(b"hit".to_vec(), false);
        let log = EventLog::new();
        let r = QueryRunner::new(
            &o,
            &cache,
            RunnerOptions { observer: Some(&log), ..RunnerOptions::default() },
        );
        let checks = [spec(b"hit"), spec(b"miss"), spec(b"miss"), spec(b"other")];
        r.accepts_batch(&checks);
        assert_eq!(log.events(), vec![SynthEvent::QueryBatch { checks: 4, cached: 1, posed: 2 }]);
    }

    #[test]
    fn batch_mixed_segments_concatenate() {
        let o = FnOracle::new(|i: &[u8]| i == b"<a>hi</a>");
        let cache = ShardedCache::new();
        let r = runner(&o, &cache, None, None, 2);
        let (pre, mid, post) = (&b"<a>"[..], &b"hi"[..], &b"</a>"[..]);
        let checks = [CheckSpec::new(&[pre, mid, post]), CheckSpec::new(&[pre, post])];
        assert_eq!(r.accepts_batch(&checks), vec![true, false]);
        // The same strings by another segmentation hit the cache.
        let checks2 = [spec(b"<a>hi</a>"), spec(b"<a></a>")];
        assert_eq!(r.accepts_batch(&checks2), vec![true, false]);
        assert_eq!(r.unique_queries(), 2);
    }

    #[test]
    fn batch_budget_answers_false_beyond_limit() {
        let o = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let log = EventLog::new();
        let r = QueryRunner::new(
            &o,
            &cache,
            RunnerOptions {
                max_queries: Some(2),
                workers: 4,
                observer: Some(&log),
                ..RunnerOptions::default()
            },
        );
        let checks = [spec(b"1"), spec(b"2"), spec(b"3"), spec(b"1")];
        let verdicts = r.accepts_batch(&checks);
        // First two distinct checks fit the budget; the third fails closed;
        // the duplicate of "1" is answered from the batch's dedup set.
        assert_eq!(verdicts, vec![true, true, false, true]);
        assert!(r.exhausted());
        assert_eq!(r.unique_queries(), 2);
        let exhaustions =
            log.events().iter().filter(|e| matches!(e, SynthEvent::BudgetExhausted)).count();
        assert_eq!(exhaustions, 1, "BudgetExhausted is emitted exactly once");
    }

    #[test]
    fn deadline_expiring_mid_batch_stops_querying() {
        // Regression: the deadline must be honored between queries *inside*
        // a batch, not just at reservation time — a slow oracle must not
        // run an hour-long batch past a 30 ms limit.
        let calls = AtomicUsize::new(0);
        let o = FnOracle::new(|_: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(20));
            true
        });
        let cache = ShardedCache::new();
        let r = runner(&o, &cache, None, Some(Duration::from_millis(30)), 1);
        let inputs: Vec<Vec<u8>> = (0..10u8).map(|b| vec![b]).collect();
        let specs: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        let verdicts = r.accepts_batch(&specs);
        assert!(r.exhausted());
        assert!(calls.load(Ordering::Relaxed) < 10, "deadline did not stop the batch");
        // Skipped misses answer false and are not poisoned into the cache.
        assert!(verdicts.iter().any(|&v| !v));
        assert!(r.unique_queries() < 10);
    }

    #[test]
    fn batch_agrees_with_sequential_accepts() {
        let o = FnOracle::new(|i: &[u8]| i.iter().all(|&b| b == b'x'));
        let seq_cache = ShardedCache::new();
        let par_cache = ShardedCache::new();
        let seq = runner(&o, &seq_cache, None, None, 1);
        let par = runner(&o, &par_cache, None, None, 8);
        let inputs: Vec<Vec<u8>> =
            (0..64).map(|n| std::iter::repeat_n(b'x', n % 7).collect()).collect();
        let specs: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        let par_verdicts = par.accepts_batch(&specs);
        let seq_verdicts: Vec<bool> = inputs.iter().map(|i| seq.accepts(i)).collect();
        assert_eq!(par_verdicts, seq_verdicts);
        assert_eq!(par.unique_queries(), seq.unique_queries());
    }

    #[test]
    fn warm_cache_answers_whole_batch_without_oracle() {
        // The session-persistence property at the runner level: a cache
        // pre-populated with every check answers the batch with zero
        // oracle calls and zero new unique queries.
        let calls = AtomicUsize::new(0);
        let o = FnOracle::new(|_: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        });
        let cache = ShardedCache::new();
        cache.insert(b"p".to_vec(), true);
        cache.insert(b"q".to_vec(), false);
        let r = runner(&o, &cache, Some(0), None, 2);
        // Budget of zero: any miss would fail, proving these are all hits.
        assert_eq!(r.accepts_batch(&[spec(b"p"), spec(b"q"), spec(b"p")]), vec![true, false, true]);
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert!(!r.exhausted());
        assert_eq!(r.unique_queries(), 2);
    }

    #[test]
    fn runner_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<QueryRunner<'static>>();
    }

    /// In-process stand-in for a natively batching oracle (the pooled
    /// process oracle without the processes): records how misses arrive.
    struct BatchingOracle {
        batch_calls: AtomicUsize,
        single_calls: AtomicUsize,
        largest_batch: AtomicUsize,
    }

    impl BatchingOracle {
        fn new() -> Self {
            BatchingOracle {
                batch_calls: AtomicUsize::new(0),
                single_calls: AtomicUsize::new(0),
                largest_batch: AtomicUsize::new(0),
            }
        }
    }

    impl Oracle for BatchingOracle {
        fn accepts(&self, input: &[u8]) -> bool {
            self.single_calls.fetch_add(1, Ordering::Relaxed);
            input.len().is_multiple_of(2)
        }

        fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
            self.batch_calls.fetch_add(1, Ordering::Relaxed);
            self.largest_batch.fetch_max(inputs.len(), Ordering::Relaxed);
            inputs.iter().map(|i| Some(i.len().is_multiple_of(2))).collect()
        }

        fn native_batching(&self) -> bool {
            true
        }
    }

    #[test]
    fn native_batching_oracle_receives_whole_miss_sets() {
        let o = BatchingOracle::new();
        let cache = ShardedCache::new();
        cache.insert(b"zz".to_vec(), true); // a hit that must not be posed
        let r = runner(&o, &cache, None, None, 8);
        let inputs: Vec<Vec<u8>> = (0..40u8).map(|b| vec![b'x'; b as usize % 5]).collect();
        let mut checks: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        checks.push(spec(b"zz"));
        let verdicts = r.accepts_batch(&checks);
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(verdicts[i], input.len() % 2 == 0, "index {i}");
        }
        assert!(*verdicts.last().unwrap(), "cache hit answered");
        // The distinct misses (lengths 0..5 → 5 distinct strings) arrived
        // as ONE batch call, not per-query or per-thread.
        assert_eq!(o.batch_calls.load(Ordering::Relaxed), 1);
        assert_eq!(o.largest_batch.load(Ordering::Relaxed), 5);
        assert_eq!(o.single_calls.load(Ordering::Relaxed), 0);
        assert_eq!(r.unique_queries(), 6);
    }

    #[test]
    fn native_batching_matches_steal_dispatch_results() {
        // The same miss set through both strategies must produce the same
        // verdicts and the same cached set.
        let native = BatchingOracle::new();
        let plain = FnOracle::new(|i: &[u8]| i.len().is_multiple_of(2));
        let native_cache = ShardedCache::new();
        let plain_cache = ShardedCache::new();
        let rn = runner(&native, &native_cache, None, None, 4);
        let rp = runner(&plain, &plain_cache, None, None, 4);
        let inputs: Vec<Vec<u8>> = (0..64u16).map(|b| vec![b'y'; (b % 9) as usize]).collect();
        let checks: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        assert_eq!(rn.accepts_batch(&checks), rp.accepts_batch(&checks));
        assert_eq!(rn.unique_queries(), rp.unique_queries());
        assert_eq!(rn.total_queries(), rp.total_queries());
    }

    #[test]
    fn cancellation_skips_remaining_native_sub_batches() {
        // A cancel flipped during the batch is honored at the next
        // sub-batch boundary: remaining misses answer false and are not
        // cached.
        struct CancellingOracle {
            token: CancelToken,
        }
        impl Oracle for CancellingOracle {
            fn accepts(&self, _input: &[u8]) -> bool {
                true
            }
            fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
                self.token.cancel();
                inputs.iter().map(|_| Some(true)).collect()
            }
            fn native_batching(&self) -> bool {
                true
            }
        }
        let token = CancelToken::new();
        let o = CancellingOracle { token: token.clone() };
        let cache = ShardedCache::new();
        let r = QueryRunner::new(
            &o,
            &cache,
            RunnerOptions { cancel: Some(&token), ..RunnerOptions::default() },
        );
        // More misses than one sub-batch so at least one boundary exists.
        let inputs: Vec<Vec<u8>> = (0..(super::NATIVE_DISPATCH_SUB_BATCH + 10) as u32)
            .map(|b| b.to_le_bytes().to_vec())
            .collect();
        let specs: Vec<CheckSpec<'_>> = inputs.iter().map(|i| spec(i)).collect();
        let verdicts = r.accepts_batch(&specs);
        assert!(r.was_cancelled());
        assert_eq!(
            verdicts.iter().filter(|&&v| v).count(),
            super::NATIVE_DISPATCH_SUB_BATCH,
            "exactly the first sub-batch was answered"
        );
        assert_eq!(
            r.unique_queries(),
            super::NATIVE_DISPATCH_SUB_BATCH,
            "skipped misses not cached"
        );
    }

    #[test]
    fn check_spec_write_into_reuses_buffer() {
        let ctx = Context { before: b"<a>".to_vec(), after: b"</a>".to_vec() };
        let s = CheckSpec::wrapped(&ctx, &[b"h", b"i"]);
        let mut buf = Vec::new();
        s.write_into(&mut buf);
        assert_eq!(buf, b"<a>hi</a>");
        let cap = buf.capacity();
        buf.clear();
        s.write_into(&mut buf);
        assert_eq!(buf, b"<a>hi</a>");
        assert_eq!(buf.capacity(), cap, "no reallocation on reuse");
    }
}
