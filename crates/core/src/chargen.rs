//! Character generalization (Section 6.2 of the paper).
//!
//! After phase one, every terminal byte in the synthesized regular
//! expression is a literal from the seed input. This phase widens each
//! terminal position into a byte class: for terminal string `α = σ1…σk`
//! with context `(γ, δ)` and candidate byte `σ ≠ σi`, the check
//! `γ·σ1…σi−1·σ·σi+1…σk·δ` is posed to the oracle; accepted bytes join the
//! class at position `i`. Each candidate is considered exactly once.
//!
//! A `Const` node may carry several contexts (e.g. an alternation branch is
//! valid both with and without its sibling); a byte is accepted only if the
//! check passes in *every* context, which matches the two example checks
//! the paper gives for generalizing `h` (`<a>ai</a>` and `<a>a</a>`).

use crate::runner::{CheckSpec, QueryRunner};
use crate::tree::Node;

/// Widens every terminal position of `tree` against `test_bytes`.
///
/// The per-byte probes are independent, so each terminal run's full probe
/// set — every `(position, candidate byte, context)` triple — is described
/// as borrowed [`CheckSpec`] segments and posed as one batch, which the
/// [`QueryRunner`] dedups and fans out across its worker pool. A byte joins
/// the class at a position only if its probe is accepted in *every*
/// context; verdicts are folded sequentially, so the result is independent
/// of worker count.
///
/// Returns the number of (position, byte) pairs accepted.
pub(crate) fn generalize_chars(
    tree: &mut Node,
    runner: &QueryRunner<'_>,
    test_bytes: &[u8],
) -> usize {
    let mut accepted = 0usize;
    tree.visit_consts_mut(&mut |c| {
        // One probe per context per candidate; `probes` remembers how many
        // consecutive verdicts belong to each (position, byte) pair.
        let mut checks: Vec<CheckSpec<'_>> = Vec::new();
        let mut probes: Vec<(usize, u8)> = Vec::new();
        for i in 0..c.original.len() {
            for (k, &sigma) in test_bytes.iter().enumerate() {
                if sigma == c.original[i] || c.classes[i].contains(sigma) {
                    continue;
                }
                for ctx in &c.contexts {
                    checks.push(CheckSpec::new(&[
                        &ctx.before,
                        &c.original[..i],
                        &test_bytes[k..k + 1],
                        &c.original[i + 1..],
                        &ctx.after,
                    ]));
                }
                probes.push((i, sigma));
            }
        }
        let verdicts = runner.accepts_batch(&checks);
        let per_probe = c.contexts.len();
        for (p, &(i, sigma)) in probes.iter().enumerate() {
            if verdicts[p * per_probe..(p + 1) * per_probe].iter().all(|&v| v) {
                c.classes[i].insert(sigma);
                accepted += 1;
            }
        }
    });
    accepted
}

/// The default test alphabet: printable ASCII plus tab and newline.
pub(crate) fn default_test_bytes() -> Vec<u8> {
    let mut v: Vec<u8> = (0x20..=0x7eu8).collect();
    v.push(b'\t');
    v.push(b'\n');
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::phase1::Phase1;
    use crate::runner::RunnerOptions;
    use crate::testing::xml_like;
    use crate::{FnOracle, Oracle};

    fn test_runner<'s>(oracle: &'s dyn Oracle, cache: &'s ShardedCache) -> QueryRunner<'s> {
        QueryRunner::new(oracle, cache, RunnerOptions { workers: 2, ..RunnerOptions::default() })
    }

    #[test]
    fn running_example_generalizes_letters_not_structure() {
        // Section 6.2: h and i generalize to a..z; the tag bytes < a > /
        // do not generalize.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut tree = p1.generalize_seed(b"<a>hi</a>");
        generalize_chars(&mut tree, &runner, &default_test_bytes());
        let r = tree.to_regex();
        // Letters widened.
        assert!(r.is_match(b"<a>zz</a>"));
        assert!(r.is_match(b"<a>qrs</a>"));
        // Structure intact.
        assert!(!r.is_match(b"<b>hh</b>"));
        assert!(!r.is_match(b"aa>hh</a>"));
        assert!(!r.is_match(b"<a>h h</a>")); // space not in a..z
    }

    #[test]
    fn digits_generalize_in_digit_language() {
        // L = nonempty digit strings.
        let oracle = FnOracle::new(|i: &[u8]| !i.is_empty() && i.iter().all(u8::is_ascii_digit));
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut tree = p1.generalize_seed(b"7");
        generalize_chars(&mut tree, &runner, &default_test_bytes());
        let r = tree.to_regex();
        for d in b'0'..=b'9' {
            assert!(r.is_match(&[d]), "digit {}", d as char);
        }
        assert!(!r.is_match(b"a"));
    }

    #[test]
    fn counts_accepted_pairs() {
        let oracle = FnOracle::new(|i: &[u8]| i.len() == 1 && i[0].is_ascii_lowercase());
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut tree = p1.generalize_seed(b"m");
        let n = generalize_chars(&mut tree, &runner, &default_test_bytes());
        // 25 other lowercase letters accepted... unless phase 1 starred the
        // single letter; in this language "mm" is invalid so no star forms.
        assert_eq!(n, 25);
    }

    #[test]
    fn respects_budget() {
        let oracle = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let runner = QueryRunner::new(
            &oracle,
            &cache,
            RunnerOptions { max_queries: Some(0), workers: 2, ..RunnerOptions::default() },
        );
        let mut p1 = Phase1::new(&runner, 0);
        let mut tree = p1.generalize_seed(b"q");
        let n = generalize_chars(&mut tree, &runner, &default_test_bytes());
        assert_eq!(n, 0, "no budget, no generalization");
    }
}
