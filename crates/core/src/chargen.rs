//! Character generalization (Section 6.2 of the paper).
//!
//! After phase one, every terminal byte in the synthesized regular
//! expression is a literal from the seed input. This phase widens each
//! terminal position into a byte class: for terminal string `α = σ1…σk`
//! with context `(γ, δ)` and candidate byte `σ ≠ σi`, the check
//! `γ·σ1…σi−1·σ·σi+1…σk·δ` is posed to the oracle; accepted bytes join the
//! class at position `i`. Each candidate is considered exactly once.
//!
//! A `Const` node may carry several contexts (e.g. an alternation branch is
//! valid both with and without its sibling); a byte is accepted only if the
//! check passes in *every* context, which matches the two example checks
//! the paper gives for generalizing `h` (`<a>ai</a>` and `<a>a</a>`).
//!
//! # Batch aggregation
//!
//! Every probe of this phase — each `(terminal, position, candidate byte,
//! context)` quadruple, across *all* terminals of *all* newly generalized
//! trees — is independent of every other, so the phase is split into a
//! plan/apply pair around one aggregated membership batch:
//!
//! * [`plan_char_probes`] walks the trees immutably and appends every
//!   probe's [`CheckSpec`] to a shared check list (the session appends
//!   phase two's merge checks to the same list, see `session.rs`);
//! * [`apply_char_probes`] walks the trees mutably and folds the verdicts
//!   back into the byte classes, in planning order — so the result is
//!   independent of worker count and of how the batch was scheduled.
//!
//! The seed implementation posed one small batch per terminal, draining
//! the worker pool between terminals; aggregation keeps the pool saturated
//! for the whole phase (and, combined with the phase-two merge checks, for
//! the back half of the pipeline).

use crate::runner::{CheckSpec, QueryRunner};
use crate::tree::Node;

/// One planned `(position, candidate byte)` widening probe of one terminal.
///
/// Deliberately owns no borrowed data: the plan must outlive the check
/// list (which borrows the trees immutably) so the verdicts can be applied
/// through a *mutable* walk of the same trees.
#[derive(Debug, Clone, Copy)]
struct CharProbe {
    /// Index of the tree within the planned slice.
    tree: usize,
    /// Ordinal of the const within the tree, in visit order.
    const_ordinal: usize,
    /// Byte position within the terminal.
    position: usize,
    /// Candidate byte.
    byte: u8,
    /// Number of consecutive verdicts (one per context) this probe owns.
    contexts: usize,
}

/// The bookkeeping side of an aggregated character-generalization batch:
/// maps a contiguous slice of batch verdicts back onto tree terminals.
#[derive(Debug, Default)]
pub(crate) struct CharGenPlan {
    probes: Vec<CharProbe>,
    /// Number of checks this plan appended to the shared check list.
    pub checks_len: usize,
}

/// Plans every widening probe for every terminal of `trees` against
/// `test_bytes`, appending the checks to `checks` (one per context per
/// candidate) and returning the bookkeeping needed to apply the verdicts.
pub(crate) fn plan_char_probes<'t>(
    trees: &'t [Node],
    test_bytes: &'t [u8],
    checks: &mut Vec<CheckSpec<'t>>,
) -> CharGenPlan {
    let mut plan = CharGenPlan::default();
    let start = checks.len();
    for (t, tree) in trees.iter().enumerate() {
        let mut ordinal = 0usize;
        tree.visit_consts(&mut |c| {
            for i in 0..c.original.len() {
                for (k, &sigma) in test_bytes.iter().enumerate() {
                    if sigma == c.original[i] || c.classes[i].contains(sigma) {
                        continue;
                    }
                    for ctx in &c.contexts {
                        checks.push(CheckSpec::new(&[
                            &ctx.before,
                            &c.original[..i],
                            &test_bytes[k..k + 1],
                            &c.original[i + 1..],
                            &ctx.after,
                        ]));
                    }
                    plan.probes.push(CharProbe {
                        tree: t,
                        const_ordinal: ordinal,
                        position: i,
                        byte: sigma,
                        contexts: c.contexts.len(),
                    });
                }
            }
            ordinal += 1;
        });
    }
    plan.checks_len = checks.len() - start;
    plan
}

/// Folds the verdict slice of an aggregated batch back into the byte
/// classes of `trees` (the same slice that was planned). A byte joins the
/// class at a position only if its probe was accepted in *every* context.
/// Verdicts are folded sequentially in planning order, so the result is
/// independent of worker count.
///
/// Returns the number of (position, byte) pairs accepted.
pub(crate) fn apply_char_probes(
    trees: &mut [Node],
    plan: &CharGenPlan,
    verdicts: &[bool],
) -> usize {
    debug_assert_eq!(verdicts.len(), plan.checks_len);
    let mut accepted = 0usize;
    let mut next_probe = 0usize;
    let mut verdict_cursor = 0usize;
    for (t, tree) in trees.iter_mut().enumerate() {
        let mut ordinal = 0usize;
        tree.visit_consts_mut(&mut |c| {
            while let Some(p) = plan.probes.get(next_probe) {
                if p.tree != t || p.const_ordinal != ordinal {
                    break;
                }
                let vs = &verdicts[verdict_cursor..verdict_cursor + p.contexts];
                verdict_cursor += p.contexts;
                next_probe += 1;
                if vs.iter().all(|&v| v) {
                    c.classes[p.position].insert(p.byte);
                    accepted += 1;
                }
            }
            ordinal += 1;
        });
    }
    debug_assert_eq!(next_probe, plan.probes.len(), "every planned probe applied");
    accepted
}

/// Widens every terminal position of `trees` against `test_bytes` as one
/// self-contained aggregated batch (plan → pose → apply).
///
/// The session drives the plan/apply halves directly so the batch can also
/// carry phase two's merge checks; this wrapper serves callers that run the
/// phase in isolation (tests).
///
/// Returns the number of (position, byte) pairs accepted.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn generalize_chars(
    trees: &mut [Node],
    runner: &QueryRunner<'_>,
    test_bytes: &[u8],
) -> usize {
    let mut checks: Vec<CheckSpec<'_>> = Vec::new();
    let plan = plan_char_probes(trees, test_bytes, &mut checks);
    let verdicts = runner.accepts_batch(&checks);
    drop(checks);
    apply_char_probes(trees, &plan, &verdicts)
}

/// The default test alphabet: printable ASCII plus tab and newline.
pub(crate) fn default_test_bytes() -> Vec<u8> {
    let mut v: Vec<u8> = (0x20..=0x7eu8).collect();
    v.push(b'\t');
    v.push(b'\n');
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::phase1::Phase1;
    use crate::runner::RunnerOptions;
    use crate::testing::xml_like;
    use crate::{FnOracle, Oracle};

    fn test_runner<'s>(oracle: &'s dyn Oracle, cache: &'s ShardedCache) -> QueryRunner<'s> {
        QueryRunner::new(oracle, cache, RunnerOptions { workers: 2, ..RunnerOptions::default() })
    }

    #[test]
    fn running_example_generalizes_letters_not_structure() {
        // Section 6.2: h and i generalize to a..z; the tag bytes < a > /
        // do not generalize.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"<a>hi</a>")];
        generalize_chars(&mut trees, &runner, &default_test_bytes());
        let r = trees[0].to_regex();
        // Letters widened.
        assert!(r.is_match(b"<a>zz</a>"));
        assert!(r.is_match(b"<a>qrs</a>"));
        // Structure intact.
        assert!(!r.is_match(b"<b>hh</b>"));
        assert!(!r.is_match(b"aa>hh</a>"));
        assert!(!r.is_match(b"<a>h h</a>")); // space not in a..z
    }

    #[test]
    fn digits_generalize_in_digit_language() {
        // L = nonempty digit strings.
        let oracle = FnOracle::new(|i: &[u8]| !i.is_empty() && i.iter().all(u8::is_ascii_digit));
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"7")];
        generalize_chars(&mut trees, &runner, &default_test_bytes());
        let r = trees[0].to_regex();
        for d in b'0'..=b'9' {
            assert!(r.is_match(&[d]), "digit {}", d as char);
        }
        assert!(!r.is_match(b"a"));
    }

    #[test]
    fn counts_accepted_pairs() {
        let oracle = FnOracle::new(|i: &[u8]| i.len() == 1 && i[0].is_ascii_lowercase());
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"m")];
        let n = generalize_chars(&mut trees, &runner, &default_test_bytes());
        // 25 other lowercase letters accepted... unless phase 1 starred the
        // single letter; in this language "mm" is invalid so no star forms.
        assert_eq!(n, 25);
    }

    #[test]
    fn aggregates_across_trees_in_one_batch() {
        // Two single-letter seeds in one plan: the aggregated batch answers
        // both trees' probes, and applying distributes verdicts per tree.
        let oracle = FnOracle::new(|i: &[u8]| i.len() == 1 && i[0].is_ascii_lowercase());
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"m"), p1.generalize_seed(b"q")];
        let n = generalize_chars(&mut trees, &runner, &default_test_bytes());
        // Each tree widens to the full lowercase class (25 accepted each).
        assert_eq!(n, 50);
        for tree in &trees {
            let r = tree.to_regex();
            assert!(r.is_match(b"a"));
            assert!(!r.is_match(b"A"));
        }
    }

    #[test]
    fn respects_budget() {
        let oracle = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let runner = QueryRunner::new(
            &oracle,
            &cache,
            RunnerOptions { max_queries: Some(0), workers: 2, ..RunnerOptions::default() },
        );
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"q")];
        let n = generalize_chars(&mut trees, &runner, &default_test_bytes());
        assert_eq!(n, 0, "no budget, no generalization");
    }
}
