//! Character generalization (Section 6.2 of the paper).
//!
//! After phase one, every terminal byte in the synthesized regular
//! expression is a literal from the seed input. This phase widens each
//! terminal position into a byte class: for terminal string `α = σ1…σk`
//! with context `(γ, δ)` and candidate byte `σ ≠ σi`, the check
//! `γ·σ1…σi−1·σ·σi+1…σk·δ` is posed to the oracle; accepted bytes join the
//! class at position `i`. Each candidate is considered exactly once.
//!
//! A `Const` node may carry several contexts (e.g. an alternation branch is
//! valid both with and without its sibling); a byte is accepted only if the
//! check passes in *every* context, which matches the two example checks
//! the paper gives for generalizing `h` (`<a>ai</a>` and `<a>a</a>`).
//!
//! # Batch aggregation
//!
//! Every probe of this phase — each `(terminal, position, candidate byte,
//! context)` quadruple, across *all* terminals of *all* newly generalized
//! trees — is independent of every other, so the phase is split into a
//! plan/apply pair around one aggregated membership batch:
//!
//! * [`plan_char_probes`] walks the trees immutably and appends every
//!   probe's [`CheckSpec`] to a shared check list (the session appends
//!   phase two's merge checks to the same list, see `session.rs`);
//! * [`apply_char_probes`] walks the trees mutably and folds the verdicts
//!   back into the byte classes, in planning order — so the result is
//!   independent of worker count and of how the batch was scheduled.
//!
//! The seed implementation posed one small batch per terminal, draining
//! the worker pool between terminals; aggregation keeps the pool saturated
//! for the whole phase (and, combined with the phase-two merge checks, for
//! the back half of the pipeline).
//!
//! # The query-reduction layer (staged planning)
//!
//! The one-shot plan above poses every `(position, byte, context)` check
//! unconditionally — including checks whose verdict is already determined.
//! When [`GladeConfig::memoize_byte_classes`](crate::GladeConfig) is on
//! (the default), the session drives [`StagedChargen`] instead, which
//! elides three kinds of provably-redundant probes *before* they reach the
//! query engine:
//!
//! * **Byte-class memoization.** A terminal's final classes are a pure
//!   function of its *memo key* — the 128-bit FNV-1a fingerprint of the
//!   length-prefixed `(original bytes, every context's (γ, δ), candidate
//!   alphabet)` tuple; see `memo::memo_key`. Terminals whose key matches a
//!   session [`ByteClassMemo`](crate::memo::ByteClassMemo) entry (learned
//!   by an earlier run or loaded from a `glade-cache v3` snapshot) adopt
//!   the stored classes without posing a single probe; terminals sharing a
//!   key *within* one plan are generalized once, with the siblings copying
//!   the representative's result.
//! * **Context short-circuiting.** A byte joins a class only if accepted
//!   in *every* context, and conjunction short-circuits: probes are posed
//!   one context per wave, and a candidate rejected in context `k` never
//!   poses its checks for contexts `k+1..` — the exact strings the
//!   one-shot plan would have paid distinct queries for.
//! * **Check canonicalization + dedup.** Distinct `(terminal, position,
//!   byte, context)` quadruples can assemble byte-identical query strings;
//!   within a wave these collapse to one posed check whose verdict fans
//!   back out to every owner, and checks already answered by the session
//!   cache are folded at plan time without reaching the engine at all.
//!
//! All three elisions are *exact*: the accepted byte set — and therefore
//! the synthesized grammar — is byte-identical to the one-shot plan's for
//! a deterministic oracle. The count of avoided checks is surfaced as
//! [`SynthesisStats::probes_elided`](crate::SynthesisStats::probes_elided)
//! and the [`SynthEvent::ProbesElided`](crate::SynthEvent::ProbesElided)
//! event.

use crate::cache::{hash_query, ShardedCache};
use crate::memo::{memo_key, ByteClassMemo};
use crate::runner::{CheckSpec, QueryRunner};
use crate::tree::{ConstNode, Node};
use glade_grammar::CharClass;
use std::collections::HashMap;

/// One planned `(position, candidate byte)` widening probe of one terminal.
///
/// Deliberately owns no borrowed data: the plan must outlive the check
/// list (which borrows the trees immutably) so the verdicts can be applied
/// through a *mutable* walk of the same trees.
#[derive(Debug, Clone, Copy)]
struct CharProbe {
    /// Index of the tree within the planned slice.
    tree: usize,
    /// Ordinal of the const within the tree, in visit order.
    const_ordinal: usize,
    /// Byte position within the terminal.
    position: usize,
    /// Candidate byte.
    byte: u8,
    /// Number of consecutive verdicts (one per context) this probe owns.
    contexts: usize,
}

/// The bookkeeping side of an aggregated character-generalization batch:
/// maps a contiguous slice of batch verdicts back onto tree terminals.
#[derive(Debug, Default)]
pub(crate) struct CharGenPlan {
    probes: Vec<CharProbe>,
    /// Number of checks this plan appended to the shared check list.
    pub checks_len: usize,
}

/// Plans every widening probe for every terminal of `trees` against
/// `test_bytes`, appending the checks to `checks` (one per context per
/// candidate) and returning the bookkeeping needed to apply the verdicts.
pub(crate) fn plan_char_probes<'t>(
    trees: &'t [Node],
    test_bytes: &'t [u8],
    checks: &mut Vec<CheckSpec<'t>>,
) -> CharGenPlan {
    let mut plan = CharGenPlan::default();
    let start = checks.len();
    for (t, tree) in trees.iter().enumerate() {
        let mut ordinal = 0usize;
        tree.visit_consts(&mut |c| {
            for i in 0..c.original.len() {
                for (k, &sigma) in test_bytes.iter().enumerate() {
                    if sigma == c.original[i] || c.classes[i].contains(sigma) {
                        continue;
                    }
                    for ctx in &c.contexts {
                        checks.push(CheckSpec::new(&[
                            &ctx.before,
                            &c.original[..i],
                            &test_bytes[k..k + 1],
                            &c.original[i + 1..],
                            &ctx.after,
                        ]));
                    }
                    plan.probes.push(CharProbe {
                        tree: t,
                        const_ordinal: ordinal,
                        position: i,
                        byte: sigma,
                        contexts: c.contexts.len(),
                    });
                }
            }
            ordinal += 1;
        });
    }
    plan.checks_len = checks.len() - start;
    plan
}

/// Folds the verdict slice of an aggregated batch back into the byte
/// classes of `trees` (the same slice that was planned). A byte joins the
/// class at a position only if its probe was accepted in *every* context.
/// Verdicts are folded sequentially in planning order, so the result is
/// independent of worker count.
///
/// Returns the number of (position, byte) pairs accepted.
pub(crate) fn apply_char_probes(
    trees: &mut [Node],
    plan: &CharGenPlan,
    verdicts: &[bool],
) -> usize {
    debug_assert_eq!(verdicts.len(), plan.checks_len);
    let mut accepted = 0usize;
    let mut next_probe = 0usize;
    let mut verdict_cursor = 0usize;
    for (t, tree) in trees.iter_mut().enumerate() {
        let mut ordinal = 0usize;
        tree.visit_consts_mut(&mut |c| {
            while let Some(p) = plan.probes.get(next_probe) {
                if p.tree != t || p.const_ordinal != ordinal {
                    break;
                }
                let vs = &verdicts[verdict_cursor..verdict_cursor + p.contexts];
                verdict_cursor += p.contexts;
                next_probe += 1;
                if vs.iter().all(|&v| v) {
                    c.classes[p.position].insert(p.byte);
                    accepted += 1;
                }
            }
            ordinal += 1;
        });
    }
    debug_assert_eq!(next_probe, plan.probes.len(), "every planned probe applied");
    accepted
}

/// Widens every terminal position of `trees` against `test_bytes` as one
/// self-contained aggregated batch (plan → pose → apply).
///
/// The session drives the plan/apply halves directly so the batch can also
/// carry phase two's merge checks; this wrapper serves callers that run the
/// phase in isolation (tests).
///
/// Returns the number of (position, byte) pairs accepted.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn generalize_chars(
    trees: &mut [Node],
    runner: &QueryRunner<'_>,
    test_bytes: &[u8],
) -> usize {
    let mut checks: Vec<CheckSpec<'_>> = Vec::new();
    let plan = plan_char_probes(trees, test_bytes, &mut checks);
    let verdicts = runner.accepts_batch(&checks);
    drop(checks);
    apply_char_probes(trees, &plan, &verdicts)
}

/// The default test alphabet: printable ASCII plus tab and newline.
pub(crate) fn default_test_bytes() -> Vec<u8> {
    let mut v: Vec<u8> = (0x20..=0x7eu8).collect();
    v.push(b'\t');
    v.push(b'\n');
    v
}

/// How one planned terminal obtains its byte classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConstSource {
    /// Generalized by live probes (the terminal is its key's representative).
    Probed,
    /// Adopted wholesale from the session memo table.
    FromMemo,
    /// Copies the final classes of the representative const at this index.
    Sibling(usize),
}

/// Per-terminal planning state of a staged run.
#[derive(Debug)]
struct StagedConst<'t> {
    node: &'t ConstNode,
    /// Memo fingerprint; `None` for empty terminals (nothing to probe or
    /// memoize).
    key: Option<u128>,
    /// Working copy of the byte classes, mutated as probes accept.
    classes: Vec<CharClass>,
    source: ConstSource,
}

/// One `(terminal, position, candidate byte)` widening probe advancing
/// through its contexts one wave at a time.
#[derive(Debug, Clone, Copy)]
struct StagedProbe {
    const_idx: usize,
    position: usize,
    /// Index into the candidate alphabet (so the posed check can borrow
    /// the byte from the test-byte slice).
    byte_idx: usize,
    /// Contexts already accepted; the probe's next check uses this context.
    next_ctx: usize,
}

/// The owned result of a staged character-generalization run: everything
/// the session needs after the tree borrow is released.
#[derive(Debug)]
pub(crate) struct ChargenOutcome {
    /// Final per-terminal classes, in const visit order over the planned
    /// tree slice.
    pub classes: Vec<Vec<CharClass>>,
    /// `(position, byte)` pairs accepted — the one-shot plan's count, so
    /// `chars_generalized` parity holds however the classes were obtained.
    pub accepted: usize,
    /// Terminals whose classes were adopted (memo table or in-plan
    /// sibling) instead of probed.
    pub memo_hits: usize,
    /// Checks the one-shot plan would have posed that never reached the
    /// query engine (adopted terminals, short-circuited contexts, in-wave
    /// duplicates, and plan-time cache folds).
    pub probes_elided: usize,
    /// Freshly learned `(key, classes)` pairs for the session memo table.
    /// The session must discard these if the run degraded (budget/cancel):
    /// fail-closed verdicts are not facts about the language.
    pub memo_inserts: Vec<(u128, Vec<CharClass>)>,
}

/// Wave-driven character-generalization planner (see the module docs'
/// query-reduction section).
///
/// Drive it as: loop { [`StagedChargen::plan_wave`] → pose the returned
/// checks → [`StagedChargen::fold_wave`] } until `plan_wave` appends no
/// checks, then [`StagedChargen::finish`]. Each wave poses at most one
/// check (one context) per live probe, so the loop runs at most
/// `max contexts per terminal` waves.
#[derive(Debug)]
pub(crate) struct StagedChargen<'t> {
    test_bytes: &'t [u8],
    consts: Vec<StagedConst<'t>>,
    /// Probes ready to plan their next context.
    active: Vec<StagedProbe>,
    /// Probes parked on this wave's posed checks, one entry per distinct
    /// check in planning order (= the wave's verdict order).
    slots: Vec<Vec<StagedProbe>>,
    accepted: usize,
    memo_hits: usize,
    probes_elided: usize,
}

impl<'t> StagedChargen<'t> {
    /// Plans the staged run over `trees`, consulting (but not updating)
    /// the session memo table for wholesale class adoption.
    pub fn new(trees: &'t [Node], test_bytes: &'t [u8], memo: &ByteClassMemo) -> Self {
        let mut consts: Vec<StagedConst<'t>> = Vec::new();
        for tree in trees {
            tree.visit_consts(&mut |c| {
                consts.push(StagedConst {
                    node: c,
                    key: None,
                    classes: c.classes.clone(),
                    source: ConstSource::Probed,
                });
            });
        }
        let mut staged = StagedChargen {
            test_bytes,
            consts,
            active: Vec::new(),
            slots: Vec::new(),
            accepted: 0,
            memo_hits: 0,
            probes_elided: 0,
        };
        let mut key_to_rep: HashMap<u128, usize> = HashMap::new();
        for idx in 0..staged.consts.len() {
            let c = staged.consts[idx].node;
            if c.original.is_empty() {
                continue;
            }
            let key = memo_key(&c.original, &c.contexts, test_bytes);
            staged.consts[idx].key = Some(key);
            // The number of checks the one-shot plan would pose for this
            // terminal — the elision value of adopting its classes.
            let full_cost = staged.probe_cost(idx);
            if let Some(stored) = memo.get(key) {
                // Guard against a corrupted snapshot (or an astronomically
                // unlikely fingerprint collision): a stored entry that does
                // not even match the terminal's shape is ignored.
                if stored.len() == c.original.len() {
                    staged.consts[idx].classes = stored.clone();
                    staged.consts[idx].source = ConstSource::FromMemo;
                    staged.memo_hits += 1;
                    staged.probes_elided += full_cost;
                    continue;
                }
            }
            if let Some(&rep) = key_to_rep.get(&key) {
                staged.consts[idx].source = ConstSource::Sibling(rep);
                staged.memo_hits += 1;
                staged.probes_elided += full_cost;
                continue;
            }
            key_to_rep.insert(key, idx);
            for position in 0..c.original.len() {
                for (byte_idx, &sigma) in test_bytes.iter().enumerate() {
                    if sigma == c.original[position] || c.classes[position].contains(sigma) {
                        continue;
                    }
                    staged.active.push(StagedProbe {
                        const_idx: idx,
                        position,
                        byte_idx,
                        next_ctx: 0,
                    });
                }
            }
        }
        staged
    }

    /// Checks the one-shot plan would pose for const `idx` (probe count ×
    /// context count).
    fn probe_cost(&self, idx: usize) -> usize {
        let c = self.consts[idx].node;
        let mut probes = 0usize;
        for position in 0..c.original.len() {
            probes += self
                .test_bytes
                .iter()
                .filter(|&&sigma| {
                    sigma != c.original[position] && !c.classes[position].contains(sigma)
                })
                .count();
        }
        probes * c.contexts.len()
    }

    /// Appends the check `γ·α[..i]·σ·α[i+1..]·δ` for `probe`'s next context.
    fn check_spec(&self, probe: &StagedProbe) -> CheckSpec<'t> {
        let c = self.consts[probe.const_idx].node;
        let ctx = &c.contexts[probe.next_ctx];
        CheckSpec::new(&[
            &ctx.before,
            &c.original[..probe.position],
            &self.test_bytes[probe.byte_idx..probe.byte_idx + 1],
            &c.original[probe.position + 1..],
            &ctx.after,
        ])
    }

    /// Plans the next wave: every live probe either resolves against the
    /// session cache (possibly through several contexts), accepts, dies,
    /// or poses exactly one check. Returns the number of checks appended;
    /// zero means the staged run is complete (every probe resolved).
    pub fn plan_wave(&mut self, checks: &mut Vec<CheckSpec<'t>>, cache: &ShardedCache) -> usize {
        debug_assert!(self.slots.is_empty(), "previous wave not folded");
        let start = checks.len();
        let mut dedup: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut slot_keys: Vec<Vec<u8>> = Vec::new();
        let mut scratch: Vec<u8> = Vec::new();
        for mut probe in std::mem::take(&mut self.active) {
            loop {
                let num_contexts = self.consts[probe.const_idx].node.contexts.len();
                if probe.next_ctx == num_contexts {
                    // Accepted in every context: the byte joins the class.
                    self.consts[probe.const_idx].classes[probe.position]
                        .insert(self.test_bytes[probe.byte_idx]);
                    self.accepted += 1;
                    break;
                }
                let spec = self.check_spec(&probe);
                scratch.clear();
                spec.write_into(&mut scratch);
                match cache.get(&scratch) {
                    Some(true) => {
                        // Cache fold: the one-shot plan would have posed
                        // this (as a cache hit); the probe advances free.
                        self.probes_elided += 1;
                        probe.next_ctx += 1;
                    }
                    Some(false) => {
                        // Rejected: this check and every later context's
                        // are elided; the probe dies.
                        self.probes_elided += num_contexts - probe.next_ctx;
                        break;
                    }
                    None => {
                        // A genuine miss: pose it — unless an identical
                        // string is already posed this wave, in which case
                        // the probe co-owns that slot's verdict.
                        let h = hash_query(&scratch);
                        let candidates = dedup.entry(h).or_default();
                        if let Some(&s) = candidates.iter().find(|&&s| slot_keys[s] == scratch) {
                            self.slots[s].push(probe);
                            self.probes_elided += 1;
                        } else {
                            candidates.push(self.slots.len());
                            slot_keys.push(scratch.clone());
                            self.slots.push(vec![probe]);
                            checks.push(spec);
                        }
                        break;
                    }
                }
            }
        }
        checks.len() - start
    }

    /// Folds the wave's verdicts (one per check `plan_wave` appended, in
    /// order) back into the probes: accepted probes advance to their next
    /// context, rejected probes die and elide their remaining contexts.
    pub fn fold_wave(&mut self, verdicts: &[bool]) {
        debug_assert_eq!(verdicts.len(), self.slots.len());
        for (owners, &verdict) in std::mem::take(&mut self.slots).into_iter().zip(verdicts) {
            for mut probe in owners {
                if verdict {
                    probe.next_ctx += 1;
                    self.active.push(probe);
                } else {
                    let num_contexts = self.consts[probe.const_idx].node.contexts.len();
                    self.probes_elided += num_contexts - probe.next_ctx - 1;
                }
            }
        }
    }

    /// Resolves adopted terminals and returns the owned outcome. Call only
    /// after `plan_wave` returned zero.
    pub fn finish(self) -> ChargenOutcome {
        debug_assert!(self.active.is_empty() && self.slots.is_empty(), "staged run incomplete");
        let StagedChargen { test_bytes, consts, accepted, memo_hits, probes_elided, .. } = self;
        let mut accepted = accepted;
        // Snapshot the representatives' classes first, so sibling
        // resolution is order-independent.
        let rep_classes: Vec<Vec<CharClass>> = consts.iter().map(|c| c.classes.clone()).collect();
        let mut classes: Vec<Vec<CharClass>> = Vec::with_capacity(consts.len());
        let mut memo_inserts: Vec<(u128, Vec<CharClass>)> = Vec::new();
        for c in &consts {
            let finals = match c.source {
                ConstSource::Sibling(rep) => rep_classes[rep].clone(),
                _ => c.classes.clone(),
            };
            if !matches!(c.source, ConstSource::Probed) {
                // Adopted terminals still count the (position, byte) pairs
                // the one-shot plan would have accepted: exactly the
                // probe-generating candidates that ended up in the class.
                for (position, &orig) in c.node.original.iter().enumerate() {
                    accepted += test_bytes
                        .iter()
                        .filter(|&&sigma| {
                            sigma != orig
                                && !c.node.classes[position].contains(sigma)
                                && finals[position].contains(sigma)
                        })
                        .count();
                }
            }
            if matches!(c.source, ConstSource::Probed) {
                if let Some(key) = c.key {
                    memo_inserts.push((key, finals.clone()));
                }
            }
            classes.push(finals);
        }
        ChargenOutcome { classes, accepted, memo_hits, probes_elided, memo_inserts }
    }
}

/// Writes a [`ChargenOutcome`]'s final classes back into `trees` (the same
/// slice the staged run planned), pairing terminals by visit order.
pub(crate) fn apply_staged_classes(trees: &mut [Node], classes: &[Vec<CharClass>]) {
    let mut cursor = 0usize;
    for tree in trees {
        tree.visit_consts_mut(&mut |c| {
            c.classes = classes[cursor].clone();
            cursor += 1;
        });
    }
    debug_assert_eq!(cursor, classes.len(), "every planned terminal applied");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::phase1::Phase1;
    use crate::runner::RunnerOptions;
    use crate::testing::xml_like;
    use crate::{FnOracle, Oracle};

    fn test_runner<'s>(oracle: &'s dyn Oracle, cache: &'s ShardedCache) -> QueryRunner<'s> {
        QueryRunner::new(oracle, cache, RunnerOptions { workers: 2, ..RunnerOptions::default() })
    }

    #[test]
    fn running_example_generalizes_letters_not_structure() {
        // Section 6.2: h and i generalize to a..z; the tag bytes < a > /
        // do not generalize.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"<a>hi</a>")];
        generalize_chars(&mut trees, &runner, &default_test_bytes());
        let r = trees[0].to_regex();
        // Letters widened.
        assert!(r.is_match(b"<a>zz</a>"));
        assert!(r.is_match(b"<a>qrs</a>"));
        // Structure intact.
        assert!(!r.is_match(b"<b>hh</b>"));
        assert!(!r.is_match(b"aa>hh</a>"));
        assert!(!r.is_match(b"<a>h h</a>")); // space not in a..z
    }

    #[test]
    fn digits_generalize_in_digit_language() {
        // L = nonempty digit strings.
        let oracle = FnOracle::new(|i: &[u8]| !i.is_empty() && i.iter().all(u8::is_ascii_digit));
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"7")];
        generalize_chars(&mut trees, &runner, &default_test_bytes());
        let r = trees[0].to_regex();
        for d in b'0'..=b'9' {
            assert!(r.is_match(&[d]), "digit {}", d as char);
        }
        assert!(!r.is_match(b"a"));
    }

    #[test]
    fn counts_accepted_pairs() {
        let oracle = FnOracle::new(|i: &[u8]| i.len() == 1 && i[0].is_ascii_lowercase());
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"m")];
        let n = generalize_chars(&mut trees, &runner, &default_test_bytes());
        // 25 other lowercase letters accepted... unless phase 1 starred the
        // single letter; in this language "mm" is invalid so no star forms.
        assert_eq!(n, 25);
    }

    #[test]
    fn aggregates_across_trees_in_one_batch() {
        // Two single-letter seeds in one plan: the aggregated batch answers
        // both trees' probes, and applying distributes verdicts per tree.
        let oracle = FnOracle::new(|i: &[u8]| i.len() == 1 && i[0].is_ascii_lowercase());
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"m"), p1.generalize_seed(b"q")];
        let n = generalize_chars(&mut trees, &runner, &default_test_bytes());
        // Each tree widens to the full lowercase class (25 accepted each).
        assert_eq!(n, 50);
        for tree in &trees {
            let r = tree.to_regex();
            assert!(r.is_match(b"a"));
            assert!(!r.is_match(b"A"));
        }
    }

    #[test]
    fn respects_budget() {
        let oracle = FnOracle::new(|_: &[u8]| true);
        let cache = ShardedCache::new();
        let runner = QueryRunner::new(
            &oracle,
            &cache,
            RunnerOptions { max_queries: Some(0), workers: 2, ..RunnerOptions::default() },
        );
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"q")];
        let n = generalize_chars(&mut trees, &runner, &default_test_bytes());
        assert_eq!(n, 0, "no budget, no generalization");
    }

    /// Drives a staged chargen run to completion, applies its classes, and
    /// records its fresh memo entries; returns (accepted, memo_hits,
    /// probes_elided).
    fn run_staged(
        trees: &mut [Node],
        runner: &QueryRunner<'_>,
        cache: &ShardedCache,
        memo: &mut ByteClassMemo,
        test_bytes: &[u8],
    ) -> (usize, usize, usize) {
        let outcome = {
            let mut staged = StagedChargen::new(trees, test_bytes, memo);
            loop {
                let mut checks: Vec<CheckSpec<'_>> = Vec::new();
                if staged.plan_wave(&mut checks, cache) == 0 {
                    break;
                }
                let verdicts = runner.accepts_batch(&checks);
                staged.fold_wave(&verdicts);
            }
            staged.finish()
        };
        apply_staged_classes(trees, &outcome.classes);
        for (key, classes) in outcome.memo_inserts {
            memo.insert(key, classes);
        }
        (outcome.accepted, outcome.memo_hits, outcome.probes_elided)
    }

    #[test]
    fn staged_run_matches_one_shot_classes_and_counts() {
        let oracle = FnOracle::new(xml_like);
        let tb = default_test_bytes();

        let legacy_cache = ShardedCache::new();
        let legacy_runner = test_runner(&oracle, &legacy_cache);
        let mut p1 = Phase1::new(&legacy_runner, 0);
        let mut legacy_trees = vec![p1.generalize_seed(b"<a>hi</a>")];
        let legacy_n = generalize_chars(&mut legacy_trees, &legacy_runner, &tb);

        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"<a>hi</a>")];
        let mut memo = ByteClassMemo::new();
        let (accepted, _, elided) = run_staged(&mut trees, &runner, &cache, &mut memo, &tb);

        assert_eq!(accepted, legacy_n, "accepted-pair parity");
        assert_eq!(
            trees[0].to_regex().to_string(),
            legacy_trees[0].to_regex().to_string(),
            "staged classes must equal the one-shot plan's"
        );
        assert!(elided > 0, "context short-circuiting elided nothing");
        assert!(cache.len() < legacy_cache.len(), "staged run posed no fewer distinct queries");
    }

    #[test]
    fn identical_terminals_share_probes_within_a_run() {
        // Two identical seeds yield byte-identical terminals in identical
        // contexts: one representative is probed, siblings adopt.
        let oracle = FnOracle::new(|i: &[u8]| i.len() == 1 && i[0].is_ascii_lowercase());
        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"m"), p1.generalize_seed(b"m")];
        let tb = default_test_bytes();
        let mut memo = ByteClassMemo::new();
        let (accepted, memo_hits, elided) = run_staged(&mut trees, &runner, &cache, &mut memo, &tb);
        assert_eq!(accepted, 50, "both trees widen to the 25 other lowercase letters");
        assert!(memo_hits >= 1, "duplicate terminal not shared");
        assert!(elided > 0);
        for tree in &trees {
            let r = tree.to_regex();
            assert!(r.is_match(b"a"));
            assert!(!r.is_match(b"A"));
        }
    }

    #[test]
    fn memo_adoption_poses_no_probes_and_reproduces_classes() {
        let oracle = FnOracle::new(xml_like);
        let tb = default_test_bytes();
        let mut memo = ByteClassMemo::new();

        let cache = ShardedCache::new();
        let runner = test_runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let mut trees = vec![p1.generalize_seed(b"<a>hi</a>")];
        let (first_accepted, ..) = run_staged(&mut trees, &runner, &cache, &mut memo, &tb);
        assert!(memo.len() > 0, "completed run must memoize its representatives");

        // Fresh cache, fresh trees, warm memo: every terminal adopts, the
        // runner sees zero chargen checks, and the classes are identical.
        let cache2 = ShardedCache::new();
        let runner2 = test_runner(&oracle, &cache2);
        let mut p1 = Phase1::new(&runner2, 0);
        let mut trees2 = vec![p1.generalize_seed(b"<a>hi</a>")];
        let after_phase1 = cache2.len();
        let (accepted2, memo_hits2, _) = run_staged(&mut trees2, &runner2, &cache2, &mut memo, &tb);
        assert_eq!(cache2.len(), after_phase1, "memo adoption posed a query");
        assert!(memo_hits2 > 0);
        assert_eq!(accepted2, first_accepted, "chars_generalized parity under adoption");
        assert_eq!(trees2[0].to_regex().to_string(), trees[0].to_regex().to_string());
    }
}
