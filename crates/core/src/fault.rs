//! Deterministic fault injection for the oracle stack.
//!
//! The hang-proofing in [`crate::oracle`] — query deadlines, respawn
//! backoff, the per-slot circuit breaker — is only trustworthy if it can
//! be *demonstrated* against every misbehavior class a real parser binary
//! exhibits. This module is that demonstration harness: a seeded, fully
//! deterministic [`FaultPlan`] that injects hangs, stalls (slow-loris
//! verdict trickles and partial frame writes), instant-crash loops, and
//! garbage verdicts into any worker loop or in-process oracle, so the
//! recovery paths can be pinned by tests instead of trusted on faith.
//!
//! Three integration points:
//!
//! - [`serve_faulty_worker`] / [`serve_faulty_worker_v1`] — drop-in
//!   replacements for [`crate::serve_oracle_worker`] /
//!   [`crate::serve_oracle_worker_v1`] that a worker binary routes through
//!   when fault flags are set (`glade-oracle-worker --hang-after N
//!   --stall-ms M …`). A no-op plan delegates to the clean serve loop, so
//!   the fast path stays byte-identical.
//! - [`FaultyOracle`] — wraps any in-process [`Oracle`] with the same
//!   plan semantics (injected failures answer `None` and are counted), for
//!   tests that need faults without spawning processes.
//! - [`flaky_spawn_should_die`] — a spawn-counter protocol for
//!   `--flaky-spawn PATH`: alternate spawns die instantly, which is how
//!   the respawn-backoff and breaker tests manufacture spawn-or-crash
//!   streaks deterministically across independent worker processes.
//!
//! Every decision is a pure function of the plan and the query stream
//! (counts and content hashes — never wall-clock time or PIDs), so a
//! faulty run is exactly reproducible: same seed, same queries, same
//! injected faults, same recovery sequence.

use crate::oracle::{read_frame_prefix, Oracle};
use crate::wire;
use std::io::{BufReader, Read as _, Write as _};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A deterministic schedule of injected worker misbehavior.
///
/// The default plan is a no-op (every fault disabled); builders switch the
/// individual fault modes on. Counters are in *answered queries*: e.g.
/// `hang_after(3)` answers three queries correctly and hangs on the
/// fourth — mid-frame if the fourth arrives inside a v2 batch, which is
/// exactly the torn-frame case the dispatcher's hang scan must recover.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    hang_after: Option<usize>,
    stall_ms: u64,
    crash_after: Option<usize>,
    garbage_after: Option<usize>,
    crash_permille: u16,
    seed: u64,
}

impl FaultPlan {
    /// A plan with every fault disabled (same as `FaultPlan::default()`).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Answer `n` queries, then hang forever (never answer, never exit) —
    /// the misbehavior class that motivates query deadlines. In
    /// [`FaultyOracle`] the "hang" is bounded: affected queries stall one
    /// [`FaultPlan::stall_ms`] quantum and fail with `None` instead of
    /// blocking the test forever.
    #[must_use]
    pub fn hang_after(mut self, n: usize) -> Self {
        self.hang_after = Some(n);
        self
    }

    /// Sleep `ms` milliseconds before every verdict byte, and write v2
    /// verdict runs one byte at a time (slow-loris). A stalling worker
    /// that keeps answering within the deadline is healthy — the
    /// dispatcher re-arms per verdict byte — so this mode separates
    /// "slow" from "hung" in tests.
    #[must_use]
    pub fn stall_ms(mut self, ms: u64) -> Self {
        self.stall_ms = ms;
        self
    }

    /// Answer `n` queries, then exit abruptly (status 42) instead of
    /// answering the next — `n = 0` is the instant-crash loop that the
    /// respawn backoff and circuit breaker exist to contain.
    #[must_use]
    pub fn crash_after(mut self, n: usize) -> Self {
        self.crash_after = Some(n);
        self
    }

    /// Answer `n` queries, then emit the illegal verdict byte `0x7f` for
    /// every later query (protocol deviation without process death).
    #[must_use]
    pub fn garbage_after(mut self, n: usize) -> Self {
        self.garbage_after = Some(n);
        self
    }

    /// Crash on roughly `p`/1000 of queries, chosen by a seeded content
    /// hash of the query bytes — stable across dispatch order, pool size,
    /// and frame batching, so "~10% of this workload crashes" is the same
    /// set of queries on every run.
    #[must_use]
    pub fn crash_permille(mut self, p: u16) -> Self {
        assert!(p <= 1000, "crash_permille is out of 1000");
        self.crash_permille = p;
        self
    }

    /// Seeds the content hash behind [`FaultPlan::crash_permille`].
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `true` when every fault is disabled and the plan's serve loops are
    /// byte-identical to the clean ones.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Whether the seeded content hash elects `input` for a crash.
    #[must_use]
    pub fn should_crash(&self, input: &[u8]) -> bool {
        if self.crash_permille == 0 {
            return false;
        }
        // FNV-1a over the bytes, folded through a splitmix64 finisher so
        // short inputs still spread across the permille buckets.
        let mut h = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for &b in input {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h % 1000) < u64::from(self.crash_permille)
    }

    /// The action the plan prescribes for the `answered`-th answer
    /// (0-based) to `input`.
    fn action(&self, answered: usize, input: &[u8]) -> FaultAction {
        if self.crash_after.is_some_and(|n| answered >= n) || self.should_crash(input) {
            FaultAction::Crash
        } else if self.hang_after.is_some_and(|n| answered >= n) {
            FaultAction::Hang
        } else if self.garbage_after.is_some_and(|n| answered >= n) {
            FaultAction::Garbage
        } else {
            FaultAction::Answer
        }
    }

    fn stall(&self) {
        if self.stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.stall_ms));
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    Answer,
    Garbage,
    Crash,
    Hang,
}

/// The worker-process faces of [`FaultAction`]: crash and hang actually
/// crash and hang.
fn execute_worker_fault(action: FaultAction) {
    match action {
        FaultAction::Crash => std::process::exit(42),
        FaultAction::Hang => loop {
            // Hang, don't exit: the whole point is a worker that stays
            // alive and silent until the oracle's deadline kills it.
            std::thread::sleep(Duration::from_secs(60));
        },
        FaultAction::Answer | FaultAction::Garbage => {}
    }
}

/// Like [`crate::serve_oracle_worker`], but routed through `plan`: the
/// negotiation handshake is untouched (faults target queries, not the
/// hello), verdict bytes are stalled/garbled/withheld per the plan, and a
/// no-op plan delegates to the clean loop so the fast path stays
/// byte-identical.
///
/// When any fault is enabled, v2 verdict runs are written one byte at a
/// time with a flush each — the slow-loris framing the dispatcher must
/// tolerate (and, with a hang, the mid-frame tear it must recover from).
///
/// # Errors
///
/// As [`crate::serve_oracle_worker`].
pub fn serve_faulty_worker<F: FnMut(&[u8]) -> bool>(
    plan: &FaultPlan,
    mut f: F,
) -> std::io::Result<()> {
    if plan.is_noop() {
        return crate::serve_oracle_worker(f);
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    let mut answered = 0usize;
    let mut first_frame = true;
    // v1 loop, watching for the upgrade probe (see serve_oracle_worker).
    loop {
        let Some(len) = read_frame_prefix(&mut input)? else { return Ok(()) };
        buf.clear();
        buf.resize(len as usize, 0);
        input.read_exact(&mut buf)?;
        if first_frame && buf == wire::WIRE_V2_PROBE {
            output.write_all(&[wire::WIRE_V2_ACK])?;
            output.flush()?;
            break;
        }
        first_frame = false;
        let action = plan.action(answered, &buf);
        execute_worker_fault(action);
        let verdict = if action == FaultAction::Garbage { 0x7f } else { u8::from(f(&buf)) };
        answered += 1;
        plan.stall();
        output.write_all(&[verdict])?;
        output.flush()?;
    }
    // v2 loop: verdicts go out one stalled byte at a time, and a fault
    // fires exactly at its query's position — tearing the frame there.
    loop {
        let Some(count) = read_frame_prefix(&mut input)? else { return Ok(()) };
        let queries = wire::decode_batch_frame_after_count(count, &mut input)?;
        for q in &queries {
            let action = plan.action(answered, q);
            execute_worker_fault(action);
            let verdict = if action == FaultAction::Garbage { 0x7f } else { u8::from(f(q)) };
            answered += 1;
            plan.stall();
            output.write_all(&[verdict])?;
            output.flush()?;
        }
    }
}

/// Like [`serve_faulty_worker`], but pinned to the legacy v1 single-query
/// protocol (the probe is answered as an ordinary query), mirroring
/// [`crate::serve_oracle_worker_v1`].
///
/// # Errors
///
/// As [`crate::serve_oracle_worker_v1`].
pub fn serve_faulty_worker_v1<F: FnMut(&[u8]) -> bool>(
    plan: &FaultPlan,
    mut f: F,
) -> std::io::Result<()> {
    if plan.is_noop() {
        return crate::serve_oracle_worker_v1(f);
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    let mut answered = 0usize;
    loop {
        let Some(len) = read_frame_prefix(&mut input)? else { return Ok(()) };
        buf.clear();
        buf.resize(len as usize, 0);
        input.read_exact(&mut buf)?;
        let action = plan.action(answered, &buf);
        execute_worker_fault(action);
        let verdict = if action == FaultAction::Garbage { 0x7f } else { u8::from(f(&buf)) };
        answered += 1;
        plan.stall();
        output.write_all(&[verdict])?;
        output.flush()?;
    }
}

/// The spawn-counter protocol behind `--flaky-spawn PATH`: appends one
/// byte to the file at `path` and reports whether this spawn should die
/// instantly (odd append positions die, so spawn attempts alternate
/// healthy/dead). The file is the cross-process spawn counter; tests
/// create a fresh temp file per scenario.
///
/// An unusable path counts as "don't die" — a broken counter must not
/// turn into a permanent crash loop.
#[must_use]
pub fn flaky_spawn_should_die(path: &std::path::Path) -> bool {
    let appended =
        std::fs::OpenOptions::new().create(true).append(true).open(path).and_then(|mut file| {
            file.write_all(b"s")?;
            file.flush()?;
            file.metadata()
        });
    match appended {
        Ok(meta) => meta.len().is_multiple_of(2),
        Err(_) => false,
    }
}

/// Wraps any in-process [`Oracle`] with a [`FaultPlan`], for fault tests
/// that should not spawn processes. Injected faults answer `None` from
/// [`Oracle::accepts_checked`] (a counted failure, like a worker that
/// died before answering); hangs are bounded to one stall quantum so a
/// test using this wrapper cannot itself hang.
#[derive(Debug)]
pub struct FaultyOracle<O> {
    inner: O,
    plan: FaultPlan,
    answered: AtomicUsize,
    injected: AtomicUsize,
}

impl<O: Oracle> FaultyOracle<O> {
    /// Wraps `oracle` so each query consults `plan` first.
    pub fn new(oracle: O, plan: FaultPlan) -> Self {
        FaultyOracle {
            inner: oracle,
            plan,
            answered: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// Queries for which a fault was injected instead of a real verdict.
    pub fn injected_faults(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Oracle> Oracle for FaultyOracle<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        let answered = self.answered.fetch_add(1, Ordering::Relaxed);
        match self.plan.action(answered, input) {
            FaultAction::Answer => {
                self.plan.stall();
                self.inner.accepts_checked(input)
            }
            FaultAction::Crash | FaultAction::Garbage | FaultAction::Hang => {
                self.plan.stall();
                self.injected.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn failure_count(&self) -> usize {
        self.inner.failure_count() + self.injected_faults()
    }

    fn configure_timeout(&self, timeout: Option<Duration>) {
        self.inner.configure_timeout(timeout);
    }

    fn timed_out_count(&self) -> usize {
        self.inner.timed_out_count()
    }

    fn tripped_worker_count(&self) -> usize {
        self.inner.tripped_worker_count()
    }

    fn recovered_worker_count(&self) -> usize {
        self.inner.recovered_worker_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnOracle;

    #[test]
    fn default_plan_is_noop() {
        assert!(FaultPlan::new().is_noop());
        assert!(!FaultPlan::new().hang_after(3).is_noop());
        assert!(!FaultPlan::new().stall_ms(1).is_noop());
        assert!(!FaultPlan::new().crash_permille(100).is_noop());
    }

    #[test]
    fn content_hash_crashes_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new().crash_permille(100).seed(7);
        let inputs: Vec<Vec<u8>> = (0..2000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let first: Vec<bool> = inputs.iter().map(|i| plan.should_crash(i)).collect();
        let second: Vec<bool> = inputs.iter().map(|i| plan.should_crash(i)).collect();
        assert_eq!(first, second, "the crash set must be a pure function of the bytes");
        let hits = first.iter().filter(|&&c| c).count();
        // ~10% of 2000 with generous slack: the hash must actually spread.
        assert!((100..300).contains(&hits), "got {hits} crash elections out of 2000");
        // A different seed elects a different set.
        let reseeded = FaultPlan::new().crash_permille(100).seed(8);
        assert!(first.iter().zip(&inputs).any(|(&c, i)| c != reseeded.should_crash(i)));
    }

    #[test]
    fn faulty_oracle_counts_injected_faults_and_degrades_to_none() {
        let plan = FaultPlan::new().crash_after(2);
        let o = FaultyOracle::new(FnOracle::new(|i: &[u8]| i.len() == 1), plan);
        assert_eq!(o.accepts_checked(b"a"), Some(true));
        assert_eq!(o.accepts_checked(b"bb"), Some(false));
        assert_eq!(o.accepts_checked(b"c"), None, "third query hits the injected crash");
        assert_eq!(o.accepts_checked(b"d"), None, "crash-after faults are permanent");
        assert_eq!(o.injected_faults(), 2);
        assert_eq!(o.failure_count(), 2);
    }

    #[test]
    fn flaky_spawn_alternates() {
        let path = std::env::temp_dir().join(format!("glade-flaky-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = flaky_spawn_should_die(&path);
        let second = flaky_spawn_should_die(&path);
        let third = flaky_spawn_should_die(&path);
        let fourth = flaky_spawn_should_die(&path);
        assert!(!first, "the first spawn must survive so tests can make progress");
        assert!(second);
        assert!(!third);
        assert!(fourth);
        let _ = std::fs::remove_file(&path);
    }
}
