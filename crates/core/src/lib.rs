//! GLADE: synthesizing program input grammars from examples and blackbox
//! membership queries.
//!
//! This crate is a from-scratch reproduction of the synthesis algorithm of
//! *Bastani, Sharma, Aiken, Liang. "Synthesizing Program Input Grammars",
//! PLDI 2017*. Given a handful of seed inputs and an [`Oracle`] answering
//! "is this input valid?", [`Glade::synthesize`] produces a context-free
//! grammar approximating the program's input language:
//!
//! 1. **Phase one** (Section 4) generalizes each seed into a regular
//!    expression by greedily proposing repetition and alternation
//!    decompositions, validated by context-wrapped membership checks.
//! 2. **Character generalization** (Section 6.2) widens literal bytes into
//!    byte classes.
//! 3. **Phase two** (Section 5) merges repetition subexpressions whose
//!    cross-substitution checks pass, introducing the recursive productions
//!    (matching-parentheses structure) that regular expressions cannot
//!    express.
//!
//! The output [`Synthesis`] carries the final [`glade_grammar::Grammar`],
//! the intermediate regular expression, and detailed [`SynthesisStats`].
//!
//! # Quick start
//!
//! ```
//! use glade_core::{FnOracle, Glade};
//! use glade_grammar::{Earley, Sampler};
//!
//! // A toy target language: balanced square brackets.
//! fn balanced(input: &[u8]) -> bool {
//!     let mut depth = 0i64;
//!     for &b in input {
//!         match b {
//!             b'[' => depth += 1,
//!             b']' => depth -= 1,
//!             _ => return false,
//!         }
//!         if depth < 0 {
//!             return false;
//!         }
//!     }
//!     depth == 0
//! }
//!
//! // A seed with one level of nesting lets phase two discover recursion.
//! let oracle = FnOracle::new(balanced);
//! let result = Glade::new().synthesize(&[b"[[]]".to_vec()], &oracle)?;
//! assert!(Earley::new(&result.grammar).accepts(b"[[]][]"));
//! assert!(Earley::new(&result.grammar).accepts(b"[[[[]]]]"));
//!
//! // The grammar immediately drives a grammar-based fuzzer:
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let input = Sampler::new(&result.grammar).sample(&mut rng).unwrap();
//! assert!(balanced(&input));
//! # Ok::<(), glade_core::SynthesisError>(())
//! ```

#![warn(missing_docs)]

mod chargen;
mod oracle;
mod phase1;
mod phase2;
mod runner;
mod synth;
mod tree;

pub use oracle::{CachingOracle, FnOracle, InputMode, Oracle, ProcessOracle};
pub use synth::{Glade, GladeConfig, Synthesis, SynthesisError, SynthesisStats};
