//! GLADE: synthesizing program input grammars from examples and blackbox
//! membership queries.
//!
//! This crate is a from-scratch reproduction of the synthesis algorithm of
//! *Bastani, Sharma, Aiken, Liang. "Synthesizing Program Input Grammars",
//! PLDI 2017*. Given a handful of seed inputs and an [`Oracle`] answering
//! "is this input valid?", [`Glade::synthesize`] produces a context-free
//! grammar approximating the program's input language:
//!
//! 1. **Phase one** (Section 4) generalizes each seed into a regular
//!    expression by greedily proposing repetition and alternation
//!    decompositions, validated by context-wrapped membership checks.
//! 2. **Character generalization** (Section 6.2) widens literal bytes into
//!    byte classes.
//! 3. **Phase two** (Section 5) merges repetition subexpressions whose
//!    cross-substitution checks pass, introducing the recursive productions
//!    (matching-parentheses structure) that regular expressions cannot
//!    express.
//!
//! The output [`Synthesis`] carries the final [`glade_grammar::Grammar`],
//! the intermediate regular expression, and detailed [`SynthesisStats`].
//!
//! # Quick start
//!
//! ```
//! use glade_core::{FnOracle, Glade};
//! use glade_grammar::{Earley, Sampler};
//!
//! // A toy target language: balanced square brackets.
//! fn balanced(input: &[u8]) -> bool {
//!     let mut depth = 0i64;
//!     for &b in input {
//!         match b {
//!             b'[' => depth += 1,
//!             b']' => depth -= 1,
//!             _ => return false,
//!         }
//!         if depth < 0 {
//!             return false;
//!         }
//!     }
//!     depth == 0
//! }
//!
//! // A seed with one level of nesting lets phase two discover recursion.
//! let oracle = FnOracle::new(balanced);
//! let result = Glade::new().synthesize(&[b"[[]]".to_vec()], &oracle)?;
//! assert!(Earley::new(&result.grammar).accepts(b"[[]][]"));
//! assert!(Earley::new(&result.grammar).accepts(b"[[[[]]]]"));
//!
//! // The grammar immediately drives a grammar-based fuzzer:
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let input = Sampler::new(&result.grammar).sample(&mut rng).unwrap();
//! assert!(balanced(&input));
//! # Ok::<(), glade_core::SynthesisError>(())
//! ```

//! # Oracle thread-safety contract
//!
//! Membership queries dominate GLADE's cost, so the query layer is built
//! for concurrency: phase two's pairwise merge checks and character
//! generalization's byte probes are batched and fanned out across a scoped
//! worker pool, and every cache on the query path is sharded and
//! lock-striped (no `RefCell`/`Cell` anywhere on the hot path). This places
//! two obligations on every [`Oracle`] implementation:
//!
//! 1. **`Send + Sync`** — the trait requires it. One oracle value is
//!    shared by reference across worker threads and queried concurrently.
//!    Wrap mutable instrumentation state in atomics or locks, never in
//!    `Cell`/`RefCell`.
//! 2. **Determinism** — repeated queries for the same input must return
//!    the same verdict, across threads and across time. The synthesis
//!    algorithm's monotonicity argument depends on it, and the batched
//!    engine may let duplicate in-flight queries race to the cache
//!    (first verdict wins — harmless only when verdicts agree).
//!
//! Given a deterministic oracle and no `time_limit`, synthesis itself is
//! deterministic and *independent of the worker count*
//! ([`GladeConfig::worker_threads`]): batches are constructed identically
//! in every mode, only the verdicts are computed concurrently, and all
//! merge/widening decisions are applied sequentially in a fixed order.
//! With a `time_limit`, which queries beat the deadline depends on
//! wall-clock speed — and therefore on the machine and the worker count —
//! so deadline-degraded runs keep the safety guarantees (fail-closed,
//! seeds preserved) but not byte-for-byte reproducibility.

#![warn(missing_docs)]

mod cache;
mod chargen;
mod oracle;
mod phase1;
mod phase2;
mod runner;
mod synth;
mod tree;

pub use oracle::{CachingOracle, FnOracle, InputMode, Oracle, ProcessOracle};
pub use synth::{Glade, GladeConfig, Synthesis, SynthesisError, SynthesisStats};
