//! GLADE: synthesizing program input grammars from examples and blackbox
//! membership queries.
//!
//! This crate is a from-scratch reproduction of the synthesis algorithm of
//! *Bastani, Sharma, Aiken, Liang. "Synthesizing Program Input Grammars",
//! PLDI 2017*. Given a handful of seed inputs and an [`Oracle`] answering
//! "is this input valid?", the engine produces a context-free grammar
//! approximating the program's input language:
//!
//! 1. **Phase one** (Section 4) generalizes each seed into a regular
//!    expression by greedily proposing repetition and alternation
//!    decompositions, validated by context-wrapped membership checks.
//! 2. **Character generalization** (Section 6.2) widens literal bytes into
//!    byte classes.
//! 3. **Phase two** (Section 5) merges repetition subexpressions whose
//!    cross-substitution checks pass, introducing the recursive productions
//!    (matching-parentheses structure) that regular expressions cannot
//!    express.
//!
//! The output [`Synthesis`] carries the final [`glade_grammar::Grammar`],
//! the intermediate regular expression, and detailed [`SynthesisStats`].
//!
//! # The session API
//!
//! Synthesis is driven through a [`Session`], configured by the fluent
//! [`GladeBuilder`]. A session ties one oracle to one long-lived
//! membership-query cache and makes runs:
//!
//! * **Incremental** — [`Session::add_seeds`] extends the grammar with new
//!   seeds without re-deriving earlier seeds' trees, and produces exactly
//!   the grammar a fresh run on the combined seed set would.
//! * **Observable** — a [`SynthesisObserver`] receives [`SynthEvent`]s for
//!   phase boundaries, per-seed decisions, accepted merges, and every
//!   query batch ([`EventLog`] is a ready-made collector).
//! * **Cancellable** — a [`CancelToken`] stops a runaway run between query
//!   batches; like budget exhaustion, cancellation fails closed and the
//!   degraded grammar still contains every seed.
//! * **Warm-startable** — [`Session::save_cache`]/[`Session::load_cache`]
//!   snapshot the query cache in a stable text format (see [`cache_to_text`]),
//!   so repeated runs against the same target stop re-paying oracle calls.
//! * **Query-frugal** — a query-reduction layer (on by default, see
//!   [`GladeBuilder::memoize_byte_classes`]) memoizes learned byte
//!   classes across identical terminals, short-circuits per-context
//!   probes, dedups byte-identical checks within a batch, and prunes
//!   provably-redundant merge checks — every elision is exact, so the
//!   grammar is byte-identical with the layer on or off
//!   ([`SynthesisStats::probes_elided`] counts the savings). The memo
//!   table rides along in cache snapshots (`glade-cache v3`).
//!
//! # Quick start
//!
//! ```
//! use glade_core::{FnOracle, GladeBuilder};
//! use glade_grammar::{Earley, Sampler};
//!
//! // A toy target language: balanced square brackets.
//! fn balanced(input: &[u8]) -> bool {
//!     let mut depth = 0i64;
//!     for &b in input {
//!         match b {
//!             b'[' => depth += 1,
//!             b']' => depth -= 1,
//!             _ => return false,
//!         }
//!         if depth < 0 {
//!             return false;
//!         }
//!     }
//!     depth == 0
//! }
//!
//! // A seed with one level of nesting lets phase two discover recursion.
//! let oracle = FnOracle::new(balanced);
//! let mut session = GladeBuilder::new().session(&oracle);
//! let result = session.add_seeds(&[b"[[]]".to_vec()])?;
//! assert!(Earley::new(&result.grammar).accepts(b"[[]][]"));
//! assert!(Earley::new(&result.grammar).accepts(b"[[[[]]]]"));
//!
//! // More seeds later extend the same grammar (and reuse every cached
//! // membership verdict); the grammar immediately drives a fuzzer:
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let input = Sampler::new(&result.grammar).sample(&mut rng).unwrap();
//! assert!(balanced(&input));
//! # Ok::<(), glade_core::SynthesisError>(())
//! ```
//!
//! # Migrating from `Glade::synthesize`
//!
//! The original blocking entry point remains as a deprecated wrapper with
//! identical behavior. The translations are mechanical:
//!
//! | Old | New |
//! |---|---|
//! | `Glade::new().synthesize(seeds, &o)` | `GladeBuilder::new().synthesize(seeds, &o)` |
//! | `GladeConfig { max_queries: Some(n), .. }` + `Glade::with_config` | `GladeBuilder::new().max_queries(n)` |
//! | `Glade::with_config(existing_config)` | `GladeBuilder::from_config(existing_config)` |
//! | repeated `synthesize` on growing seed sets | one [`Session`], repeated [`Session::add_seeds`] |
//!
//! # Oracle thread-safety contract
//!
//! Membership queries dominate GLADE's cost, so the query layer is built
//! for concurrency: phase two's pairwise merge checks and character
//! generalization's byte probes are aggregated into one batch and fanned
//! out across a scoped worker pool with work-stealing dispatch, and every
//! cache on the query path is sharded and lock-striped (no
//! `RefCell`/`Cell` anywhere on the hot path). For real process targets,
//! [`PooledProcessOracle`] amortizes the per-query process spawn across a
//! pool of persistent protocol-speaking workers (see
//! [`serve_oracle_worker`]) — and oracles that multiplex whole batches
//! natively ([`Oracle::native_batching`], which the pool implements with
//! an event-driven `poll(2)` dispatcher over batched [`wire`] frames) are
//! handed entire miss sets at once instead of a query per engine thread.
//! All of this places two obligations on every [`Oracle`] implementation:
//!
//! 1. **`Send + Sync`** — the trait requires it. One oracle value is
//!    shared by reference across worker threads and queried concurrently.
//!    Wrap mutable instrumentation state in atomics or locks, never in
//!    `Cell`/`RefCell`.
//! 2. **Determinism** — repeated queries for the same input must return
//!    the same verdict, across threads and across time. The synthesis
//!    algorithm's monotonicity argument depends on it, the batched engine
//!    may let duplicate in-flight queries race to the cache (first verdict
//!    wins — harmless only when verdicts agree), and cache snapshots
//!    replay old verdicts into later runs.
//!
//! Given a deterministic oracle, no `time_limit`, and no cancellation,
//! synthesis is deterministic and *independent of the worker count*
//! ([`GladeBuilder::worker_threads`]): batches are constructed identically
//! in every mode, only the verdicts are computed concurrently, and all
//! merge/widening decisions are applied sequentially in a fixed order.
//! The query-reduction layer preserves this: staged waves are planned from
//! the (deterministically evolving) cache and memo state alone, so which
//! checks are elided — and the resulting grammar — is identical across
//! worker counts, pool sizes, and wire versions.
//! With a `time_limit` (or a [`CancelToken`] trip), which queries beat the
//! cutoff depends on wall-clock speed — and therefore on the machine and
//! the worker count — so degraded runs keep the safety guarantees
//! (fail-closed, seeds preserved) but not byte-for-byte reproducibility.

#![warn(missing_docs)]

mod cache;
mod chargen;
mod events;
mod fault;
mod memo;
mod oracle;
mod persist;
mod phase1;
mod phase2;
mod runner;
#[cfg(any(target_os = "linux", target_os = "macos"))]
pub mod serve;
mod session;
mod synth;
pub mod testing;
mod tree;
pub mod wire;

pub use events::{CancelToken, EventLog, SynthEvent, SynthPhase, SynthesisObserver};
pub use fault::{
    flaky_spawn_should_die, serve_faulty_worker, serve_faulty_worker_v1, FaultPlan, FaultyOracle,
};
pub use oracle::{
    serve_oracle_worker, serve_oracle_worker_v1, CachingOracle, FnOracle, InputMode, Oracle,
    PooledProcessOracle, ProcessOracle,
};
pub use persist::{
    cache_from_text, cache_to_text, is_binary_snapshot, snapshot_from_binary,
    snapshot_from_binary_reader, snapshot_from_reader, snapshot_from_text, snapshot_to_binary,
    snapshot_to_text, snapshot_to_text_with_memo, BinaryCacheFile, CacheError, CacheFormat,
    CacheSnapshot, IntoEntries, MemoEntry, SnapshotEntries,
};
pub use session::{GladeBuilder, Session};
pub use synth::{Glade, GladeConfig, Synthesis, SynthesisError, SynthesisStats};
