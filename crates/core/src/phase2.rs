//! Phase two: learning recursive properties by merging repetition
//! subexpressions (Section 5 of the paper).
//!
//! After phase one, every starred subexpression `R = (…)*` of the regular
//! expression corresponds to a nonterminal `A'_i` of the translated
//! context-free grammar. Phase two considers every unordered pair
//! `(A'_i, A'_j)` once, in ascending index order, and equates the pair if
//! two membership checks pass (Section 5.3): substituting `R_j`'s residual
//! into `R_i`'s context and vice versa:
//!
//! ```text
//! γi · ρj · δi      where ρj = α'2 α'2 is R_j's recorded residual
//! γj · ρi · δj
//! ```
//!
//! Accepted pairs accumulate in a union-find; the quotiented grammar pools
//! the star bodies of each class (see `tree::trees_to_grammar`), which by
//! Proposition 5.1 realizes exactly the language effect of equating the
//! nonterminals. Merging is what lets GLADE express matching-parentheses
//! style recursion (Definition 5.2, Proposition 5.3) that no regular
//! expression captures.

use crate::cache::{hash_query, ShardedCache};
use crate::events::{SynthEvent, SynthesisObserver};
use crate::runner::{CheckSpec, QueryRunner};
use crate::tree::{Node, StarNode, UnionFind};
use std::collections::HashMap;

/// Outcome counters for phase two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MergeStats {
    pub pairs_tried: usize,
    pub merges_accepted: usize,
}

/// The bookkeeping side of an aggregated merge batch: the unordered star
/// pairs, in ascending (id, id) order, whose 2-check verdict pairs occupy
/// a contiguous slice of the batch. Owns no borrowed data (star *ids*, not
/// star references), so the session can drop the check list — and its
/// immutable borrow of the trees — before folding.
#[derive(Debug, Default)]
pub(crate) struct MergePlan {
    /// Star-id pairs, two consecutive batch verdicts each.
    pairs: Vec<(usize, usize)>,
    num_stars: usize,
    /// Number of checks this plan appended to the shared check list.
    pub checks_len: usize,
}

/// Plans the merge phase over all star nodes of all seed trees, appending
/// the O(stars²) cross-substitution checks to `checks`.
///
/// The checks are independent of one another, so they are all described up
/// front (as borrowed [`CheckSpec`] segments — no residual strings are
/// materialized) onto the shared check list, where the session aggregates
/// them with character generalization's probes into one batch that the
/// [`QueryRunner`] dedups, caches, and fans out across its worker pool.
pub(crate) fn plan_merge_checks<'t>(
    trees: &'t [Node],
    num_stars: usize,
    checks: &mut Vec<CheckSpec<'t>>,
) -> MergePlan {
    let mut stars: Vec<&StarNode> = Vec::new();
    for t in trees {
        t.collect_stars(&mut stars);
    }
    stars.sort_by_key(|s| s.id);
    let start = checks.len();
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(stars.len() * stars.len() / 2);
    // Two checks per unordered pair (Section 5.3): R_j's residual in R_i's
    // context and vice versa.
    for i in 0..stars.len() {
        for j in i + 1..stars.len() {
            let (si, sj) = (stars[i], stars[j]);
            checks.push(CheckSpec::wrapped(&si.ctx, &sj.residual_parts()));
            checks.push(CheckSpec::wrapped(&sj.ctx, &si.residual_parts()));
            pairs.push((si.id, sj.id));
        }
    }
    MergePlan { pairs, num_stars, checks_len: checks.len() - start }
}

/// Folds the verdict slice of an aggregated batch into the union-find.
///
/// The *unions* are applied sequentially in ascending pair order, so the
/// resulting union-find — and therefore the synthesized grammar — is
/// byte-identical for every worker count.
///
/// Accepted merges are reported to `observer` (when installed) as
/// [`SynthEvent::MergeAccepted`] events, in the same ascending pair order
/// the unions are applied in.
///
/// Returns the union-find over star ids (indexed `0..num_stars`) and the
/// counters.
pub(crate) fn apply_merge_verdicts(
    plan: &MergePlan,
    verdicts: &[bool],
    observer: Option<&dyn SynthesisObserver>,
) -> (UnionFind, MergeStats) {
    debug_assert_eq!(verdicts.len(), plan.checks_len);
    let mut uf = UnionFind::new(plan.num_stars);
    let mut stats = MergeStats::default();
    for (p, &(left, right)) in plan.pairs.iter().enumerate() {
        stats.pairs_tried += 1;
        // The two candidates per pair (Section 5.2): merge, or keep the
        // current grammar. Merge wins iff both checks pass.
        if verdicts[2 * p] && verdicts[2 * p + 1] {
            uf.union(left, right);
            stats.merges_accepted += 1;
            if let Some(obs) = observer {
                obs.on_event(&SynthEvent::MergeAccepted { left_star: left, right_star: right });
            }
        }
    }
    (uf, stats)
}

/// Which of a pair's two cross-substitution checks a posed slot resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Which {
    A,
    B,
}

/// Resolution state of one unordered star pair in a staged merge run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairState {
    /// Equal originals: both cross-checks are literally the two stars'
    /// phase-one creation checks (`γ·α2α2·δ`), which were accepted — the
    /// pair merges without posing anything.
    PreAccepted,
    /// Waiting to resolve check A (`γi · ρj · δi`).
    NeedA,
    /// A passed; waiting to resolve check B (`γj · ρi · δj`).
    NeedB,
    /// Both checks resolved: merge iff `true`.
    Done(bool),
}

#[derive(Debug)]
struct StagedPair<'t> {
    left: &'t StarNode,
    right: &'t StarNode,
    state: PairState,
}

/// The owned result of a staged merge run.
#[derive(Debug)]
pub(crate) struct MergeOutcome {
    pub uf: UnionFind,
    pub stats: MergeStats,
    /// Checks the one-shot plan would have posed that never reached the
    /// query engine (pre-accepted pairs, B-checks short-circuited by a
    /// failed A, in-wave duplicates, and plan-time cache folds).
    pub probes_elided: usize,
    /// Accepted `(left id, right id)` pairs in ascending pair order — the
    /// order the unions were applied in, for MergeAccepted events.
    pub accepted: Vec<(usize, usize)>,
}

/// Wave-driven merge planner (see `chargen.rs`' query-reduction section).
///
/// The one-shot plan poses both cross-substitution checks of every pair
/// unconditionally. The staged run exploits the conjunction: check B is
/// only posed once check A has passed, pairs of stars with byte-identical
/// originals are accepted structurally (their checks are their phase-one
/// creation checks), and checks whose assembled string is already cached —
/// or already posed this wave — resolve without a new query. The accept
/// set is provably identical to the one-shot plan's.
///
/// Drive as: loop { [`StagedMerge::plan_wave`] → pose →
/// [`StagedMerge::fold_wave`] } until `plan_wave` appends no checks, then
/// [`StagedMerge::finish`]. A pair resolves in at most two waves, so with
/// chargen sharing the batch the loop adds no extra round trips.
#[derive(Debug)]
pub(crate) struct StagedMerge<'t> {
    pairs: Vec<StagedPair<'t>>,
    num_stars: usize,
    /// `(pair index, which check)` owners parked per posed check this
    /// wave, in planning order (= the wave's verdict order).
    slots: Vec<Vec<(usize, Which)>>,
    probes_elided: usize,
}

impl<'t> StagedMerge<'t> {
    /// Plans the staged run over all star pairs of `trees`, pre-accepting
    /// pairs whose residual checks are already-accepted creation checks.
    pub fn new(trees: &'t [Node], num_stars: usize) -> Self {
        let mut stars: Vec<&'t StarNode> = Vec::new();
        for t in trees {
            t.collect_stars(&mut stars);
        }
        stars.sort_by_key(|s| s.id);
        let mut pairs: Vec<StagedPair<'t>> = Vec::with_capacity(stars.len() * stars.len() / 2);
        let mut probes_elided = 0usize;
        for i in 0..stars.len() {
            for j in i + 1..stars.len() {
                let (si, sj) = (stars[i], stars[j]);
                let state = if si.original == sj.original {
                    // A = γi·αj αj·δi = γi·αi αi·δi: star i's accepted
                    // creation check (and B star j's). Elide both.
                    probes_elided += 2;
                    PairState::PreAccepted
                } else {
                    PairState::NeedA
                };
                pairs.push(StagedPair { left: si, right: sj, state });
            }
        }
        StagedMerge { pairs, num_stars, slots: Vec::new(), probes_elided }
    }

    /// Plans the next wave: every unresolved pair resolves against the
    /// session cache as far as possible, then poses at most one check.
    /// Returns the number of checks appended; zero means every pair is
    /// resolved.
    pub fn plan_wave(&mut self, checks: &mut Vec<CheckSpec<'t>>, cache: &ShardedCache) -> usize {
        debug_assert!(self.slots.is_empty(), "previous wave not folded");
        let start = checks.len();
        let mut dedup: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut slot_keys: Vec<Vec<u8>> = Vec::new();
        let mut scratch: Vec<u8> = Vec::new();
        for idx in 0..self.pairs.len() {
            loop {
                let which = match self.pairs[idx].state {
                    PairState::NeedA => Which::A,
                    PairState::NeedB => Which::B,
                    PairState::PreAccepted | PairState::Done(_) => break,
                };
                let pair = &self.pairs[idx];
                let spec = match which {
                    Which::A => CheckSpec::wrapped(&pair.left.ctx, &pair.right.residual_parts()),
                    Which::B => CheckSpec::wrapped(&pair.right.ctx, &pair.left.residual_parts()),
                };
                scratch.clear();
                spec.write_into(&mut scratch);
                match (cache.get(&scratch), which) {
                    (Some(true), Which::A) => {
                        // Cache fold: A passes for free; try B this wave.
                        self.probes_elided += 1;
                        self.pairs[idx].state = PairState::NeedB;
                    }
                    (Some(false), Which::A) => {
                        // A fails: B is never posed either.
                        self.probes_elided += 2;
                        self.pairs[idx].state = PairState::Done(false);
                        break;
                    }
                    (Some(v), Which::B) => {
                        self.probes_elided += 1;
                        self.pairs[idx].state = PairState::Done(v);
                        break;
                    }
                    (None, which) => {
                        let h = hash_query(&scratch);
                        let candidates = dedup.entry(h).or_default();
                        if let Some(&s) = candidates.iter().find(|&&s| slot_keys[s] == scratch) {
                            self.slots[s].push((idx, which));
                            self.probes_elided += 1;
                        } else {
                            candidates.push(self.slots.len());
                            slot_keys.push(scratch.clone());
                            self.slots.push(vec![(idx, which)]);
                            checks.push(spec);
                        }
                        break;
                    }
                }
            }
        }
        checks.len() - start
    }

    /// Folds the wave's verdicts (one per check `plan_wave` appended, in
    /// order) back into the pairs: a passed A advances to B (posed next
    /// wave), a failed A resolves the pair and elides its B check.
    pub fn fold_wave(&mut self, verdicts: &[bool]) {
        debug_assert_eq!(verdicts.len(), self.slots.len());
        for (owners, &verdict) in std::mem::take(&mut self.slots).into_iter().zip(verdicts) {
            for (idx, which) in owners {
                match which {
                    Which::A => {
                        if verdict {
                            self.pairs[idx].state = PairState::NeedB;
                        } else {
                            self.probes_elided += 1;
                            self.pairs[idx].state = PairState::Done(false);
                        }
                    }
                    Which::B => self.pairs[idx].state = PairState::Done(verdict),
                }
            }
        }
    }

    /// Applies the unions in ascending pair order (identical to the
    /// one-shot plan's order) and returns the owned outcome. Call only
    /// after `plan_wave` returned zero.
    pub fn finish(self) -> MergeOutcome {
        debug_assert!(self.slots.is_empty(), "staged run incomplete");
        let mut uf = UnionFind::new(self.num_stars);
        let mut stats = MergeStats::default();
        let mut accepted: Vec<(usize, usize)> = Vec::new();
        for pair in &self.pairs {
            debug_assert!(
                !matches!(pair.state, PairState::NeedA | PairState::NeedB),
                "unresolved pair at finish"
            );
            stats.pairs_tried += 1;
            if matches!(pair.state, PairState::PreAccepted | PairState::Done(true)) {
                uf.union(pair.left.id, pair.right.id);
                stats.merges_accepted += 1;
                accepted.push((pair.left.id, pair.right.id));
            }
        }
        MergeOutcome { uf, stats, probes_elided: self.probes_elided, accepted }
    }
}

/// Runs the merge phase as one self-contained batch (plan → pose → apply).
///
/// The session drives the plan/apply halves directly so the batch can also
/// carry character generalization's probes; this wrapper serves callers
/// that run the phase in isolation (tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn merge_stars(
    trees: &[Node],
    num_stars: usize,
    runner: &QueryRunner<'_>,
    observer: Option<&dyn SynthesisObserver>,
) -> (UnionFind, MergeStats) {
    let mut checks: Vec<CheckSpec<'_>> = Vec::new();
    let plan = plan_merge_checks(trees, num_stars, &mut checks);
    let verdicts = runner.accepts_batch(&checks);
    apply_merge_verdicts(&plan, &verdicts, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::phase1::Phase1;
    use crate::runner::RunnerOptions;
    use crate::testing::{xml_like, xml_like_with_self_closing};
    use crate::tree::trees_to_grammar;
    use crate::FnOracle;
    use glade_grammar::Earley;

    fn runner<'s>(oracle: &'s dyn crate::Oracle, cache: &'s ShardedCache) -> QueryRunner<'s> {
        QueryRunner::new(oracle, cache, RunnerOptions { workers: 2, ..RunnerOptions::default() })
    }

    #[test]
    fn running_example_merges_and_nests() {
        // Figure 2 steps C1–C2: the two stars of (<a>(h+i)*</a>)* merge,
        // yielding the recursive grammar A → (<a>A</a>)* , A → (h+i)*.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"<a>hi</a>");
        let num_stars = p1.next_star_id();
        assert_eq!(num_stars, 2);

        let trees = vec![tree];
        let (mut uf, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(stats.pairs_tried, 1);
        assert_eq!(stats.merges_accepted, 1);

        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        // Recursion now expressible…
        assert!(e.accepts(b"<a><a>hi</a><a>hi</a></a>"));
        assert!(e.accepts(b"<a><a><a>h</a></a></a>"));
        // …and top-level letters.
        assert!(e.accepts(b"hihi"));
        // No overgeneralization.
        assert!(!e.accepts(b"<a><a>hi</a>"));
        assert!(!e.accepts(b"</a><a>"));
    }

    #[test]
    fn compatible_blocks_do_merge() {
        // Language x*y*: the cross-substitution checks (yyy and xxx) are
        // both valid, so the paper's heuristic merges the two stars —
        // a deliberate (if overgeneral) acceptance.
        let oracle = FnOracle::new(|i: &[u8]| {
            let split = i.iter().position(|&b| b == b'y').unwrap_or(i.len());
            i[..split].iter().all(|&b| b == b'x') && i[split..].iter().all(|&b| b == b'y')
        });
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"xy");
        let num_stars = p1.next_star_id();
        let trees = vec![tree];
        let (_, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(stats.merges_accepted, 1);
    }

    #[test]
    fn incompatible_stars_do_not_merge() {
        // Language a* x b*: substituting the b-star's residual into the
        // a-star's context yields "bbxb" (invalid) and vice versa, so the
        // merge checks reject the pair (the second candidate — keeping the
        // grammar unchanged — wins).
        let oracle = FnOracle::new(|i: &[u8]| {
            let Some(x) = i.iter().position(|&b| b == b'x') else { return false };
            i[..x].iter().all(|&b| b == b'a') && i[x + 1..].iter().all(|&b| b == b'b')
        });
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"axb");
        let num_stars = p1.next_star_id();
        let trees = vec![tree];
        let (mut uf, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(stats.merges_accepted, 0);
        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        assert!(e.accepts(b"aaxbb"));
        assert!(e.accepts(b"x"));
        assert!(!e.accepts(b"bxa"));
        assert!(!e.accepts(b"abx"));
    }

    #[test]
    fn section7_greedy_limitation_single_seed() {
        // Section 7: with L* = XML-like extended by <a/>, the single seed
        // <a><a/></a> yields a suboptimal (but still valid) grammar whose
        // stars cannot merge, because the check ><a/ is invalid.
        let oracle = FnOracle::new(xml_like_with_self_closing);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"<a><a/></a>");
        let num_stars = p1.next_star_id();
        let trees = vec![tree];
        let (mut uf, _) = merge_stars(&trees, num_stars, &runner, None);
        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        // The synthesized language is a valid subset…
        assert!(e.accepts(b"<a><a/></a>"));
        // …but greedy phase one misses the deep nesting of self-closing
        // tags inside doubly-nested elements.
        assert!(!e.accepts(b"<a><a><a/></a></a>"));
    }

    #[test]
    fn section7_recovery_with_two_seeds() {
        // Section 7 continued: seeds {<a/>, <a>hi</a>} recover the target.
        let oracle = FnOracle::new(xml_like_with_self_closing);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let t1 = p1.generalize_seed(b"<a/>");
        let t2 = p1.generalize_seed(b"<a>hi</a>");
        let num_stars = p1.next_star_id();
        let trees = vec![t1, t2];
        let (mut uf, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert!(stats.merges_accepted > 0);
        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        assert!(e.accepts(b"<a><a/></a>"));
        assert!(e.accepts(b"<a><a><a/>hi</a></a>"));
        assert!(!e.accepts(b"<a/></a>"));
    }

    /// Drives a staged merge run to completion against `runner`.
    fn run_staged(
        trees: &[Node],
        num_stars: usize,
        runner: &QueryRunner<'_>,
        cache: &ShardedCache,
    ) -> MergeOutcome {
        let mut staged = StagedMerge::new(trees, num_stars);
        loop {
            let mut checks: Vec<CheckSpec<'_>> = Vec::new();
            if staged.plan_wave(&mut checks, cache) == 0 {
                break;
            }
            let verdicts = runner.accepts_batch(&checks);
            staged.fold_wave(&verdicts);
        }
        staged.finish()
    }

    #[test]
    fn staged_merge_matches_one_shot_plan() {
        // The staged planner must reproduce the one-shot plan's accept set
        // (and union order) exactly on the running example.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let trees = vec![p1.generalize_seed(b"<a>hi</a>")];
        let num_stars = p1.next_star_id();

        let (legacy_uf, legacy_stats) = merge_stars(&trees, num_stars, &runner, None);
        let outcome = run_staged(&trees, num_stars, &runner, &cache);
        assert_eq!(outcome.stats, legacy_stats);
        let (mut uf_a, mut uf_b) = (legacy_uf, outcome.uf);
        for s in 0..num_stars {
            assert_eq!(uf_a.find(s), uf_b.find(s), "star {s} lands in a different class");
        }
        assert_eq!(outcome.accepted.len(), outcome.stats.merges_accepted);
    }

    #[test]
    fn staged_merge_pre_accepts_equal_originals_without_queries() {
        // Two phase-one passes over the same seed yield star pairs with
        // byte-identical originals; their cross-checks are the accepted
        // creation checks, so the staged run unions them structurally.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let t1 = p1.generalize_seed(b"<a>hi</a>");
        let t2 = p1.generalize_seed(b"<a>hi</a>");
        let num_stars = p1.next_star_id();
        let trees = vec![t1, t2];

        let before = cache.len();
        let outcome = run_staged(&trees, num_stars, &runner, &cache);
        // Stars: 0=outer₁, 1=inner₁, 2=outer₂, 3=inner₂. The equal-original
        // pairs (0,2) and (1,3) pre-accept without a query; the four mixed
        // pairs all assemble the same two check strings a single tree's
        // (outer, inner) pair would, so dedup + cache folding collapse them
        // to exactly those two novel queries.
        assert_eq!(cache.len(), before + 2, "duplicate pairs posed duplicate queries");
        assert!(outcome.probes_elided >= 2 * 2 + 3, "pre-accepts + folded duplicates");

        // And the accept set still matches the one-shot plan's.
        let (mut legacy_uf, legacy_stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(outcome.stats, legacy_stats);
        let mut uf = outcome.uf;
        for s in 0..num_stars {
            assert_eq!(uf.find(s), legacy_uf.find(s));
        }
    }

    #[test]
    fn staged_merge_elides_b_check_after_failed_a() {
        // a* x b*: check A fails for the only pair, so the staged run never
        // poses check B — one of the one-shot plan's two checks is elided.
        let oracle = FnOracle::new(|i: &[u8]| {
            let Some(x) = i.iter().position(|&b| b == b'x') else { return false };
            i[..x].iter().all(|&b| b == b'a') && i[x + 1..].iter().all(|&b| b == b'b')
        });
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let trees = vec![p1.generalize_seed(b"axb")];
        let num_stars = p1.next_star_id();

        let outcome = run_staged(&trees, num_stars, &runner, &cache);
        assert_eq!(outcome.stats.merges_accepted, 0);
        assert!(outcome.probes_elided >= 1, "failed A must elide B");
    }
}
