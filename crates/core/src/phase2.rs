//! Phase two: learning recursive properties by merging repetition
//! subexpressions (Section 5 of the paper).
//!
//! After phase one, every starred subexpression `R = (…)*` of the regular
//! expression corresponds to a nonterminal `A'_i` of the translated
//! context-free grammar. Phase two considers every unordered pair
//! `(A'_i, A'_j)` once, in ascending index order, and equates the pair if
//! two membership checks pass (Section 5.3): substituting `R_j`'s residual
//! into `R_i`'s context and vice versa:
//!
//! ```text
//! γi · ρj · δi      where ρj = α'2 α'2 is R_j's recorded residual
//! γj · ρi · δj
//! ```
//!
//! Accepted pairs accumulate in a union-find; the quotiented grammar pools
//! the star bodies of each class (see `tree::trees_to_grammar`), which by
//! Proposition 5.1 realizes exactly the language effect of equating the
//! nonterminals. Merging is what lets GLADE express matching-parentheses
//! style recursion (Definition 5.2, Proposition 5.3) that no regular
//! expression captures.

use crate::events::{SynthEvent, SynthesisObserver};
use crate::runner::{CheckSpec, QueryRunner};
use crate::tree::{Node, StarNode, UnionFind};

/// Outcome counters for phase two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MergeStats {
    pub pairs_tried: usize,
    pub merges_accepted: usize,
}

/// The bookkeeping side of an aggregated merge batch: the unordered star
/// pairs, in ascending (id, id) order, whose 2-check verdict pairs occupy
/// a contiguous slice of the batch. Owns no borrowed data (star *ids*, not
/// star references), so the session can drop the check list — and its
/// immutable borrow of the trees — before folding.
#[derive(Debug, Default)]
pub(crate) struct MergePlan {
    /// Star-id pairs, two consecutive batch verdicts each.
    pairs: Vec<(usize, usize)>,
    num_stars: usize,
    /// Number of checks this plan appended to the shared check list.
    pub checks_len: usize,
}

/// Plans the merge phase over all star nodes of all seed trees, appending
/// the O(stars²) cross-substitution checks to `checks`.
///
/// The checks are independent of one another, so they are all described up
/// front (as borrowed [`CheckSpec`] segments — no residual strings are
/// materialized) onto the shared check list, where the session aggregates
/// them with character generalization's probes into one batch that the
/// [`QueryRunner`] dedups, caches, and fans out across its worker pool.
pub(crate) fn plan_merge_checks<'t>(
    trees: &'t [Node],
    num_stars: usize,
    checks: &mut Vec<CheckSpec<'t>>,
) -> MergePlan {
    let mut stars: Vec<&StarNode> = Vec::new();
    for t in trees {
        t.collect_stars(&mut stars);
    }
    stars.sort_by_key(|s| s.id);
    let start = checks.len();
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(stars.len() * stars.len() / 2);
    // Two checks per unordered pair (Section 5.3): R_j's residual in R_i's
    // context and vice versa.
    for i in 0..stars.len() {
        for j in i + 1..stars.len() {
            let (si, sj) = (stars[i], stars[j]);
            checks.push(CheckSpec::wrapped(&si.ctx, &sj.residual_parts()));
            checks.push(CheckSpec::wrapped(&sj.ctx, &si.residual_parts()));
            pairs.push((si.id, sj.id));
        }
    }
    MergePlan { pairs, num_stars, checks_len: checks.len() - start }
}

/// Folds the verdict slice of an aggregated batch into the union-find.
///
/// The *unions* are applied sequentially in ascending pair order, so the
/// resulting union-find — and therefore the synthesized grammar — is
/// byte-identical for every worker count.
///
/// Accepted merges are reported to `observer` (when installed) as
/// [`SynthEvent::MergeAccepted`] events, in the same ascending pair order
/// the unions are applied in.
///
/// Returns the union-find over star ids (indexed `0..num_stars`) and the
/// counters.
pub(crate) fn apply_merge_verdicts(
    plan: &MergePlan,
    verdicts: &[bool],
    observer: Option<&dyn SynthesisObserver>,
) -> (UnionFind, MergeStats) {
    debug_assert_eq!(verdicts.len(), plan.checks_len);
    let mut uf = UnionFind::new(plan.num_stars);
    let mut stats = MergeStats::default();
    for (p, &(left, right)) in plan.pairs.iter().enumerate() {
        stats.pairs_tried += 1;
        // The two candidates per pair (Section 5.2): merge, or keep the
        // current grammar. Merge wins iff both checks pass.
        if verdicts[2 * p] && verdicts[2 * p + 1] {
            uf.union(left, right);
            stats.merges_accepted += 1;
            if let Some(obs) = observer {
                obs.on_event(&SynthEvent::MergeAccepted { left_star: left, right_star: right });
            }
        }
    }
    (uf, stats)
}

/// Runs the merge phase as one self-contained batch (plan → pose → apply).
///
/// The session drives the plan/apply halves directly so the batch can also
/// carry character generalization's probes; this wrapper serves callers
/// that run the phase in isolation (tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn merge_stars(
    trees: &[Node],
    num_stars: usize,
    runner: &QueryRunner<'_>,
    observer: Option<&dyn SynthesisObserver>,
) -> (UnionFind, MergeStats) {
    let mut checks: Vec<CheckSpec<'_>> = Vec::new();
    let plan = plan_merge_checks(trees, num_stars, &mut checks);
    let verdicts = runner.accepts_batch(&checks);
    apply_merge_verdicts(&plan, &verdicts, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::phase1::Phase1;
    use crate::runner::RunnerOptions;
    use crate::testing::{xml_like, xml_like_with_self_closing};
    use crate::tree::trees_to_grammar;
    use crate::FnOracle;
    use glade_grammar::Earley;

    fn runner<'s>(oracle: &'s dyn crate::Oracle, cache: &'s ShardedCache) -> QueryRunner<'s> {
        QueryRunner::new(oracle, cache, RunnerOptions { workers: 2, ..RunnerOptions::default() })
    }

    #[test]
    fn running_example_merges_and_nests() {
        // Figure 2 steps C1–C2: the two stars of (<a>(h+i)*</a>)* merge,
        // yielding the recursive grammar A → (<a>A</a>)* , A → (h+i)*.
        let oracle = FnOracle::new(xml_like);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"<a>hi</a>");
        let num_stars = p1.next_star_id();
        assert_eq!(num_stars, 2);

        let trees = vec![tree];
        let (mut uf, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(stats.pairs_tried, 1);
        assert_eq!(stats.merges_accepted, 1);

        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        // Recursion now expressible…
        assert!(e.accepts(b"<a><a>hi</a><a>hi</a></a>"));
        assert!(e.accepts(b"<a><a><a>h</a></a></a>"));
        // …and top-level letters.
        assert!(e.accepts(b"hihi"));
        // No overgeneralization.
        assert!(!e.accepts(b"<a><a>hi</a>"));
        assert!(!e.accepts(b"</a><a>"));
    }

    #[test]
    fn compatible_blocks_do_merge() {
        // Language x*y*: the cross-substitution checks (yyy and xxx) are
        // both valid, so the paper's heuristic merges the two stars —
        // a deliberate (if overgeneral) acceptance.
        let oracle = FnOracle::new(|i: &[u8]| {
            let split = i.iter().position(|&b| b == b'y').unwrap_or(i.len());
            i[..split].iter().all(|&b| b == b'x') && i[split..].iter().all(|&b| b == b'y')
        });
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"xy");
        let num_stars = p1.next_star_id();
        let trees = vec![tree];
        let (_, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(stats.merges_accepted, 1);
    }

    #[test]
    fn incompatible_stars_do_not_merge() {
        // Language a* x b*: substituting the b-star's residual into the
        // a-star's context yields "bbxb" (invalid) and vice versa, so the
        // merge checks reject the pair (the second candidate — keeping the
        // grammar unchanged — wins).
        let oracle = FnOracle::new(|i: &[u8]| {
            let Some(x) = i.iter().position(|&b| b == b'x') else { return false };
            i[..x].iter().all(|&b| b == b'a') && i[x + 1..].iter().all(|&b| b == b'b')
        });
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"axb");
        let num_stars = p1.next_star_id();
        let trees = vec![tree];
        let (mut uf, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert_eq!(stats.merges_accepted, 0);
        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        assert!(e.accepts(b"aaxbb"));
        assert!(e.accepts(b"x"));
        assert!(!e.accepts(b"bxa"));
        assert!(!e.accepts(b"abx"));
    }

    #[test]
    fn section7_greedy_limitation_single_seed() {
        // Section 7: with L* = XML-like extended by <a/>, the single seed
        // <a><a/></a> yields a suboptimal (but still valid) grammar whose
        // stars cannot merge, because the check ><a/ is invalid.
        let oracle = FnOracle::new(xml_like_with_self_closing);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let tree = p1.generalize_seed(b"<a><a/></a>");
        let num_stars = p1.next_star_id();
        let trees = vec![tree];
        let (mut uf, _) = merge_stars(&trees, num_stars, &runner, None);
        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        // The synthesized language is a valid subset…
        assert!(e.accepts(b"<a><a/></a>"));
        // …but greedy phase one misses the deep nesting of self-closing
        // tags inside doubly-nested elements.
        assert!(!e.accepts(b"<a><a><a/></a></a>"));
    }

    #[test]
    fn section7_recovery_with_two_seeds() {
        // Section 7 continued: seeds {<a/>, <a>hi</a>} recover the target.
        let oracle = FnOracle::new(xml_like_with_self_closing);
        let cache = ShardedCache::new();
        let runner = runner(&oracle, &cache);
        let mut p1 = Phase1::new(&runner, 0);
        let t1 = p1.generalize_seed(b"<a/>");
        let t2 = p1.generalize_seed(b"<a>hi</a>");
        let num_stars = p1.next_star_id();
        let trees = vec![t1, t2];
        let (mut uf, stats) = merge_stars(&trees, num_stars, &runner, None);
        assert!(stats.merges_accepted > 0);
        let g = trees_to_grammar(&trees, &mut uf);
        let e = Earley::new(&g);
        assert!(e.accepts(b"<a><a/></a>"));
        assert!(e.accepts(b"<a><a><a/>hi</a></a>"));
        assert!(!e.accepts(b"<a/></a>"));
    }
}
