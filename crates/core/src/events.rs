//! Synthesis progress events, observers, and cooperative cancellation.
//!
//! A [`Session`](crate::Session) run is observable: the engine emits
//! [`SynthEvent`]s at phase boundaries, per-seed decisions, accepted merges,
//! and every membership-query batch. Callers install a
//! [`SynthesisObserver`] through [`GladeBuilder::observer`]
//! (crate::GladeBuilder::observer) to drive progress bars, structured logs,
//! or live dashboards; [`EventLog`] is a ready-made collecting observer for
//! tests and small tools.
//!
//! Runs are also cancellable: a [`CancelToken`] is a cheap clonable handle
//! whose [`CancelToken::cancel`] flips an atomic flag the query engine
//! checks between membership-query batches. Cancellation takes the same
//! fail-closed degradation path as the query/time budget (pending checks
//! answer `false`, so pending generalizations collapse and pending merges
//! are skipped) — the run still returns a [`Synthesis`](crate::Synthesis)
//! whose grammar contains every seed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The pipeline stage an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthPhase {
    /// Phase one: per-seed regular-expression generalization (Section 4).
    Phase1,
    /// Character generalization (Section 6.2).
    CharGeneralization,
    /// Phase two: repetition merging (Section 5).
    Phase2,
}

impl std::fmt::Display for SynthPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthPhase::Phase1 => write!(f, "phase 1"),
            SynthPhase::CharGeneralization => write!(f, "character generalization"),
            SynthPhase::Phase2 => write!(f, "phase 2"),
        }
    }
}

/// A structured progress event emitted during synthesis.
///
/// The enum is `#[non_exhaustive]`: observers must carry a wildcard arm, so
/// future engine work can add event kinds without breaking downstream code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthEvent {
    /// A pipeline stage began.
    PhaseStarted {
        /// The stage.
        phase: SynthPhase,
    },
    /// A pipeline stage completed (including degraded completion after the
    /// budget ran out or the run was cancelled).
    PhaseFinished {
        /// The stage.
        phase: SynthPhase,
        /// Wall-clock time spent in the stage during this run.
        elapsed: Duration,
        /// Distinct membership queries cached so far (cumulative across the
        /// session).
        unique_queries: usize,
    },
    /// Phase one generalized a seed into a tree.
    SeedGeneralized {
        /// Index of the seed across the whole session, in submission order.
        seed_index: usize,
        /// Repetition subexpressions the seed contributed.
        new_stars: usize,
    },
    /// A seed was skipped by the Section 6.1 redundancy optimization (it
    /// was already matched by the disjunction of the regular expressions
    /// synthesized so far).
    SeedSkipped {
        /// Index of the seed across the whole session, in submission order.
        seed_index: usize,
    },
    /// Phase two accepted a merge: the two repetition subexpressions now
    /// share a nonterminal in the output grammar.
    MergeAccepted {
        /// Star id of the first (lower-id) repetition.
        left_star: usize,
        /// Star id of the second repetition.
        right_star: usize,
    },
    /// The query-reduction layer (see the `chargen.rs` module docs)
    /// eliminated provably-redundant membership checks this run: they were
    /// never handed to the query engine. Emitted once per
    /// [`add_seeds`](crate::Session::add_seeds) run, after both stages
    /// complete, when anything was elided.
    ProbesElided {
        /// Checks the one-shot planners would have posed that were elided
        /// (this run; see
        /// [`SynthesisStats::probes_elided`](crate::SynthesisStats::probes_elided)).
        elided: usize,
        /// Terminals whose byte classes were adopted from the memo table
        /// or an identical in-run sibling (this run; see
        /// [`SynthesisStats::memo_hits`](crate::SynthesisStats::memo_hits)).
        memo_hits: usize,
    },
    /// A membership-query batch completed.
    QueryBatch {
        /// Checks posed in the batch (before deduplication).
        checks: usize,
        /// Checks answered from the session cache.
        cached: usize,
        /// Distinct cache misses that obtained a real verdict from the
        /// oracle (misses skipped by the deadline/cancel, or whose
        /// execution failed, are excluded).
        posed: usize,
    },
    /// The oracle failed to *execute* one or more queries since the last
    /// batch (e.g. a [`ProcessOracle`](crate::ProcessOracle) could not be
    /// spawned, or a [`PooledProcessOracle`](crate::PooledProcessOracle)
    /// worker crashed beyond recovery). The affected checks answered a
    /// degraded `false`; the run continues but may under-generalize — see
    /// [`SynthesisStats::oracle_failures`](crate::SynthesisStats::oracle_failures).
    OracleFailures {
        /// Failures newly observed since the previous report.
        new_failures: usize,
        /// Cumulative failures observed during this run.
        run_failures: usize,
    },
    /// One or more oracle workers hung — accepted queries but never
    /// answered within the configured
    /// [`oracle_timeout`](crate::GladeBuilder::oracle_timeout) — and were
    /// killed. The abandoned queries took the ordinary crash-recovery path
    /// (retry, fallback, counted failure); see
    /// [`SynthesisStats::timed_out_queries`](crate::SynthesisStats::timed_out_queries).
    WorkerHung {
        /// Queries newly abandoned to the deadline since the previous
        /// report.
        new_timeouts: usize,
        /// Cumulative deadline-abandoned queries during this run.
        run_timeouts: usize,
    },
    /// A worker slot's circuit breaker tripped open after repeated
    /// spawn-or-crash failures: the pool stops respawning into that slot
    /// until a cool-down elapses, and queries route to the remaining
    /// workers or the fallback; see
    /// [`SynthesisStats::tripped_workers`](crate::SynthesisStats::tripped_workers).
    BreakerTripped {
        /// Breaker trips newly observed since the previous report.
        new_trips: usize,
        /// Cumulative breaker trips during this run.
        run_trips: usize,
    },
    /// A tripped worker slot's half-open probe succeeded after its
    /// cool-down: the breaker closed and the slot serves queries again.
    BreakerRecovered {
        /// Recoveries newly observed since the previous report.
        new_recoveries: usize,
        /// Cumulative breaker recoveries during this run.
        run_recoveries: usize,
    },
    /// The distinct-query or wall-clock budget ran out; every further check
    /// in this run answers `false` (fail closed).
    BudgetExhausted,
    /// The run's [`CancelToken`] was observed mid-run; remaining checks
    /// answer `false` (fail closed), like budget exhaustion.
    Cancelled,
}

/// Receives [`SynthEvent`]s during a synthesis run.
///
/// Observers must be `Send + Sync`: most events are emitted from the thread
/// driving the session, but budget/cancellation trips can be observed from
/// query worker threads. Implementations should return quickly — the engine
/// calls them inline on the query path.
pub trait SynthesisObserver: Send + Sync {
    /// Called once per event, in emission order per thread.
    fn on_event(&self, event: &SynthEvent);
}

impl<O: SynthesisObserver + ?Sized> SynthesisObserver for &O {
    fn on_event(&self, event: &SynthEvent) {
        (**self).on_event(event)
    }
}

impl<O: SynthesisObserver + ?Sized> SynthesisObserver for Arc<O> {
    fn on_event(&self, event: &SynthEvent) {
        (**self).on_event(event)
    }
}

impl<O: SynthesisObserver + ?Sized> SynthesisObserver for Box<O> {
    fn on_event(&self, event: &SynthEvent) {
        (**self).on_event(event)
    }
}

/// A [`SynthesisObserver`] that records every event in order.
///
/// # Examples
///
/// ```
/// use glade_core::{EventLog, GladeBuilder, FnOracle, SynthEvent};
/// use std::sync::Arc;
///
/// let log = Arc::new(EventLog::new());
/// let oracle = FnOracle::new(glade_core::testing::xml_like);
/// let mut session = GladeBuilder::new().observer(log.clone()).session(&oracle);
/// session.add_seeds(&[b"<a>hi</a>".to_vec()])?;
/// assert!(log.events().iter().any(|e| matches!(e, SynthEvent::MergeAccepted { .. })));
/// # Ok::<(), glade_core::SynthesisError>(())
/// ```
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<SynthEvent>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<SynthEvent> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// Whether no events were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("event log poisoned").clear();
    }
}

impl SynthesisObserver for EventLog {
    fn on_event(&self, event: &SynthEvent) {
        self.events.lock().expect("event log poisoned").push(event.clone());
    }
}

/// Cooperative cancellation handle for a synthesis run.
///
/// Clones share one flag. The query engine checks the token between
/// membership-query batches and between the queries of an in-flight batch;
/// once cancelled, remaining checks answer `false` without reaching the
/// oracle — the same fail-closed path as the deadline — so the run winds
/// down quickly and still returns a grammar containing every seed.
/// Cancellation is sticky: a cancelled token stays cancelled.
///
/// # Examples
///
/// ```
/// use glade_core::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "cancellation is idempotent");
    }

    #[test]
    fn cancel_token_crosses_threads() {
        let t = CancelToken::new();
        std::thread::scope(|s| {
            let h = t.clone();
            s.spawn(move || h.cancel());
        });
        assert!(t.is_cancelled());
    }

    #[test]
    fn event_log_records_in_order() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.on_event(&SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 });
        log.on_event(&SynthEvent::BudgetExhausted);
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0], SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 });
        assert_eq!(log.events()[1], SynthEvent::BudgetExhausted);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn observer_blanket_impls_compose() {
        fn takes_observer(o: &dyn SynthesisObserver) {
            o.on_event(&SynthEvent::Cancelled);
        }
        let log = EventLog::new();
        takes_observer(&log);
        let arc: Arc<dyn SynthesisObserver> = Arc::new(EventLog::new());
        takes_observer(&arc);
        let boxed: Box<dyn SynthesisObserver> = Box::new(EventLog::new());
        takes_observer(&boxed);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn phase_display_names() {
        assert_eq!(SynthPhase::Phase1.to_string(), "phase 1");
        assert_eq!(SynthPhase::CharGeneralization.to_string(), "character generalization");
        assert_eq!(SynthPhase::Phase2.to_string(), "phase 2");
    }
}
