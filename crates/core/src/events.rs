//! Synthesis progress events, observers, and cooperative cancellation.
//!
//! A [`Session`](crate::Session) run is observable: the engine emits
//! [`SynthEvent`]s at phase boundaries, per-seed decisions, accepted merges,
//! and every membership-query batch. Callers install a
//! [`SynthesisObserver`] through [`GladeBuilder::observer`]
//! (crate::GladeBuilder::observer) to drive progress bars, structured logs,
//! or live dashboards; [`EventLog`] is a ready-made collecting observer for
//! tests and small tools.
//!
//! Runs are also cancellable: a [`CancelToken`] is a cheap clonable handle
//! whose [`CancelToken::cancel`] flips an atomic flag the query engine
//! checks between membership-query batches. Cancellation takes the same
//! fail-closed degradation path as the query/time budget (pending checks
//! answer `false`, so pending generalizations collapse and pending merges
//! are skipped) — the run still returns a [`Synthesis`](crate::Synthesis)
//! whose grammar contains every seed.
//!
//! # Observer threading contract
//!
//! [`SynthesisObserver`] requires `Send + Sync`, and that requirement is
//! load-bearing: the engine emits most events from the thread driving
//! [`Session::add_seeds`](crate::Session::add_seeds), but `QueryBatch`,
//! `BudgetExhausted`, and `Cancelled` can be emitted from query worker
//! threads mid-batch, and server deployments (see [`serve`](crate::serve))
//! hold one observer per tenant in an `Arc` that is invoked from the
//! campaign thread while the serving dispatcher concurrently drains what
//! the observer produced. Implementations therefore must tolerate
//! concurrent `on_event` calls through `&self` — interior state belongs
//! behind a `Mutex` or atomics ([`EventLog`] is the reference
//! implementation), never in `Cell`/`RefCell`. Observers installed through
//! [`GladeBuilder::observer`](crate::GladeBuilder::observer) are wrapped in
//! an `Arc` automatically; callers that already hold an
//! `Arc<dyn SynthesisObserver>` should pass it via
//! [`GladeBuilder::observer_shared`](crate::GladeBuilder::observer_shared)
//! so the same instance (not a re-wrapped clone of the handle) is shared
//! between the session and the code inspecting it.
//!
//! # Wire lines
//!
//! Events cross process boundaries as **wire lines** — a compact,
//! line-oriented text serialization with one stable lowercase tag per
//! variant ([`SynthEvent::to_wire_line`] /
//! [`SynthEvent::from_wire_line`]). The `glade serve` event stream and
//! `glade synth --events` both speak it. Because [`SynthEvent`] is
//! `#[non_exhaustive]`, both directions are future-proof: a serializer
//! built against an older library emits `unknown` for variants it does not
//! know, and a parser returns `Ok(None)` for tags it does not recognize —
//! readers skip unknown events instead of failing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The pipeline stage an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthPhase {
    /// Phase one: per-seed regular-expression generalization (Section 4).
    Phase1,
    /// Character generalization (Section 6.2).
    CharGeneralization,
    /// Phase two: repetition merging (Section 5).
    Phase2,
}

impl std::fmt::Display for SynthPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthPhase::Phase1 => write!(f, "phase 1"),
            SynthPhase::CharGeneralization => write!(f, "character generalization"),
            SynthPhase::Phase2 => write!(f, "phase 2"),
        }
    }
}

/// A structured progress event emitted during synthesis.
///
/// The enum is `#[non_exhaustive]`: observers must carry a wildcard arm, so
/// future engine work can add event kinds without breaking downstream code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthEvent {
    /// A pipeline stage began.
    PhaseStarted {
        /// The stage.
        phase: SynthPhase,
    },
    /// A pipeline stage completed (including degraded completion after the
    /// budget ran out or the run was cancelled).
    PhaseFinished {
        /// The stage.
        phase: SynthPhase,
        /// Wall-clock time spent in the stage during this run.
        elapsed: Duration,
        /// Distinct membership queries cached so far (cumulative across the
        /// session).
        unique_queries: usize,
    },
    /// Phase one generalized a seed into a tree.
    SeedGeneralized {
        /// Index of the seed across the whole session, in submission order.
        seed_index: usize,
        /// Repetition subexpressions the seed contributed.
        new_stars: usize,
    },
    /// A seed was skipped by the Section 6.1 redundancy optimization (it
    /// was already matched by the disjunction of the regular expressions
    /// synthesized so far).
    SeedSkipped {
        /// Index of the seed across the whole session, in submission order.
        seed_index: usize,
    },
    /// Phase two accepted a merge: the two repetition subexpressions now
    /// share a nonterminal in the output grammar.
    MergeAccepted {
        /// Star id of the first (lower-id) repetition.
        left_star: usize,
        /// Star id of the second repetition.
        right_star: usize,
    },
    /// The query-reduction layer (see the `chargen.rs` module docs)
    /// eliminated provably-redundant membership checks this run: they were
    /// never handed to the query engine. Emitted once per
    /// [`add_seeds`](crate::Session::add_seeds) run, after both stages
    /// complete, when anything was elided.
    ProbesElided {
        /// Checks the one-shot planners would have posed that were elided
        /// (this run; see
        /// [`SynthesisStats::probes_elided`](crate::SynthesisStats::probes_elided)).
        elided: usize,
        /// Terminals whose byte classes were adopted from the memo table
        /// or an identical in-run sibling (this run; see
        /// [`SynthesisStats::memo_hits`](crate::SynthesisStats::memo_hits)).
        memo_hits: usize,
    },
    /// A membership-query batch completed.
    QueryBatch {
        /// Checks posed in the batch (before deduplication).
        checks: usize,
        /// Checks answered from the session cache.
        cached: usize,
        /// Distinct cache misses that obtained a real verdict from the
        /// oracle (misses skipped by the deadline/cancel, or whose
        /// execution failed, are excluded).
        posed: usize,
    },
    /// The oracle failed to *execute* one or more queries since the last
    /// batch (e.g. a [`ProcessOracle`](crate::ProcessOracle) could not be
    /// spawned, or a [`PooledProcessOracle`](crate::PooledProcessOracle)
    /// worker crashed beyond recovery). The affected checks answered a
    /// degraded `false`; the run continues but may under-generalize — see
    /// [`SynthesisStats::oracle_failures`](crate::SynthesisStats::oracle_failures).
    OracleFailures {
        /// Failures newly observed since the previous report.
        new_failures: usize,
        /// Cumulative failures observed during this run.
        run_failures: usize,
    },
    /// One or more oracle workers hung — accepted queries but never
    /// answered within the configured
    /// [`oracle_timeout`](crate::GladeBuilder::oracle_timeout) — and were
    /// killed. The abandoned queries took the ordinary crash-recovery path
    /// (retry, fallback, counted failure); see
    /// [`SynthesisStats::timed_out_queries`](crate::SynthesisStats::timed_out_queries).
    WorkerHung {
        /// Queries newly abandoned to the deadline since the previous
        /// report.
        new_timeouts: usize,
        /// Cumulative deadline-abandoned queries during this run.
        run_timeouts: usize,
    },
    /// A worker slot's circuit breaker tripped open after repeated
    /// spawn-or-crash failures: the pool stops respawning into that slot
    /// until a cool-down elapses, and queries route to the remaining
    /// workers or the fallback; see
    /// [`SynthesisStats::tripped_workers`](crate::SynthesisStats::tripped_workers).
    BreakerTripped {
        /// Breaker trips newly observed since the previous report.
        new_trips: usize,
        /// Cumulative breaker trips during this run.
        run_trips: usize,
    },
    /// A tripped worker slot's half-open probe succeeded after its
    /// cool-down: the breaker closed and the slot serves queries again.
    BreakerRecovered {
        /// Recoveries newly observed since the previous report.
        new_recoveries: usize,
        /// Cumulative breaker recoveries during this run.
        run_recoveries: usize,
    },
    /// The distinct-query or wall-clock budget ran out; every further check
    /// in this run answers `false` (fail closed).
    BudgetExhausted,
    /// The run's [`CancelToken`] was observed mid-run; remaining checks
    /// answer `false` (fail closed), like budget exhaustion.
    Cancelled,
    /// A `glade serve` connection fell so far behind reading its event
    /// stream that the server's bounded per-connection event queue
    /// overflowed: the queued events were discarded and the connection was
    /// demoted to result-only delivery (see the serve module's
    /// backpressure docs). Emitted by the server, never by the local
    /// engine; it precedes the run's `RESULT` so the reader learns how
    /// much of the stream it missed.
    EventsDropped {
        /// Events discarded since the stream was last healthy.
        dropped: usize,
    },
}

impl SynthPhase {
    /// The stable wire token for this phase (`phase1`, `chargen`, `phase2`).
    ///
    /// Unlike [`Display`](std::fmt::Display) (a human-facing label that may
    /// change), wire tokens are frozen: parsers on either side of a version
    /// skew can rely on them.
    pub fn wire_token(&self) -> &'static str {
        match self {
            SynthPhase::Phase1 => "phase1",
            SynthPhase::CharGeneralization => "chargen",
            SynthPhase::Phase2 => "phase2",
        }
    }

    fn from_wire_token(token: &str) -> Option<SynthPhase> {
        match token {
            "phase1" => Some(SynthPhase::Phase1),
            "chargen" => Some(SynthPhase::CharGeneralization),
            "phase2" => Some(SynthPhase::Phase2),
            _ => None,
        }
    }
}

/// A wire line failed to parse as a known [`SynthEvent`].
///
/// Only *malformed* lines error — a well-formed line whose leading tag is
/// simply unknown parses to `Ok(None)` (see
/// [`SynthEvent::from_wire_line`]), so newer peers can emit event kinds an
/// older reader skips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLineError {
    line: String,
    reason: &'static str,
}

impl EventLineError {
    fn new(line: &str, reason: &'static str) -> Self {
        EventLineError { line: line.to_string(), reason }
    }

    /// The offending line, verbatim.
    pub fn line(&self) -> &str {
        &self.line
    }
}

impl std::fmt::Display for EventLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed event line ({}): {:?}", self.reason, self.line)
    }
}

impl std::error::Error for EventLineError {}

impl SynthEvent {
    /// Serializes the event as a single compact wire line (no trailing
    /// newline).
    ///
    /// The format is one stable lowercase tag followed by space-separated
    /// decimal fields; durations travel as nanoseconds so a round trip is
    /// exact. Because the enum is `#[non_exhaustive]`, variants this build
    /// does not know how to serialize come out as the literal line
    /// `unknown` — parseable by every peer, skipped by
    /// [`from_wire_line`](SynthEvent::from_wire_line).
    pub fn to_wire_line(&self) -> String {
        match self {
            SynthEvent::PhaseStarted { phase } => {
                format!("phase-started {}", phase.wire_token())
            }
            SynthEvent::PhaseFinished { phase, elapsed, unique_queries } => format!(
                "phase-finished {} {} {}",
                phase.wire_token(),
                elapsed.as_nanos(),
                unique_queries
            ),
            SynthEvent::SeedGeneralized { seed_index, new_stars } => {
                format!("seed-generalized {seed_index} {new_stars}")
            }
            SynthEvent::SeedSkipped { seed_index } => format!("seed-skipped {seed_index}"),
            SynthEvent::MergeAccepted { left_star, right_star } => {
                format!("merge-accepted {left_star} {right_star}")
            }
            SynthEvent::ProbesElided { elided, memo_hits } => {
                format!("probes-elided {elided} {memo_hits}")
            }
            SynthEvent::QueryBatch { checks, cached, posed } => {
                format!("query-batch {checks} {cached} {posed}")
            }
            SynthEvent::OracleFailures { new_failures, run_failures } => {
                format!("oracle-failures {new_failures} {run_failures}")
            }
            SynthEvent::WorkerHung { new_timeouts, run_timeouts } => {
                format!("worker-hung {new_timeouts} {run_timeouts}")
            }
            SynthEvent::BreakerTripped { new_trips, run_trips } => {
                format!("breaker-tripped {new_trips} {run_trips}")
            }
            SynthEvent::BreakerRecovered { new_recoveries, run_recoveries } => {
                format!("breaker-recovered {new_recoveries} {run_recoveries}")
            }
            SynthEvent::BudgetExhausted => "budget-exhausted".to_string(),
            SynthEvent::Cancelled => "cancelled".to_string(),
            SynthEvent::EventsDropped { dropped } => format!("events-dropped {dropped}"),
            // `#[non_exhaustive]` forward arm: a newer engine variant this
            // serializer predates still produces a valid, skippable line.
            #[allow(unreachable_patterns)]
            _ => "unknown".to_string(),
        }
    }

    /// Parses a wire line produced by
    /// [`to_wire_line`](SynthEvent::to_wire_line).
    ///
    /// Returns `Ok(Some(event))` for a recognized line, `Ok(None)` for a
    /// well-formed line with an unrecognized tag (forward compatibility:
    /// skip it), and `Err` only for lines whose *known* tag carries
    /// malformed fields. Leading/trailing ASCII whitespace is ignored; an
    /// empty line is malformed.
    pub fn from_wire_line(line: &str) -> Result<Option<SynthEvent>, EventLineError> {
        let mut fields = line.split_ascii_whitespace();
        let tag = fields.next().ok_or_else(|| EventLineError::new(line, "empty line"))?;

        // Helpers keep each arm to "grab N fields, demand exhaustion".
        macro_rules! field {
            ($what:expr) => {
                fields.next().ok_or_else(|| EventLineError::new(line, $what))?
            };
        }
        macro_rules! num {
            ($what:expr) => {
                field!($what).parse::<usize>().map_err(|_| EventLineError::new(line, $what))?
            };
        }
        macro_rules! phase {
            () => {{
                let token = field!("missing phase token");
                SynthPhase::from_wire_token(token)
                    .ok_or_else(|| EventLineError::new(line, "unknown phase token"))?
            }};
        }

        let event = match tag {
            "phase-started" => SynthEvent::PhaseStarted { phase: phase!() },
            "phase-finished" => {
                let phase = phase!();
                let nanos = field!("missing elapsed nanoseconds")
                    .parse::<u64>()
                    .map_err(|_| EventLineError::new(line, "bad elapsed nanoseconds"))?;
                SynthEvent::PhaseFinished {
                    phase,
                    elapsed: Duration::from_nanos(nanos),
                    unique_queries: num!("bad unique-query count"),
                }
            }
            "seed-generalized" => SynthEvent::SeedGeneralized {
                seed_index: num!("bad seed index"),
                new_stars: num!("bad star count"),
            },
            "seed-skipped" => SynthEvent::SeedSkipped { seed_index: num!("bad seed index") },
            "merge-accepted" => SynthEvent::MergeAccepted {
                left_star: num!("bad left star id"),
                right_star: num!("bad right star id"),
            },
            "probes-elided" => SynthEvent::ProbesElided {
                elided: num!("bad elided count"),
                memo_hits: num!("bad memo-hit count"),
            },
            "query-batch" => SynthEvent::QueryBatch {
                checks: num!("bad check count"),
                cached: num!("bad cached count"),
                posed: num!("bad posed count"),
            },
            "oracle-failures" => SynthEvent::OracleFailures {
                new_failures: num!("bad new-failure count"),
                run_failures: num!("bad run-failure count"),
            },
            "worker-hung" => SynthEvent::WorkerHung {
                new_timeouts: num!("bad new-timeout count"),
                run_timeouts: num!("bad run-timeout count"),
            },
            "breaker-tripped" => SynthEvent::BreakerTripped {
                new_trips: num!("bad new-trip count"),
                run_trips: num!("bad run-trip count"),
            },
            "breaker-recovered" => SynthEvent::BreakerRecovered {
                new_recoveries: num!("bad new-recovery count"),
                run_recoveries: num!("bad run-recovery count"),
            },
            "budget-exhausted" => SynthEvent::BudgetExhausted,
            "cancelled" => SynthEvent::Cancelled,
            "events-dropped" => SynthEvent::EventsDropped { dropped: num!("bad dropped count") },
            // Unknown tag from a newer peer: well-formed, skip it.
            _ => return Ok(None),
        };
        if fields.next().is_some() {
            return Err(EventLineError::new(line, "trailing fields"));
        }
        Ok(Some(event))
    }

    /// Whether this event is a *query tally* — a high-frequency progress
    /// ticker where only the most recent sample matters to a live reader.
    /// `glade serve` collapses consecutive tallies in a slow connection's
    /// bounded event queue (the newest replaces the queued one); every
    /// other kind is a lifecycle event and is never coalesced.
    pub fn is_query_tally(&self) -> bool {
        matches!(self, SynthEvent::QueryBatch { .. })
    }
}

/// Receives [`SynthEvent`]s during a synthesis run.
///
/// Observers must be `Send + Sync`: most events are emitted from the thread
/// driving the session, but budget/cancellation trips can be observed from
/// query worker threads. Implementations should return quickly — the engine
/// calls them inline on the query path.
pub trait SynthesisObserver: Send + Sync {
    /// Called once per event, in emission order per thread.
    fn on_event(&self, event: &SynthEvent);
}

impl<O: SynthesisObserver + ?Sized> SynthesisObserver for &O {
    fn on_event(&self, event: &SynthEvent) {
        (**self).on_event(event)
    }
}

impl<O: SynthesisObserver + ?Sized> SynthesisObserver for Arc<O> {
    fn on_event(&self, event: &SynthEvent) {
        (**self).on_event(event)
    }
}

impl<O: SynthesisObserver + ?Sized> SynthesisObserver for Box<O> {
    fn on_event(&self, event: &SynthEvent) {
        (**self).on_event(event)
    }
}

/// A [`SynthesisObserver`] that records every event in order.
///
/// # Examples
///
/// ```
/// use glade_core::{EventLog, GladeBuilder, FnOracle, SynthEvent};
/// use std::sync::Arc;
///
/// let log = Arc::new(EventLog::new());
/// let oracle = FnOracle::new(glade_core::testing::xml_like);
/// let mut session = GladeBuilder::new().observer(log.clone()).session(&oracle);
/// session.add_seeds(&[b"<a>hi</a>".to_vec()])?;
/// assert!(log.events().iter().any(|e| matches!(e, SynthEvent::MergeAccepted { .. })));
/// # Ok::<(), glade_core::SynthesisError>(())
/// ```
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<SynthEvent>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<SynthEvent> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// Whether no events were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("event log poisoned").clear();
    }
}

impl SynthesisObserver for EventLog {
    fn on_event(&self, event: &SynthEvent) {
        self.events.lock().expect("event log poisoned").push(event.clone());
    }
}

/// Cooperative cancellation handle for a synthesis run.
///
/// Clones share one flag. The query engine checks the token between
/// membership-query batches and between the queries of an in-flight batch;
/// once cancelled, remaining checks answer `false` without reaching the
/// oracle — the same fail-closed path as the deadline — so the run winds
/// down quickly and still returns a grammar containing every seed.
/// Cancellation is sticky: a cancelled token stays cancelled.
///
/// # Examples
///
/// ```
/// use glade_core::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "cancellation is idempotent");
    }

    #[test]
    fn cancel_token_crosses_threads() {
        let t = CancelToken::new();
        std::thread::scope(|s| {
            let h = t.clone();
            s.spawn(move || h.cancel());
        });
        assert!(t.is_cancelled());
    }

    #[test]
    fn event_log_records_in_order() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.on_event(&SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 });
        log.on_event(&SynthEvent::BudgetExhausted);
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0], SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 });
        assert_eq!(log.events()[1], SynthEvent::BudgetExhausted);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn observer_blanket_impls_compose() {
        fn takes_observer(o: &dyn SynthesisObserver) {
            o.on_event(&SynthEvent::Cancelled);
        }
        let log = EventLog::new();
        takes_observer(&log);
        let arc: Arc<dyn SynthesisObserver> = Arc::new(EventLog::new());
        takes_observer(&arc);
        let boxed: Box<dyn SynthesisObserver> = Box::new(EventLog::new());
        takes_observer(&boxed);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn phase_display_names() {
        assert_eq!(SynthPhase::Phase1.to_string(), "phase 1");
        assert_eq!(SynthPhase::CharGeneralization.to_string(), "character generalization");
        assert_eq!(SynthPhase::Phase2.to_string(), "phase 2");
    }

    fn every_event() -> Vec<SynthEvent> {
        vec![
            SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 },
            SynthEvent::PhaseFinished {
                phase: SynthPhase::CharGeneralization,
                elapsed: Duration::from_nanos(1_234_567_891),
                unique_queries: 965,
            },
            SynthEvent::SeedGeneralized { seed_index: 3, new_stars: 2 },
            SynthEvent::SeedSkipped { seed_index: 7 },
            SynthEvent::MergeAccepted { left_star: 0, right_star: 5 },
            SynthEvent::ProbesElided { elided: 41, memo_hits: 12 },
            SynthEvent::QueryBatch { checks: 100, cached: 30, posed: 70 },
            SynthEvent::OracleFailures { new_failures: 1, run_failures: 4 },
            SynthEvent::WorkerHung { new_timeouts: 2, run_timeouts: 2 },
            SynthEvent::BreakerTripped { new_trips: 1, run_trips: 3 },
            SynthEvent::BreakerRecovered { new_recoveries: 1, run_recoveries: 1 },
            SynthEvent::BudgetExhausted,
            SynthEvent::Cancelled,
            SynthEvent::EventsDropped { dropped: 512 },
        ]
    }

    #[test]
    fn query_tally_classification_is_stable() {
        for event in every_event() {
            let expect = matches!(event, SynthEvent::QueryBatch { .. });
            assert_eq!(event.is_query_tally(), expect, "classification for {event:?}");
        }
    }

    #[test]
    fn wire_line_round_trips_every_variant() {
        for event in every_event() {
            let line = event.to_wire_line();
            assert!(!line.contains('\n'), "wire lines are single lines: {line:?}");
            let back = SynthEvent::from_wire_line(&line)
                .unwrap_or_else(|e| panic!("parse failed: {e}"))
                .unwrap_or_else(|| panic!("known line parsed as unknown: {line:?}"));
            assert_eq!(back, event, "round trip changed the event for {line:?}");
        }
    }

    #[test]
    fn wire_line_phase_tokens_are_stable() {
        assert_eq!(
            SynthEvent::PhaseStarted { phase: SynthPhase::Phase1 }.to_wire_line(),
            "phase-started phase1"
        );
        assert_eq!(
            SynthEvent::PhaseStarted { phase: SynthPhase::CharGeneralization }.to_wire_line(),
            "phase-started chargen"
        );
        assert_eq!(
            SynthEvent::PhaseStarted { phase: SynthPhase::Phase2 }.to_wire_line(),
            "phase-started phase2"
        );
    }

    #[test]
    fn wire_line_unknown_tags_are_skipped_not_errors() {
        assert_eq!(SynthEvent::from_wire_line("unknown"), Ok(None));
        assert_eq!(SynthEvent::from_wire_line("grammar-minimized 3 4 5"), Ok(None));
        assert_eq!(SynthEvent::from_wire_line("  some-future-event with words  "), Ok(None));
    }

    #[test]
    fn wire_line_malformed_known_tags_error() {
        for bad in [
            "",
            "   ",
            "phase-started",
            "phase-started phase9",
            "phase-finished phase1 notanumber 5",
            "phase-finished phase1 5",
            "seed-skipped",
            "seed-skipped -1",
            "query-batch 1 2",
            "query-batch 1 2 3 4",
            "cancelled extra",
        ] {
            assert!(
                SynthEvent::from_wire_line(bad).is_err(),
                "expected malformed-line error for {bad:?}"
            );
        }
    }

    #[test]
    fn wire_line_tolerates_surrounding_whitespace() {
        let parsed = SynthEvent::from_wire_line("  seed-skipped 7 \t").unwrap();
        assert_eq!(parsed, Some(SynthEvent::SeedSkipped { seed_index: 7 }));
    }

    #[test]
    fn event_line_error_reports_the_line() {
        let err = SynthEvent::from_wire_line("query-batch x y z").unwrap_err();
        assert_eq!(err.line(), "query-batch x y z");
        assert!(err.to_string().contains("query-batch"));
    }
}
