//! Persistent membership-query cache snapshots.
//!
//! The paper measures synthesis cost purely in oracle calls, and for real
//! targets each distinct call runs the program under test. A multi-target
//! campaign or a repeated `eval`/`bench` run re-pays that cost from zero on
//! every process start — unless the query cache survives the process. This
//! module defines a stable, line-oriented snapshot format (in the same
//! spirit as `glade_grammar::text`'s grammar format) with full
//! round-tripping:
//!
//! ```text
//! glade-cache v2
//! oracle 70726f636573733a786d6c6c696e74
//! q 1 3c613e68693c2f613e
//! q 0 3c613e3c2f613e
//! ```
//!
//! Each `q` line is one cached verdict: `1`/`0` for accept/reject followed
//! by the query bytes hex-encoded (queries are arbitrary byte strings, so
//! no text escaping scheme is safe). Entries are written sorted by query
//! bytes, making snapshots byte-stable for identical caches regardless of
//! insertion order.
//!
//! A snapshot is only meaningful for the oracle that produced it: verdicts
//! are facts about one target language, and replaying them against a
//! different target silently corrupts synthesis. The **v2** format
//! therefore carries an optional `oracle` directive — a caller-supplied
//! fingerprint string (hex-encoded UTF-8; e.g.
//! [`ProcessOracle::fingerprint`](crate::ProcessOracle::fingerprint) for
//! process oracles, a target name for in-process ones). A session
//! configured with
//! [`GladeBuilder::oracle_fingerprint`](crate::GladeBuilder::oracle_fingerprint)
//! writes the directive into its
//! snapshots and **rejects** loading a snapshot whose fingerprint differs
//! ([`CacheError::OracleMismatch`]). Version-1 snapshots (no fingerprint)
//! still load everywhere; fingerprint-less sessions load anything.
//!
//! The **v3** format additionally persists the byte-class memo table of
//! the query-reduction layer (see `memo.rs`) through `m` directives:
//!
//! ```text
//! glade-cache v3
//! m 00112233445566778899aabbccddeeff 68,69
//! q 1 3c613e68693c2f613e
//! ```
//!
//! Each `m` line carries a 128-bit [`memo key`](crate::MemoEntry) as 32
//! hex digits, then the learned per-position byte classes as a
//! comma-separated list of hex-encoded member-byte sets. A loaded memo
//! entry lets a later session skip *every* probe of a terminal it has
//! already generalized. [`snapshot_to_text_with_memo`] only emits the v3
//! header when memo entries are present, so sessions that never memoize —
//! or pre-memo consumers re-serializing old snapshots — keep producing
//! byte-identical v1/v2 output, and v1/v2 snapshots load unchanged
//! (`memo: []`).
//!
//! [`Session::save_cache`](crate::Session::save_cache) and
//! [`Session::load_cache`](crate::Session::load_cache) wrap this format
//! with file I/O; [`cache_to_text`], [`cache_from_text`], and the
//! fingerprint-aware [`CacheSnapshot`] round-trip expose the text layer
//! directly.

use glade_grammar::CharClass;
use std::fmt::Write as _;
use std::path::Path;

/// Errors from loading a cache snapshot.
///
/// `#[non_exhaustive]`: future format revisions may add variants.
#[derive(Debug)]
#[non_exhaustive]
pub enum CacheError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The header line is missing or names an unsupported version.
    BadHeader,
    /// A line does not match any directive.
    BadLine(usize),
    /// A directive has a malformed verdict or hex field.
    BadField(usize),
    /// The snapshot was produced by a different oracle than the session is
    /// using: replaying its verdicts would silently corrupt synthesis.
    OracleMismatch {
        /// The fingerprint recorded in the snapshot.
        snapshot: String,
        /// The fingerprint the session expects.
        expected: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache snapshot i/o error: {e}"),
            CacheError::BadHeader => write!(f, "missing or unsupported cache header"),
            CacheError::BadLine(n) => write!(f, "unrecognized cache directive on line {n}"),
            CacheError::BadField(n) => write!(f, "malformed cache field on line {n}"),
            CacheError::OracleMismatch { snapshot, expected } => write!(
                f,
                "cache snapshot was produced by a different oracle \
                 (snapshot fingerprint {snapshot:?}, expected {expected:?})"
            ),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// A parsed cache snapshot: the cached verdicts plus the optional oracle
/// fingerprint the snapshot was tagged with (v2+ snapshots only; v1
/// snapshots parse with `oracle_fingerprint: None`) and the byte-class
/// memo entries (v3 snapshots only; older snapshots parse with an empty
/// `memo`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Identity of the oracle the verdicts are facts about, when recorded.
    pub oracle_fingerprint: Option<String>,
    /// The cached `(query, verdict)` entries.
    pub entries: Vec<(Vec<u8>, bool)>,
    /// Persisted byte-class memo entries (empty for v1/v2 snapshots).
    pub memo: Vec<MemoEntry>,
}

/// One persisted byte-class memo entry: a memoized character-generalization
/// result keyed by the 128-bit fingerprint of its problem instance
/// (terminal bytes, contexts, candidate alphabet — computed internally by
/// the query-reduction layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoEntry {
    /// The fingerprint, big-endian.
    pub key: [u8; 16],
    /// The learned byte class of each terminal position.
    pub classes: Vec<CharClass>,
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
}

/// Serializes `(query, verdict)` entries to snapshot text, tagged with an
/// oracle fingerprint when one is supplied.
///
/// With a fingerprint the `glade-cache v2` format is written (header,
/// `oracle` directive, sorted `q` lines); without one the output is a
/// plain v1 snapshot, readable by any consumer of the original format.
/// Entries are sorted by query bytes first, so equal caches serialize to
/// byte-identical snapshots.
pub fn snapshot_to_text(entries: &[(Vec<u8>, bool)], oracle_fingerprint: Option<&str>) -> String {
    snapshot_to_text_with_memo(entries, &[], oracle_fingerprint)
}

/// Serializes `(query, verdict)` entries plus byte-class memo entries to
/// snapshot text.
///
/// With memo entries present the `glade-cache v3` format is written
/// (header, optional `oracle` directive, `m` lines sorted by key, `q`
/// lines sorted by query bytes); with an empty `memo` the output is
/// byte-identical to [`snapshot_to_text`]'s v1/v2, so memo-free sessions
/// keep producing snapshots every historical consumer can read.
pub fn snapshot_to_text_with_memo(
    entries: &[(Vec<u8>, bool)],
    memo: &[MemoEntry],
    oracle_fingerprint: Option<&str>,
) -> String {
    let mut sorted: Vec<&(Vec<u8>, bool)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    match (memo.is_empty(), oracle_fingerprint) {
        (false, fp) => {
            out.push_str("glade-cache v3\n");
            if let Some(fp) = fp {
                out.push_str("oracle ");
                push_hex(&mut out, fp.as_bytes());
                out.push('\n');
            }
        }
        (true, Some(fp)) => {
            out.push_str("glade-cache v2\n");
            out.push_str("oracle ");
            push_hex(&mut out, fp.as_bytes());
            out.push('\n');
        }
        (true, None) => out.push_str("glade-cache v1\n"),
    }
    let mut memo_sorted: Vec<&MemoEntry> = memo.iter().collect();
    memo_sorted.sort_by_key(|a| a.key);
    for entry in memo_sorted {
        out.push_str("m ");
        push_hex(&mut out, &entry.key);
        out.push(' ');
        for (i, class) in entry.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let members: Vec<u8> = class.iter().collect();
            push_hex(&mut out, &members);
        }
        out.push('\n');
    }
    for (query, verdict) in sorted {
        let _ = write!(out, "q {} ", u8::from(*verdict));
        push_hex(&mut out, query);
        out.push('\n');
    }
    out
}

/// Serializes `(query, verdict)` entries to the v1 snapshot text (no
/// oracle fingerprint). Equivalent to [`snapshot_to_text`] with `None`.
pub fn cache_to_text(entries: &[(Vec<u8>, bool)]) -> String {
    snapshot_to_text(entries, None)
}

/// Parses snapshot text (v1, v2, or v3) into a [`CacheSnapshot`].
///
/// # Errors
///
/// Returns a [`CacheError`] describing the first malformed line. (Oracle
/// fingerprints are parsed, never *checked*, here — matching is the
/// loading session's policy, see
/// [`Session::import_cache`](crate::Session::import_cache).)
pub fn snapshot_from_text(text: &str) -> Result<CacheSnapshot, CacheError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(CacheError::BadHeader);
    };
    let version: u8 = match header.trim() {
        "glade-cache v1" => 1,
        "glade-cache v2" => 2,
        "glade-cache v3" => 3,
        _ => return Err(CacheError::BadHeader),
    };
    let mut fingerprint: Option<String> = None;
    let mut entries = Vec::new();
    let mut memo = Vec::new();
    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(hex) = line.strip_prefix("oracle ") {
            // The directive is v2+-only and at most one is meaningful.
            if version < 2 || fingerprint.is_some() {
                return Err(CacheError::BadLine(lineno));
            }
            let bytes = decode_hex(hex, lineno)?;
            fingerprint = Some(String::from_utf8(bytes).map_err(|_| CacheError::BadField(lineno))?);
            continue;
        }
        if let Some(rest) = line.strip_prefix("m ") {
            // Memo entries are v3-only.
            if version < 3 {
                return Err(CacheError::BadLine(lineno));
            }
            let Some((key_hex, classes_hex)) = rest.split_once(' ') else {
                return Err(CacheError::BadField(lineno));
            };
            let key_bytes = decode_hex(key_hex, lineno)?;
            let key: [u8; 16] = key_bytes.try_into().map_err(|_| CacheError::BadField(lineno))?;
            let mut classes = Vec::new();
            for class_hex in classes_hex.split(',') {
                // A learned class always contains at least the original
                // byte; an empty member set marks a corrupted snapshot.
                if class_hex.is_empty() {
                    return Err(CacheError::BadField(lineno));
                }
                classes.push(CharClass::from_bytes(&decode_hex(class_hex, lineno)?));
            }
            memo.push(MemoEntry { key, classes });
            continue;
        }
        let Some(rest) = line.strip_prefix("q ") else {
            return Err(CacheError::BadLine(lineno));
        };
        let (verdict, hex) = match rest.split_once(' ') {
            Some((v, h)) => (v, h),
            // An empty query has no hex field ("q 1").
            None => (rest, ""),
        };
        let verdict = match verdict {
            "0" => false,
            "1" => true,
            _ => return Err(CacheError::BadField(lineno)),
        };
        entries.push((decode_hex(hex, lineno)?, verdict));
    }
    Ok(CacheSnapshot { oracle_fingerprint: fingerprint, entries, memo })
}

/// Parses snapshot text (v1, v2, or v3) back into `(query, verdict)`
/// entries, discarding any oracle fingerprint and memo entries.
///
/// # Errors
///
/// Returns a [`CacheError`] describing the first malformed line.
pub fn cache_from_text(text: &str) -> Result<Vec<(Vec<u8>, bool)>, CacheError> {
    snapshot_from_text(text).map(|s| s.entries)
}

/// Durably replaces `path` with `bytes` via `tmp`: write the temporary
/// file, `fsync` it, rename it over `path`, then `fsync` the containing
/// directory so the rename itself survives power loss. Without the first
/// sync an atomic rename can still publish a *truncated* snapshot (the
/// rename's metadata can reach disk before the tmp file's data); without
/// the second the rename may simply vanish on crash, which is safe but
/// loses the save. Used by every cache/journal save path that must never
/// leave a torn file behind.
pub(crate) fn write_durable(path: &Path, tmp: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let result = (|| {
        let mut file = std::fs::File::create(tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
        std::fs::rename(tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(tmp);
        return result;
    }
    fsync_dir_of(path)
}

/// Fsyncs the directory containing `path` (best effort on platforms or
/// filesystems where directories cannot be opened for sync).
pub(crate) fn fsync_dir_of(path: &Path) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    match std::fs::File::open(dir) {
        Ok(handle) => handle.sync_all(),
        // A directory that cannot be opened (exotic fs) degrades to the
        // pre-durability behavior rather than failing the save.
        Err(_) => Ok(()),
    }
}

/// Decodes one hex field, byte-wise (not via `str` slicing, which would
/// panic on a corrupted snapshot containing multi-byte UTF-8).
fn decode_hex(hex: &str, lineno: usize) -> Result<Vec<u8>, CacheError> {
    if !hex.len().is_multiple_of(2) {
        return Err(CacheError::BadField(lineno));
    }
    let nibble = |b: u8| -> Result<u8, CacheError> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(CacheError::BadField(lineno)),
        }
    };
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_entries() {
        let entries = vec![
            (b"<a>hi</a>".to_vec(), true),
            (b"".to_vec(), true),
            (b"<a>".to_vec(), false),
            (vec![0x00, 0xff, 0x0a], false),
        ];
        let text = cache_to_text(&entries);
        let mut parsed = cache_from_text(&text).expect("roundtrip parses");
        parsed.sort();
        let mut expected = entries.clone();
        expected.sort();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let a = vec![(b"bb".to_vec(), true), (b"aa".to_vec(), false)];
        let b = vec![(b"aa".to_vec(), false), (b"bb".to_vec(), true)];
        let ta = cache_to_text(&a);
        assert_eq!(ta, cache_to_text(&b), "insertion order must not matter");
        assert_eq!(ta, "glade-cache v1\nq 0 6161\nq 1 6262\n");
        // Idempotent through a second roundtrip.
        let reparsed = cache_from_text(&ta).unwrap();
        assert_eq!(cache_to_text(&reparsed), ta);
    }

    #[test]
    fn fingerprinted_snapshot_roundtrips_as_v2() {
        let entries = vec![(b"a".to_vec(), true)];
        let text = snapshot_to_text(&entries, Some("process:xmllint"));
        assert!(text.starts_with("glade-cache v2\noracle "), "{text}");
        let snap = snapshot_from_text(&text).unwrap();
        assert_eq!(snap.oracle_fingerprint.as_deref(), Some("process:xmllint"));
        assert_eq!(snap.entries, entries);
        // Byte-stable through a rewrite.
        assert_eq!(snapshot_to_text(&snap.entries, snap.oracle_fingerprint.as_deref()), text);
    }

    #[test]
    fn v1_snapshots_parse_with_no_fingerprint() {
        let snap = snapshot_from_text("glade-cache v1\nq 1 61\n").unwrap();
        assert_eq!(snap.oracle_fingerprint, None);
        assert_eq!(snap.entries, vec![(b"a".to_vec(), true)]);
    }

    #[test]
    fn v2_without_oracle_directive_is_valid() {
        let snap = snapshot_from_text("glade-cache v2\nq 0 62\n").unwrap();
        assert_eq!(snap.oracle_fingerprint, None);
        assert_eq!(snap.entries, vec![(b"b".to_vec(), false)]);
    }

    #[test]
    fn oracle_directive_rejected_in_v1_and_when_duplicated() {
        assert!(matches!(
            snapshot_from_text("glade-cache v1\noracle 61\n"),
            Err(CacheError::BadLine(2))
        ));
        assert!(matches!(
            snapshot_from_text("glade-cache v2\noracle 61\noracle 62\n"),
            Err(CacheError::BadLine(3))
        ));
        // Malformed fingerprint hex / non-UTF-8 fingerprints error too.
        assert!(matches!(
            snapshot_from_text("glade-cache v2\noracle 6\n"),
            Err(CacheError::BadField(2))
        ));
        assert!(matches!(
            snapshot_from_text("glade-cache v2\noracle ff\n"),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn empty_query_roundtrips() {
        let entries = vec![(Vec::new(), true)];
        let text = cache_to_text(&entries);
        assert_eq!(cache_from_text(&text).unwrap(), entries);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(cache_from_text(""), Err(CacheError::BadHeader)));
        assert!(matches!(cache_from_text("glade-cache v9\n"), Err(CacheError::BadHeader)));
    }

    #[test]
    fn rejects_malformed_lines() {
        let base = "glade-cache v1\n";
        assert!(matches!(
            cache_from_text(&format!("{base}verdict 1 61\n")),
            Err(CacheError::BadLine(2))
        ));
        assert!(matches!(
            cache_from_text(&format!("{base}q 2 61\n")),
            Err(CacheError::BadField(2))
        ));
        assert!(matches!(cache_from_text(&format!("{base}q 1 6\n")), Err(CacheError::BadField(2))));
        assert!(matches!(
            cache_from_text(&format!("{base}q 1 zz\n")),
            Err(CacheError::BadField(2))
        ));
        // Multi-byte UTF-8 in the hex field must error, not panic (the
        // even-length guard alone would let `aéa` through to str slicing).
        assert!(matches!(
            cache_from_text(&format!("{base}q 1 aéa\n")),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn memo_snapshot_roundtrips_as_v3() {
        let entries = vec![(b"a".to_vec(), true)];
        let memo = vec![
            MemoEntry { key: [0xab; 16], classes: vec![CharClass::from_bytes(b"hi")] },
            MemoEntry {
                key: [0x01; 16],
                classes: vec![CharClass::single(b'x'), CharClass::from_bytes(b"yz")],
            },
        ];
        let text = snapshot_to_text_with_memo(&entries, &memo, Some("target:toy"));
        assert!(text.starts_with("glade-cache v3\noracle "), "{text}");
        let snap = snapshot_from_text(&text).unwrap();
        assert_eq!(snap.oracle_fingerprint.as_deref(), Some("target:toy"));
        assert_eq!(snap.entries, entries);
        // Entries come back sorted by key.
        assert_eq!(snap.memo.len(), 2);
        assert_eq!(snap.memo[0].key, [0x01; 16]);
        assert_eq!(snap.memo[0].classes.len(), 2);
        assert!(snap.memo[0].classes[1].contains(b'y'));
        assert_eq!(snap.memo[1].key, [0xab; 16]);
        assert!(snap.memo[1].classes[0].contains(b'h'));
        // Byte-stable through a rewrite.
        assert_eq!(snapshot_to_text_with_memo(&snap.entries, &snap.memo, Some("target:toy")), text);
        // No fingerprint: still v3 when memo entries exist.
        let untagged = snapshot_to_text_with_memo(&entries, &memo, None);
        assert!(untagged.starts_with("glade-cache v3\nm "), "{untagged}");
        assert!(snapshot_from_text(&untagged).unwrap().oracle_fingerprint.is_none());
    }

    #[test]
    fn empty_memo_keeps_historical_formats_byte_identical() {
        let entries = vec![(b"aa".to_vec(), false), (b"bb".to_vec(), true)];
        assert_eq!(
            snapshot_to_text_with_memo(&entries, &[], None),
            snapshot_to_text(&entries, None)
        );
        assert_eq!(
            snapshot_to_text_with_memo(&entries, &[], Some("fp")),
            snapshot_to_text(&entries, Some("fp"))
        );
        // And pre-memo snapshots parse with an empty memo table.
        let snap = snapshot_from_text("glade-cache v2\nq 1 61\n").unwrap();
        assert!(snap.memo.is_empty());
    }

    #[test]
    fn memo_directive_rejected_below_v3_and_when_malformed() {
        assert!(matches!(
            snapshot_from_text("glade-cache v2\nm 000102030405060708090a0b0c0d0e0f 61\n"),
            Err(CacheError::BadLine(2))
        ));
        // Missing classes field.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 000102030405060708090a0b0c0d0e0f\n"),
            Err(CacheError::BadField(2))
        ));
        // Key of the wrong width.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 0001 61\n"),
            Err(CacheError::BadField(2))
        ));
        // Empty class member set.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 000102030405060708090a0b0c0d0e0f 61,,62\n"),
            Err(CacheError::BadField(2))
        ));
        // Bad class hex.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 000102030405060708090a0b0c0d0e0f zz\n"),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "glade-cache v1\n# warm-start for toy-xml\n\nq 1 61\n";
        assert_eq!(cache_from_text(text).unwrap(), vec![(b"a".to_vec(), true)]);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let io = CacheError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
        assert!(CacheError::BadHeader.source().is_none());
        assert!(CacheError::BadLine(3).to_string().contains("line 3"));
        let mismatch = CacheError::OracleMismatch { snapshot: "a".into(), expected: "b".into() };
        assert!(mismatch.to_string().contains("different oracle"));
        assert!(mismatch.source().is_none());
    }
}
