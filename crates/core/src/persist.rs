//! Persistent membership-query cache snapshots.
//!
//! The paper measures synthesis cost purely in oracle calls, and for real
//! targets each distinct call runs the program under test. A multi-target
//! campaign or a repeated `eval`/`bench` run re-pays that cost from zero on
//! every process start — unless the query cache survives the process. This
//! module defines a stable, line-oriented snapshot format (in the same
//! spirit as `glade_grammar::text`'s grammar format) with full
//! round-tripping:
//!
//! ```text
//! glade-cache v2
//! oracle 70726f636573733a786d6c6c696e74
//! q 1 3c613e68693c2f613e
//! q 0 3c613e3c2f613e
//! ```
//!
//! Each `q` line is one cached verdict: `1`/`0` for accept/reject followed
//! by the query bytes hex-encoded (queries are arbitrary byte strings, so
//! no text escaping scheme is safe). Entries are written sorted by query
//! bytes, making snapshots byte-stable for identical caches regardless of
//! insertion order.
//!
//! A snapshot is only meaningful for the oracle that produced it: verdicts
//! are facts about one target language, and replaying them against a
//! different target silently corrupts synthesis. The **v2** format
//! therefore carries an optional `oracle` directive — a caller-supplied
//! fingerprint string (hex-encoded UTF-8; e.g.
//! [`ProcessOracle::fingerprint`](crate::ProcessOracle::fingerprint) for
//! process oracles, a target name for in-process ones). A session
//! configured with
//! [`GladeBuilder::oracle_fingerprint`](crate::GladeBuilder::oracle_fingerprint)
//! writes the directive into its
//! snapshots and **rejects** loading a snapshot whose fingerprint differs
//! ([`CacheError::OracleMismatch`]). Version-1 snapshots (no fingerprint)
//! still load everywhere; fingerprint-less sessions load anything.
//!
//! The **v3** format additionally persists the byte-class memo table of
//! the query-reduction layer (see `memo.rs`) through `m` directives:
//!
//! ```text
//! glade-cache v3
//! m 00112233445566778899aabbccddeeff 68,69
//! q 1 3c613e68693c2f613e
//! ```
//!
//! Each `m` line carries a 128-bit [`memo key`](crate::MemoEntry) as 32
//! hex digits, then the learned per-position byte classes as a
//! comma-separated list of hex-encoded member-byte sets. A loaded memo
//! entry lets a later session skip *every* probe of a terminal it has
//! already generalized. [`snapshot_to_text_with_memo`] only emits the v3
//! header when memo entries are present, so sessions that never memoize —
//! or pre-memo consumers re-serializing old snapshots — keep producing
//! byte-identical v1/v2 output, and v1/v2 snapshots load unchanged
//! (`memo: []`).
//!
//! [`Session::save_cache`](crate::Session::save_cache) and
//! [`Session::load_cache`](crate::Session::load_cache) wrap this format
//! with file I/O; [`cache_to_text`], [`cache_from_text`], and the
//! fingerprint-aware [`CacheSnapshot`] round-trip expose the text layer
//! directly.
//!
//! # Binary snapshots (`glade-cachebin v1`)
//!
//! The text format is built for inspection and diffing, not for the 10⁷+
//! entries a long-lived `glade serve` fleet accumulates: hex doubles every
//! query byte and parsing decodes them one nibble at a time. The binary
//! format stores the same [`CacheSnapshot`] — entries, memo table, oracle
//! fingerprint — in an indexed, length-prefixed layout. All integers are
//! little-endian; sections are laid out back to back:
//!
//! | section | offset | layout |
//! |---|---|---|
//! | magic | 0 | the 18 bytes `glade-cachebin v1\n` |
//! | header | 18 | `u32` fingerprint length, `u64` entry count, `u64` memo count, `u64` index offset, `u64` records offset, `u64` memo offset, `u64` total length |
//! | fingerprint | 70 | UTF-8 fingerprint bytes (absent when length is 0) |
//! | index | header's index offset | entry count × (`u64` query hash, `u64` absolute record offset), sorted by (hash, offset) |
//! | records | header's records offset | entry count × (`u8` verdict, `u32` query length, query bytes), sorted by query bytes |
//! | memo | header's memo offset | memo count × (16-byte key, `u32` class count, classes), keys sorted; each class is a `u32` member count followed by its member bytes |
//!
//! Entries and the index are sorted, so equal caches serialize to
//! byte-identical snapshots — the same stability guarantee as the text
//! format. The header's total length and per-section offsets make every
//! truncation detectable up front ([`CacheError::Corrupt`]), and the
//! sorted hash index lets [`BinaryCacheFile`] answer point lookups by
//! binary-searching the index *on disk* — a multi-gigabyte snapshot is
//! opened by reading ~100 bytes of header and faulted in one record at a
//! time. [`is_binary_snapshot`] sniffs the magic so load paths accept
//! either format transparently; text v1–v3 snapshots keep loading forever.
//!
//! # Ops note: cache sizing and eviction
//!
//! A cache entry costs its query bytes plus map overhead, and the engine's
//! in-memory tier ([`GladeBuilder::max_cache_entries`](crate::GladeBuilder::max_cache_entries))
//! can cap residency for long-lived campaigns. Trade-offs to size by:
//!
//! * **Uncapped** (the default) never re-pays a query but holds every
//!   distinct query string for the session's lifetime. Right for
//!   single-campaign runs and anything below ~10⁶ entries.
//! * **Capped** bounds key-byte residency with second-chance eviction; an
//!   evicted entry re-queried later re-pays one oracle call with an
//!   identical verdict, so grammars and `unique_queries` are unchanged —
//!   only oracle traffic can grow. An 8-byte-per-distinct-query ledger
//!   remains so `unique_queries` stays exact under eviction.
//! * **Partial load** ([`BinaryCacheFile`] via
//!   [`Session::attach_cache`](crate::Session::attach_cache)) keeps the
//!   snapshot on disk entirely and faults verdicts in on demand — pair it
//!   with a residency cap to serve warm starts from snapshots much larger
//!   than memory.

use crate::cache::hash_query;
use glade_grammar::CharClass;
use std::fmt::Write as _;
use std::io::{BufRead, Read, Seek, SeekFrom};
use std::path::Path;

/// Errors from loading a cache snapshot.
///
/// `#[non_exhaustive]`: future format revisions may add variants.
#[derive(Debug)]
#[non_exhaustive]
pub enum CacheError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The header line is missing or names an unsupported version.
    BadHeader,
    /// A line does not match any directive.
    BadLine(usize),
    /// A directive has a malformed verdict or hex field.
    BadField(usize),
    /// A binary snapshot is truncated or structurally inconsistent.
    Corrupt {
        /// Byte offset of the first inconsistency.
        offset: u64,
        /// What was wrong there.
        what: &'static str,
    },
    /// The snapshot was produced by a different oracle than the session is
    /// using: replaying its verdicts would silently corrupt synthesis.
    OracleMismatch {
        /// The fingerprint recorded in the snapshot.
        snapshot: String,
        /// The fingerprint the session expects.
        expected: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache snapshot i/o error: {e}"),
            CacheError::BadHeader => write!(f, "missing or unsupported cache header"),
            CacheError::BadLine(n) => write!(f, "unrecognized cache directive on line {n}"),
            CacheError::BadField(n) => write!(f, "malformed cache field on line {n}"),
            CacheError::Corrupt { offset, what } => {
                write!(f, "corrupt binary cache snapshot at byte {offset}: {what}")
            }
            CacheError::OracleMismatch { snapshot, expected } => write!(
                f,
                "cache snapshot was produced by a different oracle \
                 (snapshot fingerprint {snapshot:?}, expected {expected:?})"
            ),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// A parsed cache snapshot: the cached verdicts plus the optional oracle
/// fingerprint the snapshot was tagged with (v2+ snapshots only; v1
/// snapshots parse with `oracle_fingerprint: None`) and the byte-class
/// memo entries (v3 snapshots only; older snapshots parse with an empty
/// `memo`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Identity of the oracle the verdicts are facts about, when recorded.
    pub oracle_fingerprint: Option<String>,
    /// The cached `(query, verdict)` entries.
    pub entries: SnapshotEntries,
    /// Persisted byte-class memo entries (empty for v1/v2 snapshots).
    pub memo: Vec<MemoEntry>,
}

/// Decoded `(query, verdict)` entries, backed by a single arena buffer.
///
/// Decoding a snapshot is O(1) allocations, not one per query: the
/// binary loader adopts the raw record section as the arena and records
/// a span per entry, so loading a 10⁵-entry cache is bounded by the
/// file read, not by 10⁵ small allocations (which would otherwise
/// dominate it). Owned query bytes are materialized only when a
/// consumer takes them — iterating by reference ([`iter`]) is free,
/// [`into_iter`](IntoIterator) / [`to_vec`] copy one query at a time.
///
/// [`iter`]: SnapshotEntries::iter
/// [`to_vec`]: SnapshotEntries::to_vec
#[derive(Clone, Default)]
pub struct SnapshotEntries {
    arena: Vec<u8>,
    spans: Vec<EntrySpan>,
}

#[derive(Clone, Copy)]
struct EntrySpan {
    off: usize,
    len: usize,
    verdict: bool,
}

impl SnapshotEntries {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates the entries as borrowed `(query, verdict)` pairs,
    /// in stored (sorted) order, without copying the query bytes.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&[u8], bool)> + '_ {
        self.spans.iter().map(|s| (&self.arena[s.off..s.off + s.len], s.verdict))
    }

    /// Copies the entries into the owned form the serializers accept.
    pub fn to_vec(&self) -> Vec<(Vec<u8>, bool)> {
        self.iter().map(|(q, v)| (q.to_vec(), v)).collect()
    }

    /// Consumes the entries into owned `(query, verdict)` pairs.
    pub fn into_vec(self) -> Vec<(Vec<u8>, bool)> {
        self.to_vec()
    }
}

impl From<Vec<(Vec<u8>, bool)>> for SnapshotEntries {
    fn from(entries: Vec<(Vec<u8>, bool)>) -> Self {
        let total = entries.iter().map(|(q, _)| q.len()).sum();
        let mut arena = Vec::with_capacity(total);
        let mut spans = Vec::with_capacity(entries.len());
        for (query, verdict) in &entries {
            spans.push(EntrySpan { off: arena.len(), len: query.len(), verdict: *verdict });
            arena.extend_from_slice(query);
        }
        SnapshotEntries { arena, spans }
    }
}

impl IntoIterator for SnapshotEntries {
    type Item = (Vec<u8>, bool);
    type IntoIter = IntoEntries;
    fn into_iter(self) -> IntoEntries {
        IntoEntries { entries: self, next: 0 }
    }
}

/// Owning iterator over [`SnapshotEntries`]; each query is copied out of
/// the shared arena as it is yielded.
pub struct IntoEntries {
    entries: SnapshotEntries,
    next: usize,
}

impl Iterator for IntoEntries {
    type Item = (Vec<u8>, bool);

    fn next(&mut self) -> Option<Self::Item> {
        let s = *self.entries.spans.get(self.next)?;
        self.next += 1;
        Some((self.entries.arena[s.off..s.off + s.len].to_vec(), s.verdict))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.entries.spans.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for IntoEntries {}

impl PartialEq for SnapshotEntries {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for SnapshotEntries {}

impl PartialEq<Vec<(Vec<u8>, bool)>> for SnapshotEntries {
    fn eq(&self, other: &Vec<(Vec<u8>, bool)>) -> bool {
        self.iter().eq(other.iter().map(|(q, v)| (q.as_slice(), *v)))
    }
}

impl std::fmt::Debug for SnapshotEntries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// One persisted byte-class memo entry: a memoized character-generalization
/// result keyed by the 128-bit fingerprint of its problem instance
/// (terminal bytes, contexts, candidate alphabet — computed internally by
/// the query-reduction layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoEntry {
    /// The fingerprint, big-endian.
    pub key: [u8; 16],
    /// The learned byte class of each terminal position.
    pub classes: Vec<CharClass>,
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
}

/// Serializes `(query, verdict)` entries to snapshot text, tagged with an
/// oracle fingerprint when one is supplied.
///
/// With a fingerprint the `glade-cache v2` format is written (header,
/// `oracle` directive, sorted `q` lines); without one the output is a
/// plain v1 snapshot, readable by any consumer of the original format.
/// Entries are sorted by query bytes first, so equal caches serialize to
/// byte-identical snapshots.
pub fn snapshot_to_text(entries: &[(Vec<u8>, bool)], oracle_fingerprint: Option<&str>) -> String {
    snapshot_to_text_with_memo(entries, &[], oracle_fingerprint)
}

/// Serializes `(query, verdict)` entries plus byte-class memo entries to
/// snapshot text.
///
/// With memo entries present the `glade-cache v3` format is written
/// (header, optional `oracle` directive, `m` lines sorted by key, `q`
/// lines sorted by query bytes); with an empty `memo` the output is
/// byte-identical to [`snapshot_to_text`]'s v1/v2, so memo-free sessions
/// keep producing snapshots every historical consumer can read.
pub fn snapshot_to_text_with_memo(
    entries: &[(Vec<u8>, bool)],
    memo: &[MemoEntry],
    oracle_fingerprint: Option<&str>,
) -> String {
    let mut sorted: Vec<&(Vec<u8>, bool)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    match (memo.is_empty(), oracle_fingerprint) {
        (false, fp) => {
            out.push_str("glade-cache v3\n");
            if let Some(fp) = fp {
                out.push_str("oracle ");
                push_hex(&mut out, fp.as_bytes());
                out.push('\n');
            }
        }
        (true, Some(fp)) => {
            out.push_str("glade-cache v2\n");
            out.push_str("oracle ");
            push_hex(&mut out, fp.as_bytes());
            out.push('\n');
        }
        (true, None) => out.push_str("glade-cache v1\n"),
    }
    let mut memo_sorted: Vec<&MemoEntry> = memo.iter().collect();
    memo_sorted.sort_by_key(|a| a.key);
    for entry in memo_sorted {
        out.push_str("m ");
        push_hex(&mut out, &entry.key);
        out.push(' ');
        for (i, class) in entry.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let members: Vec<u8> = class.iter().collect();
            push_hex(&mut out, &members);
        }
        out.push('\n');
    }
    for (query, verdict) in sorted {
        let _ = write!(out, "q {} ", u8::from(*verdict));
        push_hex(&mut out, query);
        out.push('\n');
    }
    out
}

/// Serializes `(query, verdict)` entries to the v1 snapshot text (no
/// oracle fingerprint). Equivalent to [`snapshot_to_text`] with `None`.
pub fn cache_to_text(entries: &[(Vec<u8>, bool)]) -> String {
    snapshot_to_text(entries, None)
}

/// Parses snapshot text (v1, v2, or v3) into a [`CacheSnapshot`].
///
/// # Errors
///
/// Returns a [`CacheError`] describing the first malformed line. (Oracle
/// fingerprints are parsed, never *checked*, here — matching is the
/// loading session's policy, see
/// [`Session::import_cache`](crate::Session::import_cache).)
pub fn snapshot_from_text(text: &str) -> Result<CacheSnapshot, CacheError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(CacheError::BadHeader);
    };
    let mut parser = TextParser::new(header)?;
    for (lineno, raw) in lines {
        parser.line(lineno + 1, raw)?;
    }
    Ok(parser.finish())
}

/// Parses snapshot text (v1, v2, or v3) from a buffered reader, one line
/// at a time — the file is never materialized in memory, so loading a
/// large snapshot costs the entries alone instead of ~2× their size
/// (file text plus decoded entries). Error values — including
/// [`CacheError::BadLine`]/[`CacheError::BadField`] line numbers and the
/// handling of a torn final line — are identical to
/// [`snapshot_from_text`] on the same bytes.
///
/// # Errors
///
/// Returns a [`CacheError`] describing the first malformed line, or
/// [`CacheError::Io`] for read failures (including non-UTF-8 content,
/// exactly as a whole-file read would report it).
pub fn snapshot_from_reader(mut reader: impl BufRead) -> Result<CacheSnapshot, CacheError> {
    // `str::lines` semantics, line by line: split on `\n`, strip one
    // trailing `\r`, and surface a final line without a newline as-is.
    let mut buf = String::new();
    let mut read_line = |buf: &mut String| -> Result<bool, CacheError> {
        buf.clear();
        let n = reader.read_line(buf)?;
        if buf.ends_with('\n') {
            buf.pop();
            if buf.ends_with('\r') {
                buf.pop();
            }
        }
        Ok(n > 0)
    };
    if !read_line(&mut buf)? {
        return Err(CacheError::BadHeader);
    }
    let mut parser = TextParser::new(&buf)?;
    let mut lineno = 1;
    while read_line(&mut buf)? {
        lineno += 1;
        parser.line(lineno, &buf)?;
    }
    Ok(parser.finish())
}

/// Shared per-line logic of [`snapshot_from_text`] and
/// [`snapshot_from_reader`]: one parser, two line sources, so the
/// streaming path can never drift from the in-memory path's error
/// numbering or directive handling.
struct TextParser {
    version: u8,
    fingerprint: Option<String>,
    entries: Vec<(Vec<u8>, bool)>,
    memo: Vec<MemoEntry>,
}

impl TextParser {
    fn new(header: &str) -> Result<Self, CacheError> {
        let version: u8 = match header.trim() {
            "glade-cache v1" => 1,
            "glade-cache v2" => 2,
            "glade-cache v3" => 3,
            _ => return Err(CacheError::BadHeader),
        };
        Ok(TextParser { version, fingerprint: None, entries: Vec::new(), memo: Vec::new() })
    }

    fn line(&mut self, lineno: usize, raw: &str) -> Result<(), CacheError> {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        if let Some(hex) = line.strip_prefix("oracle ") {
            // The directive is v2+-only and at most one is meaningful.
            if self.version < 2 || self.fingerprint.is_some() {
                return Err(CacheError::BadLine(lineno));
            }
            let bytes = decode_hex(hex, lineno)?;
            self.fingerprint =
                Some(String::from_utf8(bytes).map_err(|_| CacheError::BadField(lineno))?);
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("m ") {
            // Memo entries are v3-only.
            if self.version < 3 {
                return Err(CacheError::BadLine(lineno));
            }
            let Some((key_hex, classes_hex)) = rest.split_once(' ') else {
                return Err(CacheError::BadField(lineno));
            };
            let key_bytes = decode_hex(key_hex, lineno)?;
            let key: [u8; 16] = key_bytes.try_into().map_err(|_| CacheError::BadField(lineno))?;
            let mut classes = Vec::new();
            for class_hex in classes_hex.split(',') {
                // A learned class always contains at least the original
                // byte; an empty member set marks a corrupted snapshot.
                if class_hex.is_empty() {
                    return Err(CacheError::BadField(lineno));
                }
                classes.push(CharClass::from_bytes(&decode_hex(class_hex, lineno)?));
            }
            self.memo.push(MemoEntry { key, classes });
            return Ok(());
        }
        let Some(rest) = line.strip_prefix("q ") else {
            return Err(CacheError::BadLine(lineno));
        };
        let (verdict, hex) = match rest.split_once(' ') {
            Some((v, h)) => (v, h),
            // An empty query has no hex field ("q 1").
            None => (rest, ""),
        };
        let verdict = match verdict {
            "0" => false,
            "1" => true,
            _ => return Err(CacheError::BadField(lineno)),
        };
        self.entries.push((decode_hex(hex, lineno)?, verdict));
        Ok(())
    }

    fn finish(self) -> CacheSnapshot {
        CacheSnapshot {
            oracle_fingerprint: self.fingerprint,
            entries: self.entries.into(),
            memo: self.memo,
        }
    }
}

/// Parses snapshot text (v1, v2, or v3) back into `(query, verdict)`
/// entries, discarding any oracle fingerprint and memo entries.
///
/// # Errors
///
/// Returns a [`CacheError`] describing the first malformed line.
pub fn cache_from_text(text: &str) -> Result<Vec<(Vec<u8>, bool)>, CacheError> {
    snapshot_from_text(text).map(|s| s.entries.into_vec())
}

/// On-disk cache snapshot format selector (see the module docs for both
/// layouts). Load paths sniff the format from the file itself
/// ([`is_binary_snapshot`]); this enum picks the format on *save*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheFormat {
    /// Line-oriented `glade-cache v1`–`v3` text: grep-able, diff-able,
    /// and readable by every historical consumer. The default.
    #[default]
    Text,
    /// Indexed `glade-cachebin v1`: compact, fast to load, and partially
    /// loadable through [`BinaryCacheFile`].
    Binary,
}

impl CacheFormat {
    /// Parses the CLI/env spelling: `text`, or `binary`/`bin`.
    pub fn parse(s: &str) -> Option<CacheFormat> {
        match s {
            "text" => Some(CacheFormat::Text),
            "binary" | "bin" => Some(CacheFormat::Binary),
            _ => None,
        }
    }
}

impl std::fmt::Display for CacheFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheFormat::Text => "text",
            CacheFormat::Binary => "binary",
        })
    }
}

/// Magic prefix of a `glade-cachebin v1` snapshot. Deliberately *not* a
/// valid text header ("glade-cachebin v1" matches no text version), so
/// feeding either format to the other parser fails cleanly.
const BINARY_MAGIC: &[u8; 18] = b"glade-cachebin v1\n";
/// Fixed header bytes after the magic: `u32` fingerprint length plus six
/// `u64` fields (entry count, memo count, index/records/memo offsets,
/// total length).
const BIN_HEADER_LEN: usize = 4 + 6 * 8;
/// One index slot: `u64` query hash, `u64` absolute record offset.
const BIN_INDEX_SLOT: usize = 16;

/// Whether `prefix` begins a `glade-cachebin v1` snapshot. Callers sniff
/// the first [`BufRead::fill_buf`] of a snapshot file to route between
/// [`snapshot_from_binary_reader`] and [`snapshot_from_reader`].
pub fn is_binary_snapshot(prefix: &[u8]) -> bool {
    prefix.len() >= BINARY_MAGIC.len() && &prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC
}

/// Serializes entries, memo entries, and an optional oracle fingerprint
/// to a `glade-cachebin v1` snapshot (layout table in the module docs).
///
/// Entries are sorted by query bytes and the index by (hash, offset), so
/// — like [`snapshot_to_text_with_memo`] — equal caches serialize to
/// byte-identical snapshots regardless of insertion order.
pub fn snapshot_to_binary(
    entries: &[(Vec<u8>, bool)],
    memo: &[MemoEntry],
    oracle_fingerprint: Option<&str>,
) -> Vec<u8> {
    let mut sorted: Vec<&(Vec<u8>, bool)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut memo_sorted: Vec<&MemoEntry> = memo.iter().collect();
    memo_sorted.sort_by_key(|m| m.key);
    let fp = oracle_fingerprint.map_or(&b""[..], str::as_bytes);

    let index_off = (BINARY_MAGIC.len() + BIN_HEADER_LEN + fp.len()) as u64;
    let records_off = index_off + (sorted.len() * BIN_INDEX_SLOT) as u64;
    let mut records = Vec::new();
    let mut index: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (query, verdict) in &sorted {
        index.push((hash_query(query), records_off + records.len() as u64));
        records.push(u8::from(*verdict));
        records
            .extend_from_slice(&u32::try_from(query.len()).expect("query > 4 GiB").to_le_bytes());
        records.extend_from_slice(query);
    }
    index.sort_unstable();
    let memo_off = records_off + records.len() as u64;
    let mut memo_bytes = Vec::new();
    for entry in memo_sorted {
        memo_bytes.extend_from_slice(&entry.key);
        memo_bytes.extend_from_slice(&(entry.classes.len() as u32).to_le_bytes());
        for class in &entry.classes {
            let members: Vec<u8> = class.iter().collect();
            memo_bytes.extend_from_slice(&(members.len() as u32).to_le_bytes());
            memo_bytes.extend_from_slice(&members);
        }
    }
    let total_len = memo_off + memo_bytes.len() as u64;

    let mut out = Vec::with_capacity(total_len as usize);
    out.extend_from_slice(BINARY_MAGIC);
    out.extend_from_slice(&(fp.len() as u32).to_le_bytes());
    out.extend_from_slice(&(sorted.len() as u64).to_le_bytes());
    out.extend_from_slice(&(memo.len() as u64).to_le_bytes());
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(&records_off.to_le_bytes());
    out.extend_from_slice(&memo_off.to_le_bytes());
    out.extend_from_slice(&total_len.to_le_bytes());
    out.extend_from_slice(fp);
    for (hash, offset) in index {
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
    }
    out.extend_from_slice(&records);
    out.extend_from_slice(&memo_bytes);
    debug_assert_eq!(out.len() as u64, total_len);
    out
}

/// Parsed and validated `glade-cachebin v1` header.
#[derive(Debug)]
struct BinHeader {
    fingerprint: Option<String>,
    entry_count: u64,
    memo_count: u64,
    index_off: u64,
    records_off: u64,
    memo_off: u64,
    total_len: u64,
}

fn corrupt(offset: u64, what: &'static str) -> CacheError {
    CacheError::Corrupt { offset, what }
}

/// Reads `buf.len()` bytes at the reader's current position (`pos` is the
/// position, for error attribution only); a short read is a truncation.
fn read_bin<R: Read>(r: &mut R, pos: u64, buf: &mut [u8]) -> Result<(), CacheError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => corrupt(pos, "unexpected end of snapshot"),
        _ => CacheError::Io(e),
    })
}

/// Reads and cross-validates the magic, header, and fingerprint. Every
/// section offset is checked against the neighbors and the real stream
/// length, so truncation — at any cut — and header corruption surface
/// here as [`CacheError::Corrupt`], never as a panic or a huge
/// allocation downstream.
fn read_binary_header<R: Read + Seek>(r: &mut R) -> Result<BinHeader, CacheError> {
    let stream_len = r.seek(SeekFrom::End(0))?;
    r.seek(SeekFrom::Start(0))?;
    let mut magic = [0u8; BINARY_MAGIC.len()];
    read_bin(r, 0, &mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(CacheError::BadHeader);
    }
    let mut header = [0u8; BIN_HEADER_LEN];
    read_bin(r, BINARY_MAGIC.len() as u64, &mut header)?;
    let u32_at = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
    let fp_len = u32_at(0) as u64;
    let h = BinHeader {
        fingerprint: None,
        entry_count: u64_at(4),
        memo_count: u64_at(12),
        index_off: u64_at(20),
        records_off: u64_at(28),
        memo_off: u64_at(36),
        total_len: u64_at(44),
    };
    let header_end = (BINARY_MAGIC.len() + BIN_HEADER_LEN) as u64;
    if h.total_len != stream_len {
        return Err(corrupt(stream_len, "snapshot length does not match header"));
    }
    if h.index_off != header_end + fp_len {
        return Err(corrupt(h.index_off, "index offset disagrees with fingerprint length"));
    }
    if h.entry_count.checked_mul(BIN_INDEX_SLOT as u64).and_then(|len| h.index_off.checked_add(len))
        != Some(h.records_off)
    {
        return Err(corrupt(h.records_off, "records offset disagrees with entry count"));
    }
    // Each record is at least 5 bytes, each memo entry at least 20: a
    // count that cannot fit its section is corruption (and would
    // otherwise drive a huge `with_capacity`).
    if !(h.records_off <= h.memo_off && h.memo_off <= h.total_len) {
        return Err(corrupt(h.memo_off, "memo offset outside snapshot"));
    }
    if h.entry_count.checked_mul(5).is_none_or(|min| min > h.memo_off - h.records_off) {
        return Err(corrupt(h.records_off, "entry count cannot fit the record section"));
    }
    if h.memo_count.checked_mul(20).is_none_or(|min| min > h.total_len - h.memo_off) {
        return Err(corrupt(h.memo_off, "memo count cannot fit the memo section"));
    }
    let fingerprint = if fp_len == 0 {
        None
    } else {
        let mut fp = vec![0u8; fp_len as usize];
        read_bin(r, header_end, &mut fp)?;
        Some(String::from_utf8(fp).map_err(|_| corrupt(header_end, "fingerprint is not UTF-8"))?)
    };
    Ok(BinHeader { fingerprint, ..h })
}

/// Parses one memo entry at `pos`, bounded by `limit` (the snapshot end).
fn read_bin_memo<R: Read>(r: &mut R, pos: &mut u64, limit: u64) -> Result<MemoEntry, CacheError> {
    let mut head = [0u8; 20];
    read_bin(r, *pos, &mut head)?;
    let key: [u8; 16] = head[..16].try_into().unwrap();
    let class_count = u64::from(u32::from_le_bytes(head[16..20].try_into().unwrap()));
    *pos += 20;
    // Each class is at least 5 bytes (length plus one member).
    if class_count.checked_mul(5).is_none_or(|min| *pos + min > limit) {
        return Err(corrupt(*pos, "memo class count cannot fit the memo section"));
    }
    let mut classes = Vec::with_capacity(class_count as usize);
    for _ in 0..class_count {
        let mut len_buf = [0u8; 4];
        read_bin(r, *pos, &mut len_buf)?;
        let members_len = u64::from(u32::from_le_bytes(len_buf));
        if members_len == 0 {
            // Parity with the text parser: a learned class always
            // contains at least the original byte.
            return Err(corrupt(*pos, "empty byte-class member set"));
        }
        if pos.checked_add(4 + members_len).is_none_or(|end| end > limit) {
            return Err(corrupt(*pos, "byte class overruns the memo section"));
        }
        let mut members = vec![0u8; members_len as usize];
        read_bin(r, *pos + 4, &mut members)?;
        *pos += 4 + members_len;
        classes.push(CharClass::from_bytes(&members));
    }
    Ok(MemoEntry { key, classes })
}

/// Fully loads a `glade-cachebin v1` snapshot from a seekable reader into
/// a [`CacheSnapshot`]. The load is sequential and streaming — the index
/// section is skipped (it is derived data), and nothing beyond the
/// decoded entries is materialized.
///
/// # Errors
///
/// [`CacheError::BadHeader`] when the magic is absent,
/// [`CacheError::Corrupt`] for any truncation or structural
/// inconsistency, [`CacheError::Io`] for read failures.
pub fn snapshot_from_binary_reader<R: Read + Seek>(r: &mut R) -> Result<CacheSnapshot, CacheError> {
    let h = read_binary_header(r)?;
    r.seek(SeekFrom::Start(h.records_off))?;
    // One bulk read of the record and memo sections (the index is derived
    // data and skipped), which then *becomes* the entry arena: decoding
    // allocates the body buffer, the span table, and nothing else. This
    // is most of the binary format's load-speed advantage at production
    // cache sizes — the text path pays an allocation per query, which
    // dominates its decode at 10⁵ entries. The header already validated
    // `total_len` against the real stream length, so a short read here
    // means the file shrank underneath us.
    let body_len = (h.total_len - h.records_off) as usize;
    let mut body = Vec::with_capacity(body_len);
    let got = r.by_ref().take(body_len as u64).read_to_end(&mut body)?;
    if got < body_len {
        return Err(corrupt(h.records_off + got as u64, "unexpected end of snapshot"));
    }

    let local = |p: u64| (p - h.records_off) as usize;
    let mut pos = h.records_off;
    let mut spans = Vec::with_capacity(h.entry_count as usize);
    for _ in 0..h.entry_count {
        let Some(head) = body.get(local(pos)..local(pos) + 5) else {
            return Err(corrupt(pos, "unexpected end of snapshot"));
        };
        let verdict = match head[0] {
            0 => false,
            1 => true,
            _ => return Err(corrupt(pos, "record verdict byte is neither 0 nor 1")),
        };
        let qlen = u64::from(u32::from_le_bytes(head[1..5].try_into().unwrap()));
        if pos.checked_add(5 + qlen).is_none_or(|end| end > h.memo_off) {
            return Err(corrupt(pos, "record overruns its section"));
        }
        spans.push(EntrySpan { off: local(pos + 5), len: qlen as usize, verdict });
        pos += 5 + qlen;
    }
    if pos != h.memo_off {
        return Err(corrupt(pos, "record section size mismatch"));
    }
    // Memo entries are few and structurally richer; the streaming parser
    // (shared with `BinaryCacheFile::load_memo`) handles them over the
    // in-memory section.
    let mut cursor = std::io::Cursor::new(&body[local(pos)..]);
    let mut memo = Vec::with_capacity(h.memo_count as usize);
    for _ in 0..h.memo_count {
        memo.push(read_bin_memo(&mut cursor, &mut pos, h.total_len)?);
    }
    if pos != h.total_len {
        return Err(corrupt(pos, "memo section size mismatch"));
    }
    Ok(CacheSnapshot {
        oracle_fingerprint: h.fingerprint,
        entries: SnapshotEntries { arena: body, spans },
        memo,
    })
}

/// Fully loads a `glade-cachebin v1` snapshot from a byte slice. See
/// [`snapshot_from_binary_reader`].
///
/// # Errors
///
/// As [`snapshot_from_binary_reader`].
pub fn snapshot_from_binary(bytes: &[u8]) -> Result<CacheSnapshot, CacheError> {
    snapshot_from_binary_reader(&mut std::io::Cursor::new(bytes))
}

/// An opened `glade-cachebin v1` snapshot answering point lookups without
/// loading the file — the index-first partial-load path.
///
/// [`open`](BinaryCacheFile::open) reads and validates only the magic,
/// header, and fingerprint (~100 bytes); [`lookup`](BinaryCacheFile::lookup)
/// binary-searches the sorted on-disk hash index and faults in candidate
/// records one at a time. A campaign can therefore warm-start from a
/// snapshot far larger than memory, paying I/O only for the queries it
/// actually poses — [`bytes_touched`](BinaryCacheFile::bytes_touched)
/// measures exactly how little (the `cache_scale` bench pins it under 10%
/// of the file for sparse query sets). Sessions wire this in through
/// [`Session::attach_cache`](crate::Session::attach_cache).
#[derive(Debug)]
pub struct BinaryCacheFile {
    file: std::fs::File,
    header: BinHeader,
    bytes_touched: u64,
}

impl BinaryCacheFile {
    /// Opens a binary snapshot, reading only its header.
    ///
    /// # Errors
    ///
    /// As [`snapshot_from_binary_reader`] (the header carries enough
    /// redundancy that truncation anywhere is detected here).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CacheError> {
        let mut file = std::fs::File::open(path)?;
        let header = read_binary_header(&mut file)?;
        // Everything open() read: magic + header + fingerprint.
        let bytes_touched = header.index_off;
        Ok(BinaryCacheFile { file, header, bytes_touched })
    }

    /// Number of cached query entries in the snapshot.
    pub fn len(&self) -> usize {
        self.header.entry_count as usize
    }

    /// Whether the snapshot holds no query entries.
    pub fn is_empty(&self) -> bool {
        self.header.entry_count == 0
    }

    /// Number of byte-class memo entries in the snapshot.
    pub fn memo_len(&self) -> usize {
        self.header.memo_count as usize
    }

    /// The oracle fingerprint the snapshot was tagged with, if any.
    pub fn fingerprint(&self) -> Option<&str> {
        self.header.fingerprint.as_deref()
    }

    /// Total snapshot size in bytes (as recorded in the header).
    pub fn file_len(&self) -> u64 {
        self.header.total_len
    }

    /// Bytes read from the snapshot so far, including the header read by
    /// [`open`](BinaryCacheFile::open) — the partial-load cost metric.
    pub fn bytes_touched(&self) -> u64 {
        self.bytes_touched
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), CacheError> {
        self.file.seek(SeekFrom::Start(off))?;
        read_bin(&mut self.file, off, buf)?;
        self.bytes_touched += buf.len() as u64;
        Ok(())
    }

    /// The `i`-th on-disk index slot: (query hash, record offset).
    fn index_slot(&mut self, i: u64) -> Result<(u64, u64), CacheError> {
        let mut slot = [0u8; BIN_INDEX_SLOT];
        self.read_at(self.header.index_off + i * BIN_INDEX_SLOT as u64, &mut slot)?;
        Ok((
            u64::from_le_bytes(slot[..8].try_into().unwrap()),
            u64::from_le_bytes(slot[8..].try_into().unwrap()),
        ))
    }

    /// Whether the record at `off` caches exactly `query`; returns its
    /// verdict if so. The query bytes are only read when the lengths
    /// already match.
    fn record_matches(&mut self, off: u64, query: &[u8]) -> Result<Option<bool>, CacheError> {
        if !(self.header.records_off..self.header.memo_off).contains(&off) {
            return Err(corrupt(off, "index points outside the record section"));
        }
        let mut head = [0u8; 5];
        self.read_at(off, &mut head)?;
        let verdict = match head[0] {
            0 => false,
            1 => true,
            _ => return Err(corrupt(off, "record verdict byte is neither 0 nor 1")),
        };
        let qlen = u64::from(u32::from_le_bytes(head[1..5].try_into().unwrap()));
        if qlen != query.len() as u64 {
            return Ok(None);
        }
        if off.checked_add(5 + qlen).is_none_or(|end| end > self.header.memo_off) {
            return Err(corrupt(off, "record overruns its section"));
        }
        let mut bytes = vec![0u8; qlen as usize];
        self.read_at(off + 5, &mut bytes)?;
        Ok((bytes == query).then_some(verdict))
    }

    /// Looks up the cached verdict for `query`, faulting in at most the
    /// index slots on one binary-search path plus the records whose hash
    /// collides with the query's — `O(log n)` reads, independent of
    /// snapshot size.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] for read failures, [`CacheError::Corrupt`] if
    /// the index or a record is inconsistent. Absence is `Ok(None)`.
    pub fn lookup(&mut self, query: &[u8]) -> Result<Option<bool>, CacheError> {
        let target = hash_query(query);
        // Lower bound of `target` in the sorted (hash, offset) index.
        let (mut lo, mut hi) = (0u64, self.header.entry_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (hash, _) = self.index_slot(mid)?;
            if hash < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Scan the (almost always singleton) run of colliding hashes.
        while lo < self.header.entry_count {
            let (hash, off) = self.index_slot(lo)?;
            if hash != target {
                break;
            }
            if let Some(verdict) = self.record_matches(off, query)? {
                return Ok(Some(verdict));
            }
            lo += 1;
        }
        Ok(None)
    }

    /// Loads the snapshot's byte-class memo entries (the memo section is
    /// small relative to the record section, so partial loading reads it
    /// eagerly rather than faulting per key).
    ///
    /// # Errors
    ///
    /// As [`snapshot_from_binary_reader`].
    pub fn load_memo(&mut self) -> Result<Vec<MemoEntry>, CacheError> {
        let mut section = vec![0u8; (self.header.total_len - self.header.memo_off) as usize];
        self.read_at(self.header.memo_off, &mut section)?;
        let mut cursor = std::io::Cursor::new(&section[..]);
        let mut pos = self.header.memo_off;
        let mut memo = Vec::with_capacity(self.header.memo_count as usize);
        for _ in 0..self.header.memo_count {
            // `pos` is tracked in absolute file offsets for error
            // attribution; the cursor reads the in-memory copy.
            let before = pos - self.header.memo_off;
            cursor.set_position(before);
            memo.push(read_bin_memo(&mut cursor, &mut pos, self.header.total_len)?);
        }
        if pos != self.header.total_len {
            return Err(corrupt(pos, "memo section size mismatch"));
        }
        Ok(memo)
    }
}

/// Durably replaces `path` with `bytes` via `tmp`: write the temporary
/// file, `fsync` it, rename it over `path`, then `fsync` the containing
/// directory so the rename itself survives power loss. Without the first
/// sync an atomic rename can still publish a *truncated* snapshot (the
/// rename's metadata can reach disk before the tmp file's data); without
/// the second the rename may simply vanish on crash, which is safe but
/// loses the save. Used by every cache/journal save path that must never
/// leave a torn file behind.
pub(crate) fn write_durable(path: &Path, tmp: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let result = (|| {
        let mut file = std::fs::File::create(tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
        std::fs::rename(tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(tmp);
        return result;
    }
    fsync_dir_of(path)
}

/// Fsyncs the directory containing `path` (best effort on platforms or
/// filesystems where directories cannot be opened for sync).
pub(crate) fn fsync_dir_of(path: &Path) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    match std::fs::File::open(dir) {
        Ok(handle) => handle.sync_all(),
        // A directory that cannot be opened (exotic fs) degrades to the
        // pre-durability behavior rather than failing the save.
        Err(_) => Ok(()),
    }
}

/// Decodes one hex field, byte-wise (not via `str` slicing, which would
/// panic on a corrupted snapshot containing multi-byte UTF-8).
fn decode_hex(hex: &str, lineno: usize) -> Result<Vec<u8>, CacheError> {
    if !hex.len().is_multiple_of(2) {
        return Err(CacheError::BadField(lineno));
    }
    let nibble = |b: u8| -> Result<u8, CacheError> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(CacheError::BadField(lineno)),
        }
    };
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_entries() {
        let entries = vec![
            (b"<a>hi</a>".to_vec(), true),
            (b"".to_vec(), true),
            (b"<a>".to_vec(), false),
            (vec![0x00, 0xff, 0x0a], false),
        ];
        let text = cache_to_text(&entries);
        let mut parsed = cache_from_text(&text).expect("roundtrip parses");
        parsed.sort();
        let mut expected = entries.clone();
        expected.sort();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let a = vec![(b"bb".to_vec(), true), (b"aa".to_vec(), false)];
        let b = vec![(b"aa".to_vec(), false), (b"bb".to_vec(), true)];
        let ta = cache_to_text(&a);
        assert_eq!(ta, cache_to_text(&b), "insertion order must not matter");
        assert_eq!(ta, "glade-cache v1\nq 0 6161\nq 1 6262\n");
        // Idempotent through a second roundtrip.
        let reparsed = cache_from_text(&ta).unwrap();
        assert_eq!(cache_to_text(&reparsed), ta);
    }

    #[test]
    fn fingerprinted_snapshot_roundtrips_as_v2() {
        let entries = vec![(b"a".to_vec(), true)];
        let text = snapshot_to_text(&entries, Some("process:xmllint"));
        assert!(text.starts_with("glade-cache v2\noracle "), "{text}");
        let snap = snapshot_from_text(&text).unwrap();
        assert_eq!(snap.oracle_fingerprint.as_deref(), Some("process:xmllint"));
        assert_eq!(snap.entries, entries);
        // Byte-stable through a rewrite.
        assert_eq!(
            snapshot_to_text(&snap.entries.to_vec(), snap.oracle_fingerprint.as_deref()),
            text
        );
    }

    #[test]
    fn v1_snapshots_parse_with_no_fingerprint() {
        let snap = snapshot_from_text("glade-cache v1\nq 1 61\n").unwrap();
        assert_eq!(snap.oracle_fingerprint, None);
        assert_eq!(snap.entries, vec![(b"a".to_vec(), true)]);
    }

    #[test]
    fn v2_without_oracle_directive_is_valid() {
        let snap = snapshot_from_text("glade-cache v2\nq 0 62\n").unwrap();
        assert_eq!(snap.oracle_fingerprint, None);
        assert_eq!(snap.entries, vec![(b"b".to_vec(), false)]);
    }

    #[test]
    fn oracle_directive_rejected_in_v1_and_when_duplicated() {
        assert!(matches!(
            snapshot_from_text("glade-cache v1\noracle 61\n"),
            Err(CacheError::BadLine(2))
        ));
        assert!(matches!(
            snapshot_from_text("glade-cache v2\noracle 61\noracle 62\n"),
            Err(CacheError::BadLine(3))
        ));
        // Malformed fingerprint hex / non-UTF-8 fingerprints error too.
        assert!(matches!(
            snapshot_from_text("glade-cache v2\noracle 6\n"),
            Err(CacheError::BadField(2))
        ));
        assert!(matches!(
            snapshot_from_text("glade-cache v2\noracle ff\n"),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn empty_query_roundtrips() {
        let entries = vec![(Vec::new(), true)];
        let text = cache_to_text(&entries);
        assert_eq!(cache_from_text(&text).unwrap(), entries);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(cache_from_text(""), Err(CacheError::BadHeader)));
        assert!(matches!(cache_from_text("glade-cache v9\n"), Err(CacheError::BadHeader)));
    }

    #[test]
    fn rejects_malformed_lines() {
        let base = "glade-cache v1\n";
        assert!(matches!(
            cache_from_text(&format!("{base}verdict 1 61\n")),
            Err(CacheError::BadLine(2))
        ));
        assert!(matches!(
            cache_from_text(&format!("{base}q 2 61\n")),
            Err(CacheError::BadField(2))
        ));
        assert!(matches!(cache_from_text(&format!("{base}q 1 6\n")), Err(CacheError::BadField(2))));
        assert!(matches!(
            cache_from_text(&format!("{base}q 1 zz\n")),
            Err(CacheError::BadField(2))
        ));
        // Multi-byte UTF-8 in the hex field must error, not panic (the
        // even-length guard alone would let `aéa` through to str slicing).
        assert!(matches!(
            cache_from_text(&format!("{base}q 1 aéa\n")),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn memo_snapshot_roundtrips_as_v3() {
        let entries = vec![(b"a".to_vec(), true)];
        let memo = vec![
            MemoEntry { key: [0xab; 16], classes: vec![CharClass::from_bytes(b"hi")] },
            MemoEntry {
                key: [0x01; 16],
                classes: vec![CharClass::single(b'x'), CharClass::from_bytes(b"yz")],
            },
        ];
        let text = snapshot_to_text_with_memo(&entries, &memo, Some("target:toy"));
        assert!(text.starts_with("glade-cache v3\noracle "), "{text}");
        let snap = snapshot_from_text(&text).unwrap();
        assert_eq!(snap.oracle_fingerprint.as_deref(), Some("target:toy"));
        assert_eq!(snap.entries, entries);
        // Entries come back sorted by key.
        assert_eq!(snap.memo.len(), 2);
        assert_eq!(snap.memo[0].key, [0x01; 16]);
        assert_eq!(snap.memo[0].classes.len(), 2);
        assert!(snap.memo[0].classes[1].contains(b'y'));
        assert_eq!(snap.memo[1].key, [0xab; 16]);
        assert!(snap.memo[1].classes[0].contains(b'h'));
        // Byte-stable through a rewrite.
        assert_eq!(
            snapshot_to_text_with_memo(&snap.entries.to_vec(), &snap.memo, Some("target:toy")),
            text
        );
        // No fingerprint: still v3 when memo entries exist.
        let untagged = snapshot_to_text_with_memo(&entries, &memo, None);
        assert!(untagged.starts_with("glade-cache v3\nm "), "{untagged}");
        assert!(snapshot_from_text(&untagged).unwrap().oracle_fingerprint.is_none());
    }

    #[test]
    fn empty_memo_keeps_historical_formats_byte_identical() {
        let entries = vec![(b"aa".to_vec(), false), (b"bb".to_vec(), true)];
        assert_eq!(
            snapshot_to_text_with_memo(&entries, &[], None),
            snapshot_to_text(&entries, None)
        );
        assert_eq!(
            snapshot_to_text_with_memo(&entries, &[], Some("fp")),
            snapshot_to_text(&entries, Some("fp"))
        );
        // And pre-memo snapshots parse with an empty memo table.
        let snap = snapshot_from_text("glade-cache v2\nq 1 61\n").unwrap();
        assert!(snap.memo.is_empty());
    }

    #[test]
    fn memo_directive_rejected_below_v3_and_when_malformed() {
        assert!(matches!(
            snapshot_from_text("glade-cache v2\nm 000102030405060708090a0b0c0d0e0f 61\n"),
            Err(CacheError::BadLine(2))
        ));
        // Missing classes field.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 000102030405060708090a0b0c0d0e0f\n"),
            Err(CacheError::BadField(2))
        ));
        // Key of the wrong width.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 0001 61\n"),
            Err(CacheError::BadField(2))
        ));
        // Empty class member set.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 000102030405060708090a0b0c0d0e0f 61,,62\n"),
            Err(CacheError::BadField(2))
        ));
        // Bad class hex.
        assert!(matches!(
            snapshot_from_text("glade-cache v3\nm 000102030405060708090a0b0c0d0e0f zz\n"),
            Err(CacheError::BadField(2))
        ));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "glade-cache v1\n# warm-start for toy-xml\n\nq 1 61\n";
        assert_eq!(cache_from_text(text).unwrap(), vec![(b"a".to_vec(), true)]);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let io = CacheError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
        assert!(CacheError::BadHeader.source().is_none());
        assert!(CacheError::BadLine(3).to_string().contains("line 3"));
        let mismatch = CacheError::OracleMismatch { snapshot: "a".into(), expected: "b".into() };
        assert!(mismatch.to_string().contains("different oracle"));
        assert!(mismatch.source().is_none());
        let corrupt = CacheError::Corrupt { offset: 42, what: "testing" };
        assert!(corrupt.to_string().contains("byte 42"));
        assert!(corrupt.to_string().contains("testing"));
        assert!(corrupt.source().is_none());
    }

    #[test]
    fn reader_parse_matches_text_parse() {
        // "oracle" carries the fingerprint hex-encoded ("74" = "t").
        let text = "glade-cache v3\noracle 74\n# comment\n\nq 1 61\nq 0 6262\n\
                    m 000102030405060708090a0b0c0d0e0f 6162,63\n";
        let from_text = snapshot_from_text(text).unwrap();
        let from_reader = snapshot_from_reader(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(from_text, from_reader);
        // Torn tail (no trailing newline) parses identically too.
        let torn = "glade-cache v1\nq 1 61\nq 0 62";
        assert_eq!(
            snapshot_from_text(torn).unwrap(),
            snapshot_from_reader(std::io::Cursor::new(torn.as_bytes())).unwrap()
        );
        // CRLF line endings are tolerated the same way `str::lines` does.
        let crlf = "glade-cache v1\r\nq 1 61\r\n";
        assert_eq!(
            snapshot_from_text(crlf).unwrap().entries,
            snapshot_from_reader(std::io::Cursor::new(crlf.as_bytes())).unwrap().entries
        );
    }

    #[test]
    fn reader_parse_preserves_error_line_numbers() {
        for (text, want_text, want_reader) in [
            ("nope\n", "BadHeader", "BadHeader"),
            ("glade-cache v1\nbogus\n", "BadLine(2)", "BadLine(2)"),
            ("glade-cache v1\nq 9 61\n", "BadField(2)", "BadField(2)"),
            ("glade-cache v2\noracle 74\nq 1 zz\n", "BadField(3)", "BadField(3)"),
            ("glade-cache v2\noracle zz\n", "BadField(2)", "BadField(2)"),
        ] {
            let a = snapshot_from_text(text).unwrap_err();
            let b = snapshot_from_reader(std::io::Cursor::new(text.as_bytes())).unwrap_err();
            assert_eq!(format!("{a:?}"), want_text, "{text:?}");
            assert_eq!(format!("{b:?}"), want_reader, "{text:?}");
        }
        // Invalid UTF-8 surfaces as an I/O error from the reader path,
        // mirroring what `read_to_string` + `snapshot_from_text` produced.
        let bad = b"glade-cache v1\nq 1 61\n\xff\xfe\n";
        assert!(matches!(
            snapshot_from_reader(std::io::Cursor::new(&bad[..])).unwrap_err(),
            CacheError::Io(_)
        ));
    }

    fn sample_memo() -> Vec<MemoEntry> {
        vec![
            MemoEntry {
                key: *b"0123456789abcdef",
                classes: vec![CharClass::from_bytes(b"ab"), CharClass::from_bytes(b"c")],
            },
            MemoEntry { key: [0u8; 16], classes: vec![CharClass::from_bytes(b"\x00\xff")] },
        ]
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let entries = vec![
            (b"<a>hi</a>".to_vec(), true),
            (b"".to_vec(), true),
            (vec![0x00, 0xff, 0x0a], false),
        ];
        let memo = sample_memo();
        let bin = snapshot_to_binary(&entries, &memo, Some("process:xmllint"));
        assert!(is_binary_snapshot(&bin));
        let snap = snapshot_from_binary(&bin).unwrap();
        assert_eq!(snap.oracle_fingerprint.as_deref(), Some("process:xmllint"));
        let mut expected = entries.clone();
        expected.sort();
        assert_eq!(snap.entries, expected, "entries come back sorted by query bytes");
        let mut memo_expected = memo.clone();
        memo_expected.sort_by_key(|m| m.key);
        assert_eq!(snap.memo, memo_expected, "memo comes back sorted by key");
        // Byte-stable: re-serializing the parse reproduces the snapshot,
        // and insertion order never matters.
        assert_eq!(
            snapshot_to_binary(&snap.entries.to_vec(), &snap.memo, Some("process:xmllint")),
            bin
        );
        let mut shuffled = entries;
        shuffled.reverse();
        assert_eq!(snapshot_to_binary(&shuffled, &memo, Some("process:xmllint")), bin);
    }

    #[test]
    fn binary_snapshot_without_fingerprint_or_memo() {
        let bin = snapshot_to_binary(&[(b"a".to_vec(), true)], &[], None);
        let snap = snapshot_from_binary(&bin).unwrap();
        assert_eq!(snap.oracle_fingerprint, None);
        assert_eq!(snap.entries, vec![(b"a".to_vec(), true)]);
        assert!(snap.memo.is_empty());
        // Empty snapshot is valid too.
        let empty = snapshot_to_binary(&[], &[], None);
        assert_eq!(snapshot_from_binary(&empty).unwrap().entries, vec![]);
    }

    #[test]
    fn format_sniffing_and_cross_feeding() {
        let bin = snapshot_to_binary(&[(b"a".to_vec(), true)], &[], None);
        let text = snapshot_to_text(&[(b"a".to_vec(), true)], None);
        assert!(is_binary_snapshot(&bin));
        assert!(!is_binary_snapshot(text.as_bytes()));
        assert!(!is_binary_snapshot(b"glade-cachebin v"));
        // Feeding either format to the other parser is a clean BadHeader.
        assert!(matches!(
            snapshot_from_binary(text.as_bytes()).unwrap_err(),
            CacheError::BadHeader | CacheError::Corrupt { .. }
        ));
        let as_text = String::from_utf8_lossy(&bin);
        assert!(matches!(snapshot_from_text(&as_text).unwrap_err(), CacheError::BadHeader));
    }

    #[test]
    fn binary_and_text_decode_to_the_same_snapshot() {
        let entries =
            vec![(b"<a>x</a>".to_vec(), true), (b"!".to_vec(), false), (b"".to_vec(), true)];
        let memo = sample_memo();
        let text = snapshot_to_text_with_memo(&entries, &memo, Some("t"));
        let bin = snapshot_to_binary(&entries, &memo, Some("t"));
        let a = snapshot_from_text(&text).unwrap();
        let b = snapshot_from_binary(&bin).unwrap();
        assert_eq!(a.oracle_fingerprint, b.oracle_fingerprint);
        let mut ae = a.entries.into_vec();
        ae.sort();
        let mut be = b.entries.into_vec();
        be.sort();
        assert_eq!(ae, be);
        let mut am = a.memo;
        am.sort_by_key(|m| m.key);
        let mut bm = b.memo;
        bm.sort_by_key(|m| m.key);
        assert_eq!(am, bm);
    }

    #[test]
    fn binary_truncation_at_every_cut_is_a_clean_error() {
        let entries = vec![(b"hello".to_vec(), true), (b"world!".to_vec(), false)];
        let bin = snapshot_to_binary(&entries, &sample_memo(), Some("fp"));
        for cut in 0..bin.len() {
            let err = snapshot_from_binary(&bin[..cut])
                .expect_err(&format!("truncation at {cut} of {} parsed", bin.len()));
            assert!(
                matches!(err, CacheError::Corrupt { .. } | CacheError::BadHeader),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn binary_rejects_structural_corruption() {
        let bin = snapshot_to_binary(&[(b"abc".to_vec(), true)], &[], None);
        // Flip the verdict byte to garbage.
        let records_off = BINARY_MAGIC.len() + BIN_HEADER_LEN + BIN_INDEX_SLOT;
        let mut bad = bin.clone();
        bad[records_off] = 7;
        assert!(matches!(
            snapshot_from_binary(&bad).unwrap_err(),
            CacheError::Corrupt { what: "record verdict byte is neither 0 nor 1", .. }
        ));
        // Grow the declared entry count without the bytes to back it.
        let mut bad = bin.clone();
        bad[BINARY_MAGIC.len() + 4] = 0xff;
        assert!(snapshot_from_binary(&bad).is_err());
        // Appending junk breaks the total-length cross-check.
        let mut bad = bin;
        bad.push(0);
        assert!(matches!(snapshot_from_binary(&bad).unwrap_err(), CacheError::Corrupt { .. }));
    }

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("glade-persist-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn binary_file_lookup_agrees_with_full_load() {
        let entries: Vec<(Vec<u8>, bool)> =
            (0..500u32).map(|i| (format!("query-{i:04}").into_bytes(), i % 3 == 0)).collect();
        let bin = snapshot_to_binary(&entries, &[], Some("fp"));
        let path = write_temp("lookup.glade-cache", &bin);
        let mut file = BinaryCacheFile::open(&path).unwrap();
        assert_eq!(file.len(), 500);
        assert!(!file.is_empty());
        assert_eq!(file.fingerprint(), Some("fp"));
        assert_eq!(file.file_len(), bin.len() as u64);
        for (query, verdict) in &entries {
            assert_eq!(file.lookup(query).unwrap(), Some(*verdict));
        }
        for absent in ["query-0500", "query-", "", "nope"] {
            assert_eq!(file.lookup(absent.as_bytes()).unwrap(), None);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_file_partial_load_touches_a_fraction_of_the_file() {
        let entries: Vec<(Vec<u8>, bool)> = (0..2000u32)
            .map(|i| (format!("some-longer-query-string-{i:06}").into_bytes(), i % 2 == 0))
            .collect();
        let bin = snapshot_to_binary(&entries, &[], None);
        let path = write_temp("sparse.glade-cache", &bin);
        let mut file = BinaryCacheFile::open(&path).unwrap();
        let header_cost = file.bytes_touched();
        assert!(header_cost < 256, "open() read {header_cost} bytes");
        // A sparse probe set: 5 present, 5 absent.
        for i in (0..10u32).map(|i| i * 199) {
            file.lookup(format!("some-longer-query-string-{i:06}").as_bytes()).unwrap();
            file.lookup(format!("absent-{i}").as_bytes()).unwrap();
        }
        let frac = file.bytes_touched() as f64 / file.file_len() as f64;
        assert!(frac < 0.10, "sparse lookups touched {:.1}% of the file", frac * 100.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_file_load_memo_matches_full_load() {
        let memo = sample_memo();
        let bin = snapshot_to_binary(&[(b"q".to_vec(), true)], &memo, None);
        let path = write_temp("memo.glade-cache", &bin);
        let mut file = BinaryCacheFile::open(&path).unwrap();
        assert_eq!(file.memo_len(), 2);
        let loaded = file.load_memo().unwrap();
        assert_eq!(loaded, snapshot_from_binary(&bin).unwrap().memo);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_format_parses_and_displays() {
        assert_eq!(CacheFormat::parse("text"), Some(CacheFormat::Text));
        assert_eq!(CacheFormat::parse("binary"), Some(CacheFormat::Binary));
        assert_eq!(CacheFormat::parse("bin"), Some(CacheFormat::Binary));
        assert_eq!(CacheFormat::parse("hex"), None);
        assert_eq!(CacheFormat::Text.to_string(), "text");
        assert_eq!(CacheFormat::Binary.to_string(), "binary");
        assert_eq!(CacheFormat::default(), CacheFormat::Text);
    }
}
