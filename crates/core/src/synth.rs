//! Synthesis configuration, statistics, results, and the legacy one-shot
//! entry point.
//!
//! The pipeline itself (Algorithm 1 plus the Section 6 extensions) is
//! driven by [`Session::add_seeds`](crate::Session::add_seeds) in
//! `session.rs`; this module holds the shared value types —
//! [`GladeConfig`], [`SynthesisStats`], [`Synthesis`], [`SynthesisError`] —
//! and [`Glade`], the deprecated blocking wrapper kept for source
//! compatibility.

use crate::chargen::default_test_bytes;
use crate::session::GladeBuilder;
use crate::Oracle;
use glade_grammar::{Grammar, Regex};
use std::fmt;
use std::time::Duration;

/// Configuration of a synthesis run.
///
/// Construct through [`GladeBuilder`](crate::GladeBuilder) (each field has
/// a fluent setter); the struct remains public so configurations can be
/// stored, compared, and passed around. The defaults reproduce the full
/// GLADE pipeline; the `phase2` and `character_generalization` switches
/// provide the paper's ablations (Section 8.2 evaluates "GLADE omitting
/// phase two" as `P1`, and a variant without character generalization).
#[derive(Debug, Clone)]
pub struct GladeConfig {
    /// Run the merge phase (Section 5). Disabling restricts GLADE to
    /// regular languages — the paper's `P1` ablation.
    pub phase2: bool,
    /// Run character generalization (Section 6.2).
    pub character_generalization: bool,
    /// Candidate bytes tried during character generalization. Defaults to
    /// printable ASCII plus tab and newline.
    pub char_test_bytes: Vec<u8>,
    /// Maximum number of *distinct* oracle queries per run before it
    /// degrades gracefully (stops generalizing further). `None` =
    /// unlimited. A [`Session`](crate::Session) applies the budget per
    /// [`add_seeds`](crate::Session::add_seeds) call.
    pub max_queries: Option<usize>,
    /// Wall-clock limit per run, emulating the paper's 300 s timeout.
    pub time_limit: Option<Duration>,
    /// Section 6.1 optimization: skip a seed if it is already matched by
    /// the disjunction of the regular expressions synthesized so far.
    pub skip_redundant_seeds: bool,
    /// Worker threads for batched membership checks (phase two's pairwise
    /// merge checks and character generalization's byte probes fan out
    /// across this pool; phase one batches each candidate's residual pair).
    /// `None` uses the machine's available parallelism; `Some(1)` forces
    /// the fully sequential path. With no `time_limit`, the synthesized
    /// grammar and the distinct query count are identical for every
    /// setting; with a deadline, *where* synthesis degrades depends on how
    /// many queries complete in time — inherently machine- and
    /// worker-count-dependent (more workers finish more queries before the
    /// cutoff), just as the deadline made the sequential seed
    /// implementation timing-dependent.
    pub worker_threads: Option<usize>,
    /// Per-query deadline applied to the oracle (see
    /// [`Oracle::configure_timeout`](crate::Oracle::configure_timeout)): a
    /// worker that accepts a query but never answers within this limit is
    /// killed and the query is retried or counted as a failure, so a hung
    /// parser binary cannot stall synthesis forever. `None` (the default)
    /// waits forever. Affects liveness only, never verdicts — in-process
    /// oracles ignore it.
    pub oracle_timeout: Option<Duration>,
    /// Run the query-reduction layer (byte-class memoization, context
    /// short-circuiting, in-wave check dedup, and merge-check pruning —
    /// see the `chargen.rs` module docs). On by default; every elision is
    /// exact, so the synthesized grammar is byte-identical either way —
    /// only the query counts change. `false` restores the historical
    /// one-shot planners (and their query counts).
    pub memoize_byte_classes: bool,
}

impl Default for GladeConfig {
    fn default() -> Self {
        GladeConfig {
            phase2: true,
            character_generalization: true,
            char_test_bytes: default_test_bytes(),
            max_queries: None,
            time_limit: None,
            skip_redundant_seeds: true,
            worker_threads: None,
            oracle_timeout: None,
            memoize_byte_classes: true,
        }
    }
}

impl GladeConfig {
    /// The `P1` ablation: phase one (plus character generalization) only.
    pub fn phase1_only() -> Self {
        GladeConfig { phase2: false, ..GladeConfig::default() }
    }

    /// The no-character-generalization ablation.
    pub fn without_char_generalization() -> Self {
        GladeConfig { character_generalization: false, ..GladeConfig::default() }
    }
}

/// Counters and timings recorded by a synthesis run.
///
/// In a [`Session`](crate::Session), the seed/star/merge/character counters
/// and `unique_queries` describe the *whole session so far* (so the final
/// `add_seeds` call reports exactly what a fresh run on all seeds would);
/// `new_unique_queries`, `total_queries`, the phase timings, and the
/// budget/cancel flags describe the individual run.
#[derive(Debug, Clone, Default)]
pub struct SynthesisStats {
    /// Distinct membership queries cached across the session.
    pub unique_queries: usize,
    /// Distinct membership queries this run added to the cache (zero when
    /// a warm cache — an earlier run or a loaded snapshot — already held
    /// every answer).
    pub new_unique_queries: usize,
    /// Queries posed by this run, including cache hits.
    pub total_queries: usize,
    /// Seeds actually generalized.
    pub seeds_used: usize,
    /// Seeds skipped by the Section 6.1 redundancy optimization.
    pub seeds_skipped: usize,
    /// Repetition subexpressions discovered by phase one.
    pub star_count: usize,
    /// Total nodes in the per-seed generalization trees.
    pub tree_nodes: usize,
    /// Merge pairs examined by phase two.
    pub merge_pairs_tried: usize,
    /// Merge pairs accepted by phase two.
    pub merges_accepted: usize,
    /// (position, byte) pairs accepted by character generalization.
    pub chars_generalized: usize,
    /// Terminals whose byte classes were adopted from the query-reduction
    /// layer's memo table (or from an identical in-run sibling) instead of
    /// being re-probed. Cumulative across the session, like
    /// `chars_generalized`. Always zero with
    /// [`memoize_byte_classes`](GladeConfig::memoize_byte_classes) off.
    pub memo_hits: usize,
    /// Membership checks the one-shot planners would have posed that the
    /// query-reduction layer elided before they reached the query engine
    /// (memo adoptions, context short-circuits, in-wave duplicates,
    /// plan-time cache folds, and pruned merge checks). Cumulative across
    /// the session. Always zero with
    /// [`memoize_byte_classes`](GladeConfig::memoize_byte_classes) off.
    pub probes_elided: usize,
    /// Oracle *execution* failures during this run: queries for which no
    /// real verdict could be obtained (process spawn failed, pooled worker
    /// crashed beyond recovery) and which therefore answered a degraded
    /// `false`. Nonzero means the grammar may be under-generalized for
    /// environmental reasons rather than language reasons — exactly the
    /// situation that used to be silent. See
    /// [`Oracle::failure_count`](crate::Oracle::failure_count) and
    /// [`SynthEvent::OracleFailures`](crate::SynthEvent::OracleFailures).
    pub oracle_failures: usize,
    /// Queries abandoned because an oracle worker hung past the configured
    /// [`oracle_timeout`](GladeConfig::oracle_timeout) and was killed. Each
    /// such query was retried on a fresh worker or degraded (and is then
    /// also visible in
    /// [`oracle_failures`](SynthesisStats::oracle_failures)); see
    /// [`SynthEvent::WorkerHung`](crate::SynthEvent::WorkerHung).
    pub timed_out_queries: usize,
    /// Worker-slot circuit-breaker trips during this run: a slot whose
    /// spawns or workers kept failing was taken out of rotation for a
    /// cool-down; see
    /// [`SynthEvent::BreakerTripped`](crate::SynthEvent::BreakerTripped).
    pub tripped_workers: usize,
    /// Whether the query/time budget ran out (or the run was cancelled)
    /// mid-run.
    pub budget_exhausted: bool,
    /// Whether this run observed a [`CancelToken`](crate::CancelToken)
    /// cancellation. Cancelled runs degrade exactly like budget-exhausted
    /// ones: the grammar still contains every seed.
    pub cancelled: bool,
    /// Wall-clock time spent in phase one.
    pub phase1_time: Duration,
    /// Wall-clock time spent on character generalization. Chargen and
    /// phase two pose one shared aggregated membership batch; its wall
    /// time is attributed pro rata by check count, so this remains "time
    /// spent on this phase's oracle work".
    pub chargen_time: Duration,
    /// Wall-clock time spent on phase two (same pro-rata attribution of
    /// the shared batch as `chargen_time`).
    pub phase2_time: Duration,
}

impl SynthesisStats {
    /// Total synthesis time.
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.chargen_time + self.phase2_time
    }
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The synthesized context-free grammar `Ĉ` approximating `L*`.
    pub grammar: Grammar,
    /// The phase-one view: the disjunction of the per-seed regular
    /// expressions (after character generalization). Equal in language to
    /// `grammar` when phase two is disabled or accepts no merge.
    pub regex: Regex,
    /// Run statistics.
    pub stats: SynthesisStats,
}

/// Errors reported by [`Session::add_seeds`](crate::Session::add_seeds)
/// and the [`Glade::synthesize`] wrapper.
///
/// `#[non_exhaustive]`: the session API may add error variants (match with
/// a wildcard arm).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// No seed inputs were provided; GLADE needs at least one example.
    NoSeeds,
    /// A seed input is rejected by the oracle, violating the premise
    /// `E_in ⊆ L*` (Section 2).
    SeedRejected(Vec<u8>),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoSeeds => write!(f, "no seed inputs provided"),
            SynthesisError::SeedRejected(s) => {
                write!(f, "seed input {:?} is rejected by the oracle", String::from_utf8_lossy(s))
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// The legacy one-shot GLADE synthesizer.
///
/// Kept as a thin compatibility wrapper over the session API; new code
/// should use [`GladeBuilder`](crate::GladeBuilder) — either its one-shot
/// [`synthesize`](crate::GladeBuilder::synthesize) or a full
/// [`Session`](crate::Session) for observation, cancellation, incremental
/// seeds, and cache persistence.
///
/// # Examples
///
/// The paper's running example (Figures 1–3) through the builder:
///
/// ```
/// use glade_core::{FnOracle, GladeBuilder};
/// use glade_core::testing::xml_like;
/// use glade_grammar::Earley;
///
/// let oracle = FnOracle::new(xml_like);
/// let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle)?;
/// let parser = Earley::new(&result.grammar);
/// assert!(parser.accepts(b"<a><a>xyz</a></a>"));
/// assert!(!parser.accepts(b"<a>oops"));
/// # Ok::<(), glade_core::SynthesisError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Glade {
    config: GladeConfig,
}

impl Glade {
    /// Creates a synthesizer with the default configuration.
    pub fn new() -> Self {
        Glade { config: GladeConfig::default() }
    }

    /// Creates a synthesizer with an explicit configuration.
    pub fn with_config(config: GladeConfig) -> Self {
        Glade { config }
    }

    /// Starts a fluent [`GladeBuilder`] — the session API's entry point.
    pub fn builder() -> GladeBuilder {
        GladeBuilder::new()
    }

    /// The active configuration.
    pub fn config(&self) -> &GladeConfig {
        &self.config
    }

    /// Synthesizes a grammar from `seeds` and blackbox `oracle` access.
    ///
    /// Equivalent to `GladeBuilder::from_config(config).synthesize(seeds,
    /// oracle)`: one blocking run with no observer, no cancellation, and a
    /// cache that dies with the call.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::NoSeeds`] for an empty seed set and
    /// [`SynthesisError::SeedRejected`] if the oracle rejects a seed.
    #[deprecated(
        since = "0.1.0",
        note = "use GladeBuilder::synthesize for one-shot runs, or GladeBuilder::session \
                for observable, cancellable, incremental synthesis"
    )]
    pub fn synthesize(
        &self,
        seeds: &[Vec<u8>],
        oracle: &dyn Oracle,
    ) -> Result<Synthesis, SynthesisError> {
        GladeBuilder::from_config(self.config.clone()).synthesize(seeds, oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xml_like;
    use crate::{FnOracle, GladeBuilder};
    use glade_grammar::{Earley, Sampler};
    use rand::SeedableRng;

    #[test]
    fn full_pipeline_on_running_example() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        let e = Earley::new(&result.grammar);
        // Section 6.2's conclusion: L(Ĉ'_XML) = L(C_XML) — the synthesized
        // grammar is exactly the target on this example.
        for member in [
            &b""[..],
            b"<a>hi</a>",
            b"xyz",
            b"<a><a>deep</a></a>",
            b"<a></a><a>q</a>",
            b"<a><a>a</a><a>b</a>cc</a>",
        ] {
            assert!(e.accepts(member), "should accept {:?}", String::from_utf8_lossy(member));
        }
        for nonmember in
            [&b"<a>"[..], b"</a>", b"<a>hi</a", b"<b>x</b>", b"<a>HI</a>", b"1", b"<a><a></a>"]
        {
            assert!(
                !e.accepts(nonmember),
                "should reject {:?}",
                String::from_utf8_lossy(nonmember)
            );
        }
        assert_eq!(result.stats.star_count, 2);
        assert_eq!(result.stats.merges_accepted, 1);
        assert!(result.stats.unique_queries > 0);
    }

    #[test]
    fn deprecated_wrapper_matches_builder() {
        // The compatibility contract: Glade::synthesize and the session
        // API produce identical results for identical configs.
        let oracle = FnOracle::new(xml_like);
        #[allow(deprecated)]
        let old = Glade::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        let new = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        assert_eq!(
            glade_grammar::grammar_to_text(&old.grammar),
            glade_grammar::grammar_to_text(&new.grammar)
        );
        assert_eq!(old.stats.unique_queries, new.stats.unique_queries);
        assert_eq!(old.stats.total_queries, new.stats.total_queries);
    }

    #[test]
    fn precision_of_samples_is_perfect_on_running_example() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        let sampler = Sampler::new(&result.grammar);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..300 {
            let s = sampler.sample(&mut rng).expect("productive");
            assert!(xml_like(&s), "invalid sample {:?}", String::from_utf8_lossy(&s));
        }
    }

    #[test]
    fn phase1_only_ablation_is_regular() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::new()
            .phase2(false)
            .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
            .unwrap();
        let e = Earley::new(&result.grammar);
        assert!(e.accepts(b"<a>hi</a>"));
        assert!(e.accepts(b"<a>xy</a>")); // chargen widened letters inside tags
        assert!(!e.accepts(b"xy"), "top-level letters require the phase-2 merge");
        assert!(!e.accepts(b"<a><a>x</a></a>"), "P1 cannot nest");
        assert_eq!(result.stats.merge_pairs_tried, 0);
    }

    #[test]
    fn no_chargen_ablation_keeps_seed_letters_only() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::from_config(GladeConfig::without_char_generalization())
            .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
            .unwrap();
        let e = Earley::new(&result.grammar);
        assert!(e.accepts(b"<a>hihi</a>"));
        assert!(!e.accepts(b"<a>z</a>"), "z was never generalized");
        assert_eq!(result.stats.chars_generalized, 0);
    }

    #[test]
    fn errors_on_empty_and_rejected_seeds() {
        let oracle = FnOracle::new(xml_like);
        assert_eq!(
            GladeBuilder::new().synthesize(&[], &oracle).unwrap_err(),
            SynthesisError::NoSeeds
        );
        let err = GladeBuilder::new().synthesize(&[b"<bad".to_vec()], &oracle).unwrap_err();
        assert_eq!(err, SynthesisError::SeedRejected(b"<bad".to_vec()));
    }

    #[test]
    fn redundant_seed_is_skipped() {
        let oracle = FnOracle::new(xml_like);
        // The second seed is already covered by the first seed's regex
        // (<a>(letter)*</a>)* after phase 1.
        let seeds = vec![b"<a>hi</a>".to_vec(), b"<a>hi</a><a>hi</a>".to_vec()];
        let result = GladeBuilder::new().synthesize(&seeds, &oracle).unwrap();
        assert_eq!(result.stats.seeds_used, 1);
        assert_eq!(result.stats.seeds_skipped, 1);
    }

    #[test]
    fn multiple_seeds_union_at_start() {
        // L = {start,stop} ∪ digit strings: two structurally different seeds.
        let oracle = FnOracle::new(|i: &[u8]| {
            i == b"start" || i == b"stop" || (!i.is_empty() && i.iter().all(u8::is_ascii_digit))
        });
        let result = GladeBuilder::new()
            .character_generalization(false)
            .synthesize(&[b"start".to_vec(), b"42".to_vec()], &oracle)
            .unwrap();
        let e = Earley::new(&result.grammar);
        assert!(e.accepts(b"start"));
        assert!(e.accepts(b"42"));
        assert_eq!(result.stats.seeds_used, 2);
    }

    #[test]
    fn budget_limits_are_reported() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::new()
            .max_queries(5)
            .synthesize(&[b"<a>hi</a>".to_vec()], &oracle)
            .unwrap();
        assert!(result.stats.budget_exhausted);
        // The seed is still in the synthesized language (monotonicity).
        let e = Earley::new(&result.grammar);
        assert!(e.accepts(b"<a>hi</a>"));
    }

    #[test]
    fn stats_time_accounting() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        assert!(result.stats.total_time() >= result.stats.phase1_time);
        assert!(result.stats.total_queries >= result.stats.unique_queries);
        assert_eq!(result.stats.new_unique_queries, result.stats.unique_queries);
    }

    #[test]
    fn regex_field_matches_phase1_language() {
        let oracle = FnOracle::new(xml_like);
        let result = GladeBuilder::new().synthesize(&[b"<a>hi</a>".to_vec()], &oracle).unwrap();
        assert!(result.regex.is_match(b"<a>qq</a>"));
        assert!(!result.regex.is_match(b"<a><a>q</a></a>"), "regex view is pre-merge");
    }
}
