//! Membership oracles: blackbox access to the program under learning.
//!
//! GLADE's only interface to the target program is the oracle
//! `O(α) = 1[α ∈ L*]` (Section 2): run the program on an input and observe
//! whether it is accepted. This module defines the [`Oracle`] trait plus the
//! adapters used throughout the reproduction:
//!
//! * [`FnOracle`] — wrap any predicate closure (used for handwritten
//!   grammars and the instrumented target parsers).
//! * [`CachingOracle`] — memoize queries and count them (synthesis statistics
//!   report query counts through this wrapper).
//! * [`ProcessOracle`] — spawn an external executable per query, concluding
//!   validity from its exit status, exactly like the paper's setup where "we
//!   run the program on input α … and conclude that α is a valid input if
//!   the program does not print an error message".

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// Blackbox membership access to a target language.
///
/// Implementations must be deterministic: GLADE's monotonicity argument
/// assumes repeated queries agree.
pub trait Oracle {
    /// Returns whether `input` is a valid program input (`input ∈ L*`).
    fn accepts(&self, input: &[u8]) -> bool;
}

impl<O: Oracle + ?Sized> Oracle for &O {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }
}

impl<O: Oracle + ?Sized> Oracle for Box<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }
}

/// An oracle backed by a predicate function.
///
/// # Examples
///
/// ```
/// use glade_core::{FnOracle, Oracle};
///
/// let oracle = FnOracle::new(|input: &[u8]| input.iter().all(u8::is_ascii_lowercase));
/// assert!(oracle.accepts(b"abc"));
/// assert!(!oracle.accepts(b"aBc"));
/// ```
#[derive(Debug, Clone)]
pub struct FnOracle<F> {
    f: F,
}

impl<F: Fn(&[u8]) -> bool> FnOracle<F> {
    /// Wraps predicate `f`.
    pub fn new(f: F) -> Self {
        FnOracle { f }
    }
}

impl<F: Fn(&[u8]) -> bool> Oracle for FnOracle<F> {
    fn accepts(&self, input: &[u8]) -> bool {
        (self.f)(input)
    }
}

/// Memoizing, counting wrapper around another oracle.
///
/// GLADE issues many duplicate membership queries (identical checks arise
/// from different candidates); caching them is the paper's implicit
/// assumption that "each query to O takes constant time" (Section 4.4).
///
/// # Examples
///
/// ```
/// use glade_core::{CachingOracle, FnOracle, Oracle};
///
/// let inner = FnOracle::new(|i: &[u8]| i.len() % 2 == 0);
/// let oracle = CachingOracle::new(inner);
/// assert!(oracle.accepts(b"ab"));
/// assert!(oracle.accepts(b"ab"));
/// assert_eq!(oracle.unique_queries(), 1);
/// assert_eq!(oracle.total_queries(), 2);
/// ```
#[derive(Debug)]
pub struct CachingOracle<O> {
    inner: O,
    cache: RefCell<HashMap<Vec<u8>, bool>>,
    total: Cell<usize>,
}

impl<O: Oracle> CachingOracle<O> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: O) -> Self {
        CachingOracle { inner, cache: RefCell::new(HashMap::new()), total: Cell::new(0) }
    }

    /// Number of queries answered (including cache hits).
    pub fn total_queries(&self) -> usize {
        self.total.get()
    }

    /// Number of distinct inputs forwarded to the inner oracle.
    pub fn unique_queries(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CachingOracle<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        self.total.set(self.total.get() + 1);
        if let Some(&v) = self.cache.borrow().get(input) {
            return v;
        }
        let v = self.inner.accepts(input);
        self.cache.borrow_mut().insert(input.to_vec(), v);
        v
    }
}

/// How a [`ProcessOracle`] delivers the candidate input to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Write the input to the child's stdin.
    Stdin,
    /// Write the input to a temporary file and substitute its path for the
    /// `{}` placeholder in the argument list.
    TempFile,
}

/// Spawns an external program per membership query.
///
/// The input is judged valid when the process exits with status zero —
/// mirroring the paper's blackbox setup. Use [`ProcessOracle::require_empty_stderr`]
/// for programs that signal parse errors on stderr but still exit 0.
///
/// # Examples
///
/// ```no_run
/// use glade_core::{InputMode, Oracle, ProcessOracle};
///
/// // Validate XML by exit status of `xmllint --noout <file>`.
/// let oracle = ProcessOracle::new("xmllint")
///     .arg("--noout")
///     .arg("{}")
///     .input_mode(InputMode::TempFile);
/// let _ = oracle.accepts(b"<a>hi</a>");
/// ```
#[derive(Debug, Clone)]
pub struct ProcessOracle {
    program: PathBuf,
    args: Vec<String>,
    input_mode: InputMode,
    require_empty_stderr: bool,
}

impl ProcessOracle {
    /// Creates an oracle that runs `program`, feeding inputs on stdin.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ProcessOracle {
            program: program.into(),
            args: Vec::new(),
            input_mode: InputMode::Stdin,
            require_empty_stderr: false,
        }
    }

    /// Appends a command-line argument. The placeholder `{}` is replaced by
    /// the temporary input file path when [`InputMode::TempFile`] is used.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Selects how the input reaches the program.
    pub fn input_mode(mut self, mode: InputMode) -> Self {
        self.input_mode = mode;
        self
    }

    /// Additionally requires stderr to be empty for an input to count as
    /// valid (the paper's "does not print an error message" criterion).
    pub fn require_empty_stderr(mut self, yes: bool) -> Self {
        self.require_empty_stderr = yes;
        self
    }
}

impl Oracle for ProcessOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        let run = |cmd: &mut Command, stdin_payload: Option<&[u8]>| -> Option<(bool, Vec<u8>)> {
            cmd.stdout(Stdio::null()).stderr(Stdio::piped());
            cmd.stdin(if stdin_payload.is_some() { Stdio::piped() } else { Stdio::null() });
            let mut child = cmd.spawn().ok()?;
            if let Some(payload) = stdin_payload {
                // Ignore broken pipes: the program may legitimately stop
                // reading after detecting an error.
                let _ = child.stdin.take().expect("piped stdin").write_all(payload);
            }
            let out = child.wait_with_output().ok()?;
            Some((out.status.success(), out.stderr))
        };

        let result = match self.input_mode {
            InputMode::Stdin => {
                let mut cmd = Command::new(&self.program);
                cmd.args(&self.args);
                run(&mut cmd, Some(input))
            }
            InputMode::TempFile => {
                let path = std::env::temp_dir().join(format!(
                    "glade-oracle-{}-{:x}.in",
                    std::process::id(),
                    // Distinguish concurrent queries without extra deps.
                    input.as_ptr() as usize ^ input.len()
                ));
                if std::fs::write(&path, input).is_err() {
                    return false;
                }
                let mut cmd = Command::new(&self.program);
                for a in &self.args {
                    if a == "{}" {
                        cmd.arg(&path);
                    } else {
                        cmd.arg(a);
                    }
                }
                let r = run(&mut cmd, None);
                let _ = std::fs::remove_file(&path);
                r
            }
        };
        match result {
            Some((ok, stderr)) => ok && (!self.require_empty_stderr || stderr.is_empty()),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_oracle_delegates() {
        let o = FnOracle::new(|i: &[u8]| i.starts_with(b"ok"));
        assert!(o.accepts(b"okay"));
        assert!(!o.accepts(b"nope"));
    }

    #[test]
    fn caching_oracle_counts_and_memoizes() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| {
            calls.set(calls.get() + 1);
            i.is_empty()
        }));
        assert!(o.accepts(b""));
        assert!(o.accepts(b""));
        assert!(!o.accepts(b"x"));
        assert_eq!(o.total_queries(), 3);
        assert_eq!(o.unique_queries(), 2);
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn oracle_by_reference_works() {
        fn takes_oracle(o: &dyn Oracle) -> bool {
            o.accepts(b"y")
        }
        let o = FnOracle::new(|i: &[u8]| i == b"y");
        assert!(takes_oracle(&o));
        // The blanket &O impl also composes.
        let r = &o;
        assert!(r.accepts(b"y"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_stdin_true_false() {
        // `grep -q x` exits 0 iff stdin contains an "x".
        let o = ProcessOracle::new("grep").arg("-q").arg("x");
        assert!(o.accepts(b"axb"));
        assert!(!o.accepts(b"abc"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_mode() {
        // `grep -q pat FILE` with the file substituted for {}.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile);
        assert!(o.accepts(b"hay needle stack"));
        assert!(!o.accepts(b"just hay"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_missing_program_rejects() {
        let o = ProcessOracle::new("/nonexistent/program/glade");
        assert!(!o.accepts(b"anything"));
    }
}
