//! Membership oracles: blackbox access to the program under learning.
//!
//! GLADE's only interface to the target program is the oracle
//! `O(α) = 1[α ∈ L*]` (Section 2): run the program on an input and observe
//! whether it is accepted. This module defines the [`Oracle`] trait plus the
//! adapters used throughout the reproduction:
//!
//! * [`FnOracle`] — wrap any predicate closure (used for handwritten
//!   grammars and the instrumented target parsers).
//! * [`CachingOracle`] — memoize queries and count them (synthesis statistics
//!   report query counts through this wrapper).
//! * [`ProcessOracle`] — spawn an external executable per query, concluding
//!   validity from its exit status, exactly like the paper's setup where "we
//!   run the program on input α … and conclude that α is a valid input if
//!   the program does not print an error message".
//!
//! # Thread safety
//!
//! `Oracle` requires `Send + Sync`: the query engine fans batched checks out
//! across a scoped worker pool, so one oracle value is shared by several
//! threads and queried concurrently. See the crate-level documentation for
//! the full contract (determinism + thread safety).

use crate::cache::ShardedCache;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Blackbox membership access to a target language.
///
/// # Contract
///
/// Implementations must be **deterministic**: repeated queries for the same
/// input must agree, across threads and across time. GLADE's monotonicity
/// argument assumes this, and so does the parallel query engine — duplicate
/// in-flight queries may each reach the oracle, and whichever verdict lands
/// in the cache first is kept.
///
/// Implementations must be **thread-safe** (`Send + Sync`): membership
/// checks are batched and dispatched concurrently from a scoped worker
/// pool, all sharing `&self`.
pub trait Oracle: Send + Sync {
    /// Returns whether `input` is a valid program input (`input ∈ L*`).
    fn accepts(&self, input: &[u8]) -> bool;
}

impl<O: Oracle + ?Sized> Oracle for &O {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }
}

impl<O: Oracle + ?Sized> Oracle for Box<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }
}

impl<O: Oracle + ?Sized> Oracle for Arc<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }
}

/// An oracle backed by a predicate function.
///
/// The predicate must be `Sync` (shared by query worker threads); any pure
/// function qualifies. Use atomics rather than `Cell`/`RefCell` for
/// instrumentation state inside test predicates.
///
/// # Examples
///
/// ```
/// use glade_core::{FnOracle, Oracle};
///
/// let oracle = FnOracle::new(|input: &[u8]| input.iter().all(u8::is_ascii_lowercase));
/// assert!(oracle.accepts(b"abc"));
/// assert!(!oracle.accepts(b"aBc"));
/// ```
#[derive(Debug, Clone)]
pub struct FnOracle<F> {
    f: F,
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> FnOracle<F> {
    /// Wraps predicate `f`.
    pub fn new(f: F) -> Self {
        FnOracle { f }
    }
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> Oracle for FnOracle<F> {
    fn accepts(&self, input: &[u8]) -> bool {
        (self.f)(input)
    }
}

/// Memoizing, counting wrapper around another oracle.
///
/// GLADE issues many duplicate membership queries (identical checks arise
/// from different candidates); caching them is the paper's implicit
/// assumption that "each query to O takes constant time" (Section 4.4).
/// The cache is mutex-striped and the counters are atomic, so a single
/// `CachingOracle` serves all query worker threads concurrently.
///
/// # Examples
///
/// ```
/// use glade_core::{CachingOracle, FnOracle, Oracle};
///
/// let inner = FnOracle::new(|i: &[u8]| i.len() % 2 == 0);
/// let oracle = CachingOracle::new(inner);
/// assert!(oracle.accepts(b"ab"));
/// assert!(oracle.accepts(b"ab"));
/// assert_eq!(oracle.unique_queries(), 1);
/// assert_eq!(oracle.total_queries(), 2);
/// ```
#[derive(Debug)]
pub struct CachingOracle<O> {
    inner: O,
    cache: ShardedCache,
    total: AtomicUsize,
}

impl<O: Oracle> CachingOracle<O> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: O) -> Self {
        CachingOracle { inner, cache: ShardedCache::new(), total: AtomicUsize::new(0) }
    }

    /// Number of queries answered (including cache hits).
    pub fn total_queries(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of distinct inputs forwarded to the inner oracle.
    ///
    /// Under concurrency, racing misses for the same input may each reach
    /// the inner oracle; the count reflects distinct *cached* inputs, which
    /// is the paper's cost measure.
    pub fn unique_queries(&self) -> usize {
        self.cache.len()
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CachingOracle<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.cache.get(input) {
            return v;
        }
        let v = self.inner.accepts(input);
        self.cache.insert(input.to_vec(), v);
        v
    }
}

/// How a [`ProcessOracle`] delivers the candidate input to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Write the input to the child's stdin.
    Stdin,
    /// Write the input to a temporary file and substitute its path for the
    /// `{}` placeholder in the argument list.
    TempFile,
}

/// Counting semaphore bounding concurrent child processes.
#[derive(Debug)]
struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore { permits: Mutex::new(permits), available: Condvar::new() }
    }

    fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.available.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }
}

struct SemaphoreGuard<'s> {
    sem: &'s Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        let mut permits = self.sem.permits.lock().expect("semaphore poisoned");
        *permits += 1;
        self.sem.available.notify_one();
    }
}

/// Process-wide counter distinguishing concurrent temp files. The previous
/// scheme (`input.as_ptr() ^ input.len()`) collided for identical-length
/// inputs whose buffers reused an address — guaranteed corruption once
/// queries run in parallel.
static TEMP_FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Spawns an external program per membership query.
///
/// The input is judged valid when the process exits with status zero —
/// mirroring the paper's blackbox setup. Use [`ProcessOracle::require_empty_stderr`]
/// for programs that signal parse errors on stderr but still exit 0.
///
/// # Concurrency
///
/// `ProcessOracle` is `Sync` and may be queried from many worker threads at
/// once. Because validity is read from the *exit status*, each query
/// inherently needs its own child process; a persistent in-process worker
/// would change the oracle's semantics. What the paper's cost model needs
/// is admission control, not process reuse: [`ProcessOracle::max_concurrent`]
/// installs a counting semaphore so a large batch fan-out cannot fork-bomb
/// the machine. Clones share the same limiter.
///
/// # Examples
///
/// ```no_run
/// use glade_core::{InputMode, Oracle, ProcessOracle};
///
/// // Validate XML by exit status of `xmllint --noout <file>`.
/// let oracle = ProcessOracle::new("xmllint")
///     .arg("--noout")
///     .arg("{}")
///     .input_mode(InputMode::TempFile)
///     .max_concurrent(8);
/// let _ = oracle.accepts(b"<a>hi</a>");
/// ```
#[derive(Debug, Clone)]
pub struct ProcessOracle {
    program: PathBuf,
    args: Vec<String>,
    input_mode: InputMode,
    require_empty_stderr: bool,
    limiter: Option<Arc<Semaphore>>,
}

impl ProcessOracle {
    /// Creates an oracle that runs `program`, feeding inputs on stdin.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ProcessOracle {
            program: program.into(),
            args: Vec::new(),
            input_mode: InputMode::Stdin,
            require_empty_stderr: false,
            limiter: None,
        }
    }

    /// Appends a command-line argument. The placeholder `{}` is replaced by
    /// the temporary input file path when [`InputMode::TempFile`] is used.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Selects how the input reaches the program.
    pub fn input_mode(mut self, mode: InputMode) -> Self {
        self.input_mode = mode;
        self
    }

    /// Additionally requires stderr to be empty for an input to count as
    /// valid (the paper's "does not print an error message" criterion).
    pub fn require_empty_stderr(mut self, yes: bool) -> Self {
        self.require_empty_stderr = yes;
        self
    }

    /// Bounds the number of child processes in flight at once (shared by
    /// clones of this oracle). `n` must be nonzero.
    pub fn max_concurrent(mut self, n: usize) -> Self {
        assert!(n > 0, "max_concurrent requires at least one permit");
        self.limiter = Some(Arc::new(Semaphore::new(n)));
        self
    }
}

impl Oracle for ProcessOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        let _permit = self.limiter.as_ref().map(|l| l.acquire());

        let run = |cmd: &mut Command, stdin_payload: Option<&[u8]>| -> Option<(bool, Vec<u8>)> {
            cmd.stdout(Stdio::null()).stderr(Stdio::piped());
            cmd.stdin(if stdin_payload.is_some() { Stdio::piped() } else { Stdio::null() });
            let mut child = cmd.spawn().ok()?;
            if let Some(payload) = stdin_payload {
                // Ignore broken pipes: the program may legitimately stop
                // reading after detecting an error.
                let _ = child.stdin.take().expect("piped stdin").write_all(payload);
            }
            let out = child.wait_with_output().ok()?;
            Some((out.status.success(), out.stderr))
        };

        let result = match self.input_mode {
            InputMode::Stdin => {
                let mut cmd = Command::new(&self.program);
                cmd.args(&self.args);
                run(&mut cmd, Some(input))
            }
            InputMode::TempFile => {
                let path = std::env::temp_dir().join(format!(
                    "glade-oracle-{}-{}.in",
                    std::process::id(),
                    TEMP_FILE_COUNTER.fetch_add(1, Ordering::Relaxed),
                ));
                if std::fs::write(&path, input).is_err() {
                    return false;
                }
                let mut cmd = Command::new(&self.program);
                for a in &self.args {
                    if a == "{}" {
                        cmd.arg(&path);
                    } else {
                        cmd.arg(a);
                    }
                }
                let r = run(&mut cmd, None);
                let _ = std::fs::remove_file(&path);
                r
            }
        };
        match result {
            Some((ok, stderr)) => ok && (!self.require_empty_stderr || stderr.is_empty()),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_oracle_delegates() {
        let o = FnOracle::new(|i: &[u8]| i.starts_with(b"ok"));
        assert!(o.accepts(b"okay"));
        assert!(!o.accepts(b"nope"));
    }

    #[test]
    fn caching_oracle_counts_and_memoizes() {
        let calls = AtomicUsize::new(0);
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            i.is_empty()
        }));
        assert!(o.accepts(b""));
        assert!(o.accepts(b""));
        assert!(!o.accepts(b"x"));
        assert_eq!(o.total_queries(), 3);
        assert_eq!(o.unique_queries(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caching_oracle_is_consistent_under_concurrency() {
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| i.len().is_multiple_of(2)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let o = &o;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let input = i.to_le_bytes();
                        assert_eq!(o.accepts(&input), input.len() % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(o.unique_queries(), 200);
        assert_eq!(o.total_queries(), 800);
    }

    #[test]
    fn oracle_by_reference_works() {
        fn takes_oracle(o: &dyn Oracle) -> bool {
            o.accepts(b"y")
        }
        let o = FnOracle::new(|i: &[u8]| i == b"y");
        assert!(takes_oracle(&o));
        // The blanket &O impl also composes.
        let r = &o;
        assert!(r.accepts(b"y"));
    }

    #[test]
    fn oracle_impls_are_send_sync() {
        fn assert_oracle<T: Oracle + Send + Sync>() {}
        assert_oracle::<FnOracle<fn(&[u8]) -> bool>>();
        assert_oracle::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
        assert_oracle::<ProcessOracle>();
        assert_oracle::<Box<dyn Oracle>>();
        assert_oracle::<Arc<dyn Oracle>>();
        assert_oracle::<&dyn Oracle>();
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_stdin_true_false() {
        // `grep -q x` exits 0 iff stdin contains an "x".
        let o = ProcessOracle::new("grep").arg("-q").arg("x");
        assert!(o.accepts(b"axb"));
        assert!(!o.accepts(b"abc"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_mode() {
        // `grep -q pat FILE` with the file substituted for {}.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile);
        assert!(o.accepts(b"hay needle stack"));
        assert!(!o.accepts(b"just hay"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_concurrent_queries_do_not_collide() {
        // Identical-length inputs hammered from many threads: under the old
        // pointer-based temp naming these raced on the same file.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile)
            .max_concurrent(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let o = &o;
                s.spawn(move || {
                    for _ in 0..5 {
                        if t % 2 == 0 {
                            assert!(o.accepts(b"needle--"), "thread {t}");
                        } else {
                            assert!(!o.accepts(b"haystack"), "thread {t}");
                        }
                    }
                });
            }
        });
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_missing_program_rejects() {
        let o = ProcessOracle::new("/nonexistent/program/glade");
        assert!(!o.accepts(b"anything"));
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Semaphore::new(2);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (sem, active, peak) = (&sem, &active, &peak);
                s.spawn(move || {
                    let _g = sem.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }
}
