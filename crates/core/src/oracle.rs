//! Membership oracles: blackbox access to the program under learning.
//!
//! GLADE's only interface to the target program is the oracle
//! `O(α) = 1[α ∈ L*]` (Section 2): run the program on an input and observe
//! whether it is accepted. This module defines the [`Oracle`] trait plus the
//! adapters used throughout the reproduction:
//!
//! * [`FnOracle`] — wrap any predicate closure (used for handwritten
//!   grammars and the instrumented target parsers).
//! * [`CachingOracle`] — memoize queries and count them (synthesis statistics
//!   report query counts through this wrapper).
//! * [`ProcessOracle`] — spawn an external executable per query, concluding
//!   validity from its exit status, exactly like the paper's setup where "we
//!   run the program on input α … and conclude that α is a valid input if
//!   the program does not print an error message".
//! * [`PooledProcessOracle`] — keep a pool of long-lived worker processes
//!   and pose each query over a pipe instead of paying a process spawn per
//!   query (the forkserver trick; see the protocol below).
//!
//! # The pooled worker protocol
//!
//! Spawning a process per membership query costs milliseconds; the paper's
//! cost model ("each query to O takes constant time") assumes queries are
//! cheap. [`PooledProcessOracle`] amortizes the spawn by keeping N
//! long-lived workers, each speaking a minimal length-prefixed verdict
//! protocol over stdin/stdout:
//!
//! ```text
//! request  (oracle → worker):  u32 little-endian byte length, then the
//!                              input bytes (arbitrary binary, may be empty)
//! response (worker → oracle):  one byte, 0x01 = accept, 0x00 = reject
//! ```
//!
//! Requests are posed strictly one at a time per worker; a clean EOF on the
//! worker's stdin tells it to exit. Any other deviation — the worker dying,
//! a short read, a verdict byte other than `0`/`1` — is treated as a worker
//! crash: the worker is reaped, a replacement is spawned, and the query is
//! retried once on the fresh worker before the oracle gives up on the
//! pooled path (falling back to a spawn-per-query [`ProcessOracle`] when
//! one is configured, and otherwise counting an oracle failure and
//! answering `false`).
//!
//! Any `fn(&[u8]) -> bool` target becomes a protocol-speaking worker with
//! [`serve_oracle_worker`] — call it from a binary's `main` (the
//! `glade-oracle-worker` binary in `glade-targets` does exactly this for
//! the built-in evaluation targets).
//!
//! # Oracle execution failures
//!
//! A blackbox oracle can fail to *execute* (binary missing, fork limit,
//! pipe torn down mid-query) — which is different from the program
//! rejecting the input. Failed executions answer `false` (fail closed, the
//! same degradation contract as the query budget), are **never cached**
//! (the engine queries through [`Oracle::accepts_checked`], whose `None`
//! keeps degraded answers out of the session cache and out of persisted
//! snapshots), and are **counted**:
//! [`Oracle::failure_count`] exposes the running total, the engine surfaces
//! the per-run delta as
//! [`SynthesisStats::oracle_failures`](crate::SynthesisStats::oracle_failures)
//! and emits
//! [`SynthEvent::OracleFailures`](crate::SynthEvent::OracleFailures), so a
//! degraded run is diagnosable instead of silently under-generalizing.
//!
//! # Thread safety
//!
//! `Oracle` requires `Send + Sync`: the query engine fans batched checks out
//! across a scoped worker pool, so one oracle value is shared by several
//! threads and queried concurrently. See the crate-level documentation for
//! the full contract (determinism + thread safety).

use crate::cache::ShardedCache;
use std::io::{BufReader, Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Blackbox membership access to a target language.
///
/// # Contract
///
/// Implementations must be **deterministic**: repeated queries for the same
/// input must agree, across threads and across time. GLADE's monotonicity
/// argument assumes this, and so does the parallel query engine — duplicate
/// in-flight queries may each reach the oracle, and whichever verdict lands
/// in the cache first is kept.
///
/// Implementations must be **thread-safe** (`Send + Sync`): membership
/// checks are batched and dispatched concurrently from a scoped worker
/// pool, all sharing `&self`.
pub trait Oracle: Send + Sync {
    /// Returns whether `input` is a valid program input (`input ∈ L*`).
    fn accepts(&self, input: &[u8]) -> bool;

    /// Like [`Oracle::accepts`], but distinguishes an oracle *execution
    /// failure* (`None` — the verdict could not be obtained at all) from a
    /// real reject (`Some(false)`). The query engine uses this form so
    /// degraded answers are never mistaken for verdicts: a `None` answers
    /// `false` for the in-flight check but is **not cached** and never
    /// reaches a persisted snapshot.
    ///
    /// The default wraps `accepts` (in-process oracles cannot fail to
    /// execute); implementations whose `failure_count` can grow should
    /// override it and return `None` exactly when they record a failure.
    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        Some(self.accepts(input))
    }

    /// Number of queries (so far, across the oracle's lifetime) that failed
    /// to *execute* — the verdict could not be obtained and `accepts`
    /// answered a degraded `false`. In-process oracles never fail; process
    /// oracles count spawn and I/O errors here so runs against a broken
    /// target are diagnosable (see
    /// [`SynthesisStats::oracle_failures`](crate::SynthesisStats::oracle_failures)).
    fn failure_count(&self) -> usize {
        0
    }
}

impl<O: Oracle + ?Sized> Oracle for &O {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        (**self).accepts_checked(input)
    }

    fn failure_count(&self) -> usize {
        (**self).failure_count()
    }
}

impl<O: Oracle + ?Sized> Oracle for Box<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        (**self).accepts_checked(input)
    }

    fn failure_count(&self) -> usize {
        (**self).failure_count()
    }
}

impl<O: Oracle + ?Sized> Oracle for Arc<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        (**self).accepts(input)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        (**self).accepts_checked(input)
    }

    fn failure_count(&self) -> usize {
        (**self).failure_count()
    }
}

/// An oracle backed by a predicate function.
///
/// The predicate must be `Sync` (shared by query worker threads); any pure
/// function qualifies. Use atomics rather than `Cell`/`RefCell` for
/// instrumentation state inside test predicates.
///
/// # Examples
///
/// ```
/// use glade_core::{FnOracle, Oracle};
///
/// let oracle = FnOracle::new(|input: &[u8]| input.iter().all(u8::is_ascii_lowercase));
/// assert!(oracle.accepts(b"abc"));
/// assert!(!oracle.accepts(b"aBc"));
/// ```
#[derive(Debug, Clone)]
pub struct FnOracle<F> {
    f: F,
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> FnOracle<F> {
    /// Wraps predicate `f`.
    pub fn new(f: F) -> Self {
        FnOracle { f }
    }
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> Oracle for FnOracle<F> {
    fn accepts(&self, input: &[u8]) -> bool {
        (self.f)(input)
    }
}

/// Memoizing, counting wrapper around another oracle.
///
/// GLADE issues many duplicate membership queries (identical checks arise
/// from different candidates); caching them is the paper's implicit
/// assumption that "each query to O takes constant time" (Section 4.4).
/// The cache is mutex-striped and the counters are atomic, so a single
/// `CachingOracle` serves all query worker threads concurrently.
///
/// # Examples
///
/// ```
/// use glade_core::{CachingOracle, FnOracle, Oracle};
///
/// let inner = FnOracle::new(|i: &[u8]| i.len() % 2 == 0);
/// let oracle = CachingOracle::new(inner);
/// assert!(oracle.accepts(b"ab"));
/// assert!(oracle.accepts(b"ab"));
/// assert_eq!(oracle.unique_queries(), 1);
/// assert_eq!(oracle.total_queries(), 2);
/// ```
#[derive(Debug)]
pub struct CachingOracle<O> {
    inner: O,
    cache: ShardedCache,
    total: AtomicUsize,
}

impl<O: Oracle> CachingOracle<O> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: O) -> Self {
        CachingOracle { inner, cache: ShardedCache::new(), total: AtomicUsize::new(0) }
    }

    /// Number of queries answered (including cache hits).
    pub fn total_queries(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of distinct inputs forwarded to the inner oracle.
    ///
    /// Under concurrency, racing misses for the same input may each reach
    /// the inner oracle; the count reflects distinct *cached* inputs, which
    /// is the paper's cost measure.
    pub fn unique_queries(&self) -> usize {
        self.cache.len()
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CachingOracle<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.cache.get(input) {
            return Some(v);
        }
        // Failed executions answer `None` and are deliberately not cached:
        // only real verdicts may be memoized.
        let v = self.inner.accepts_checked(input)?;
        self.cache.insert(input.to_vec(), v);
        Some(v)
    }

    fn failure_count(&self) -> usize {
        self.inner.failure_count()
    }
}

/// How a [`ProcessOracle`] delivers the candidate input to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Write the input to the child's stdin.
    Stdin,
    /// Write the input to a temporary file and substitute its path for the
    /// `{}` placeholder in the argument list.
    TempFile,
}

/// Counting semaphore bounding concurrent child processes.
#[derive(Debug)]
struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore { permits: Mutex::new(permits), available: Condvar::new() }
    }

    fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.available.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }
}

struct SemaphoreGuard<'s> {
    sem: &'s Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        let mut permits = self.sem.permits.lock().expect("semaphore poisoned");
        *permits += 1;
        self.sem.available.notify_one();
    }
}

/// Process-wide counter distinguishing concurrent temp files. The previous
/// scheme (`input.as_ptr() ^ input.len()`) collided for identical-length
/// inputs whose buffers reused an address — guaranteed corruption once
/// queries run in parallel.
static TEMP_FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Spawns an external program per membership query.
///
/// The input is judged valid when the process exits with status zero —
/// mirroring the paper's blackbox setup. Use [`ProcessOracle::require_empty_stderr`]
/// for programs that signal parse errors on stderr but still exit 0.
///
/// Execution failures (the program cannot be spawned, the temp file cannot
/// be written, waiting on the child fails) answer `false` and increment
/// [`Oracle::failure_count`]; a nonzero exit status is a *verdict*, not a
/// failure. For hot loops against a real target, prefer
/// [`PooledProcessOracle`], which pays the spawn once per worker instead of
/// once per query.
///
/// # Concurrency
///
/// `ProcessOracle` is `Sync` and may be queried from many worker threads at
/// once. Because validity is read from the *exit status*, each query
/// inherently needs its own child process; a persistent in-process worker
/// would change the oracle's semantics (that is what the explicit worker
/// protocol of [`PooledProcessOracle`] is for). What the paper's cost model
/// needs from *this* oracle is admission control, not process reuse:
/// [`ProcessOracle::max_concurrent`] installs a counting semaphore so a
/// large batch fan-out cannot fork-bomb the machine. Clones share the same
/// limiter and the same failure counter.
///
/// # Examples
///
/// ```no_run
/// use glade_core::{InputMode, Oracle, ProcessOracle};
///
/// // Validate XML by exit status of `xmllint --noout <file>`.
/// let oracle = ProcessOracle::new("xmllint")
///     .arg("--noout")
///     .arg("{}")
///     .input_mode(InputMode::TempFile)
///     .max_concurrent(8);
/// let _ = oracle.accepts(b"<a>hi</a>");
/// ```
#[derive(Debug, Clone)]
pub struct ProcessOracle {
    program: PathBuf,
    args: Vec<String>,
    input_mode: InputMode,
    require_empty_stderr: bool,
    limiter: Option<Arc<Semaphore>>,
    /// Shared by clones so a fanned-out run reports one total.
    failures: Arc<AtomicUsize>,
}

impl ProcessOracle {
    /// Creates an oracle that runs `program`, feeding inputs on stdin.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ProcessOracle {
            program: program.into(),
            args: Vec::new(),
            input_mode: InputMode::Stdin,
            require_empty_stderr: false,
            limiter: None,
            failures: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Appends a command-line argument. The placeholder `{}` is replaced by
    /// the temporary input file path when [`InputMode::TempFile`] is used.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Selects how the input reaches the program.
    pub fn input_mode(mut self, mode: InputMode) -> Self {
        self.input_mode = mode;
        self
    }

    /// Additionally requires stderr to be empty for an input to count as
    /// valid (the paper's "does not print an error message" criterion).
    pub fn require_empty_stderr(mut self, yes: bool) -> Self {
        self.require_empty_stderr = yes;
        self
    }

    /// Bounds the number of child processes in flight at once (shared by
    /// clones of this oracle). `n` must be nonzero.
    pub fn max_concurrent(mut self, n: usize) -> Self {
        assert!(n > 0, "max_concurrent requires at least one permit");
        self.limiter = Some(Arc::new(Semaphore::new(n)));
        self
    }

    /// A stable fingerprint of the oracle's identity — the program path,
    /// arguments, input mode, and stderr policy — for tagging persisted
    /// query-cache snapshots (see
    /// [`GladeBuilder::oracle_fingerprint`](crate::GladeBuilder::oracle_fingerprint)
    /// and the `glade-cache v2` format in `persist.rs`). Verdicts are facts
    /// about one target: replaying a snapshot against a different program
    /// silently corrupts synthesis, and the fingerprint lets `load_cache`
    /// reject that.
    pub fn fingerprint(&self) -> String {
        let mode = match self.input_mode {
            InputMode::Stdin => "stdin",
            InputMode::TempFile => "tempfile",
        };
        format!(
            "process:{}:{}:{}:{}",
            self.program.display(),
            self.args.join("\u{1f}"),
            mode,
            if self.require_empty_stderr { "empty-stderr" } else { "any-stderr" },
        )
    }

    fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }
}

impl Oracle for ProcessOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        let _permit = self.limiter.as_ref().map(|l| l.acquire());

        let run = |cmd: &mut Command, stdin_payload: Option<&[u8]>| -> Option<(bool, Vec<u8>)> {
            cmd.stdout(Stdio::null()).stderr(Stdio::piped());
            cmd.stdin(if stdin_payload.is_some() { Stdio::piped() } else { Stdio::null() });
            let mut child = cmd.spawn().ok()?;
            if let Some(payload) = stdin_payload {
                // Ignore broken pipes: the program may legitimately stop
                // reading after detecting an error.
                let _ = child.stdin.take().expect("piped stdin").write_all(payload);
            }
            let out = child.wait_with_output().ok()?;
            Some((out.status.success(), out.stderr))
        };

        let result = match self.input_mode {
            InputMode::Stdin => {
                let mut cmd = Command::new(&self.program);
                cmd.args(&self.args);
                run(&mut cmd, Some(input))
            }
            InputMode::TempFile => {
                let path = std::env::temp_dir().join(format!(
                    "glade-oracle-{}-{}.in",
                    std::process::id(),
                    TEMP_FILE_COUNTER.fetch_add(1, Ordering::Relaxed),
                ));
                if std::fs::write(&path, input).is_err() {
                    self.record_failure();
                    return None;
                }
                let mut cmd = Command::new(&self.program);
                for a in &self.args {
                    if a == "{}" {
                        cmd.arg(&path);
                    } else {
                        cmd.arg(a);
                    }
                }
                let r = run(&mut cmd, None);
                let _ = std::fs::remove_file(&path);
                r
            }
        };
        match result {
            Some((ok, stderr)) => Some(ok && (!self.require_empty_stderr || stderr.is_empty())),
            None => {
                // Spawn or wait failed: no verdict was obtained.
                self.record_failure();
                None
            }
        }
    }

    fn failure_count(&self) -> usize {
        self.failures.load(Ordering::Relaxed)
    }
}

/// Serves the pooled worker protocol on this process's stdin/stdout,
/// answering each request with `f`.
///
/// This is the reusable wrapper that turns any `fn(&[u8]) -> bool` target
/// into a [`PooledProcessOracle`] worker: call it from a binary's `main`
/// and point the oracle at that binary. The loop reads length-prefixed
/// requests (see the module docs for the wire format), answers one verdict
/// byte per request, and returns `Ok(())` on a clean EOF — which is how the
/// pool shuts workers down.
///
/// Anything the target prints to stdout would corrupt the protocol, so
/// route target diagnostics to stderr.
///
/// # Errors
///
/// Returns the first I/O error encountered on the protocol streams (a
/// truncated request, a closed pipe mid-response). Binaries typically exit
/// nonzero on `Err`, which the pool observes as a worker crash.
pub fn serve_oracle_worker<F: FnMut(&[u8]) -> bool>(mut f: F) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    loop {
        let mut len_bytes = [0u8; 4];
        match input.read_exact(&mut len_bytes) {
            Ok(()) => {}
            // Clean shutdown: the oracle closed our stdin between requests.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        buf.clear();
        buf.resize(len, 0);
        input.read_exact(&mut buf)?;
        let verdict = f(&buf);
        output.write_all(&[u8::from(verdict)])?;
        output.flush()?;
    }
}

/// One long-lived protocol-speaking child process.
#[derive(Debug)]
struct PooledWorker {
    child: Child,
    /// `Some` for the worker's whole life; taken (closed) only on drop,
    /// which is the protocol's clean-shutdown signal.
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl PooledWorker {
    /// Poses one query over the worker's pipes. Any I/O deviation is an
    /// error — the caller treats it as a worker crash.
    fn query(&mut self, input: &[u8]) -> std::io::Result<bool> {
        let len = u32::try_from(input.len())
            .map_err(|_| std::io::Error::other("query exceeds the protocol's u32 length"))?;
        let stdin = self.stdin.as_mut().expect("stdin open until drop");
        stdin.write_all(&len.to_le_bytes())?;
        stdin.write_all(input)?;
        stdin.flush()?;
        let mut verdict = [0u8; 1];
        self.stdout.read_exact(&mut verdict)?;
        match verdict[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(std::io::Error::other(format!("bad verdict byte {b:#04x}"))),
        }
    }
}

impl Drop for PooledWorker {
    fn drop(&mut self) {
        // Closing stdin is the protocol's clean-exit signal: a conforming
        // worker sees EOF between requests and returns, running whatever
        // cleanup its target needs. Give it a short grace period before
        // the hard kill + wait that guarantees no zombie survives a crash
        // path (or a worker that ignores EOF).
        drop(self.stdin.take());
        for _ in 0..10 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(5)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Idle workers plus the count of live (idle or checked-out) workers.
#[derive(Debug, Default)]
struct PoolState {
    idle: Vec<PooledWorker>,
    live: usize,
}

#[derive(Debug)]
struct PoolInner {
    program: PathBuf,
    args: Vec<String>,
    size: usize,
    state: Mutex<PoolState>,
    available: Condvar,
    /// Queries for which no real verdict could be obtained (degraded
    /// `false` answers). Excludes queries rescued by the fallback oracle.
    failures: AtomicUsize,
    /// Workers replaced after a crash (diagnostic, not a failure count).
    respawns: AtomicUsize,
    fallback: Option<ProcessOracle>,
}

/// A membership oracle backed by a pool of persistent worker processes.
///
/// Where [`ProcessOracle`] pays `spawn + wait` per query, this oracle keeps
/// up to `pool_size` long-lived children of `program` and poses each query
/// over a pipe using the length-prefixed protocol documented at the module
/// level — the same amortization persistent test executors and AFL's
/// forkserver use. The target program must speak the protocol; wrap any
/// in-process predicate with [`serve_oracle_worker`] to get a conforming
/// worker binary.
///
/// Workers are spawned lazily (the first `pool_size` concurrent queries
/// each start one) and checked out exclusively per query, so the pool also
/// bounds process concurrency the way [`ProcessOracle::max_concurrent`]
/// does. A crashed worker is reaped and replaced, and the in-flight query
/// is retried once on the replacement; if the pooled path still cannot
/// produce a verdict, the query falls back to a spawn-per-query
/// [`ProcessOracle`] when one was configured with
/// [`PooledProcessOracle::fallback`], and otherwise answers `false` and
/// increments [`Oracle::failure_count`].
///
/// Clones share the pool, its workers, and its counters.
///
/// # Examples
///
/// ```no_run
/// use glade_core::{Oracle, PooledProcessOracle};
///
/// // `my-worker` loops over glade_core::serve_oracle_worker(my_predicate).
/// let oracle = PooledProcessOracle::new("my-worker").pool_size(8);
/// assert!(oracle.accepts(b"<a>hi</a>") || true);
/// ```
#[derive(Debug, Clone)]
pub struct PooledProcessOracle {
    inner: Arc<PoolInner>,
}

impl PooledProcessOracle {
    /// Creates a pool that runs `program` as its worker command, with a
    /// single worker. Use [`PooledProcessOracle::pool_size`] to widen.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        PooledProcessOracle {
            inner: Arc::new(PoolInner {
                program: program.into(),
                args: Vec::new(),
                size: 1,
                state: Mutex::new(PoolState::default()),
                available: Condvar::new(),
                failures: AtomicUsize::new(0),
                respawns: AtomicUsize::new(0),
                fallback: None,
            }),
        }
    }

    fn inner_mut(&mut self) -> &mut PoolInner {
        Arc::get_mut(&mut self.inner)
            .expect("PooledProcessOracle builders must run before the pool is cloned or used")
    }

    /// Appends a command-line argument passed to every worker process.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.inner_mut().args.push(arg.into());
        self
    }

    /// Sets the maximum number of concurrent worker processes (must be
    /// nonzero). Workers are spawned lazily up to this bound.
    pub fn pool_size(mut self, n: usize) -> Self {
        assert!(n > 0, "pool_size requires at least one worker");
        self.inner_mut().size = n;
        self
    }

    /// Installs a spawn-per-query fallback used when the pooled path cannot
    /// produce a verdict (worker respawn keeps failing — e.g. the binary
    /// disappeared or the system is out of pids). Queries answered by the
    /// fallback are real verdicts and are not counted as failures.
    pub fn fallback(mut self, oracle: ProcessOracle) -> Self {
        self.inner_mut().fallback = Some(oracle);
        self
    }

    /// Number of workers replaced after a crash, across the pool's
    /// lifetime.
    pub fn respawn_count(&self) -> usize {
        self.inner.respawns.load(Ordering::Relaxed)
    }

    /// A stable fingerprint of the worker command (program + arguments) for
    /// tagging persisted cache snapshots; see [`ProcessOracle::fingerprint`].
    /// The pool size is deliberately excluded — it affects throughput, not
    /// verdicts.
    pub fn fingerprint(&self) -> String {
        format!("pooled:{}:{}", self.inner.program.display(), self.inner.args.join("\u{1f}"))
    }

    fn spawn_worker(&self) -> std::io::Result<PooledWorker> {
        let mut child = Command::new(&self.inner.program)
            .args(&self.inner.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(PooledWorker { child, stdin: Some(stdin), stdout })
    }

    /// Checks a worker out of the pool, spawning one lazily if the pool is
    /// not at capacity, and blocking while all workers are busy. Returns
    /// `None` only when a needed spawn fails.
    fn checkout(&self) -> Option<PooledWorker> {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        loop {
            if let Some(w) = state.idle.pop() {
                return Some(w);
            }
            if state.live < self.inner.size {
                state.live += 1;
                drop(state);
                match self.spawn_worker() {
                    Ok(w) => return Some(w),
                    Err(_) => {
                        self.release_slot();
                        return None;
                    }
                }
            } else {
                state = self.inner.available.wait(state).expect("pool poisoned");
            }
        }
    }

    /// Returns a healthy worker to the idle set.
    fn checkin(&self, worker: PooledWorker) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        state.idle.push(worker);
        drop(state);
        self.inner.available.notify_one();
    }

    /// Gives up a live slot (worker died and was not replaced, or a spawn
    /// failed), waking a waiter so it can try spawning afresh.
    fn release_slot(&self) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        state.live -= 1;
        drop(state);
        self.inner.available.notify_one();
    }

    /// The pooled path produced no verdict: consult the fallback oracle or
    /// record a failure (`None` — the caller must not cache the answer).
    fn degraded(&self, input: &[u8]) -> Option<bool> {
        match &self.inner.fallback {
            Some(fallback) => fallback.accepts_checked(input),
            None => {
                self.inner.failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

impl Oracle for PooledProcessOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        // The protocol cannot frame inputs beyond the u32 length prefix;
        // detect that before any I/O rather than punishing (and reaping) a
        // healthy worker for an unpose-able query.
        if u32::try_from(input.len()).is_err() {
            return self.degraded(input);
        }
        let Some(mut worker) = self.checkout() else {
            // Could not spawn a worker at all.
            return self.degraded(input);
        };
        match worker.query(input) {
            Ok(v) => {
                self.checkin(worker);
                Some(v)
            }
            Err(_) => {
                // Worker crashed mid-query: reap it, respawn, retry once.
                drop(worker);
                self.inner.respawns.fetch_add(1, Ordering::Relaxed);
                match self.spawn_worker() {
                    Ok(mut fresh) => match fresh.query(input) {
                        Ok(v) => {
                            self.checkin(fresh);
                            Some(v)
                        }
                        Err(_) => {
                            drop(fresh);
                            self.release_slot();
                            self.degraded(input)
                        }
                    },
                    Err(_) => {
                        self.release_slot();
                        self.degraded(input)
                    }
                }
            }
        }
    }

    fn failure_count(&self) -> usize {
        self.inner.failures.load(Ordering::Relaxed)
            + self.inner.fallback.as_ref().map_or(0, Oracle::failure_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_oracle_delegates() {
        let o = FnOracle::new(|i: &[u8]| i.starts_with(b"ok"));
        assert!(o.accepts(b"okay"));
        assert!(!o.accepts(b"nope"));
        assert_eq!(o.failure_count(), 0, "in-process oracles never fail");
    }

    #[test]
    fn caching_oracle_counts_and_memoizes() {
        let calls = AtomicUsize::new(0);
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            i.is_empty()
        }));
        assert!(o.accepts(b""));
        assert!(o.accepts(b""));
        assert!(!o.accepts(b"x"));
        assert_eq!(o.total_queries(), 3);
        assert_eq!(o.unique_queries(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caching_oracle_is_consistent_under_concurrency() {
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| i.len().is_multiple_of(2)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let o = &o;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let input = i.to_le_bytes();
                        assert_eq!(o.accepts(&input), input.len() % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(o.unique_queries(), 200);
        assert_eq!(o.total_queries(), 800);
    }

    #[test]
    fn oracle_by_reference_works() {
        fn takes_oracle(o: &dyn Oracle) -> bool {
            o.accepts(b"y")
        }
        let o = FnOracle::new(|i: &[u8]| i == b"y");
        assert!(takes_oracle(&o));
        // The blanket &O impl also composes.
        let r = &o;
        assert!(r.accepts(b"y"));
    }

    #[test]
    fn oracle_impls_are_send_sync() {
        fn assert_oracle<T: Oracle + Send + Sync>() {}
        assert_oracle::<FnOracle<fn(&[u8]) -> bool>>();
        assert_oracle::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
        assert_oracle::<ProcessOracle>();
        assert_oracle::<PooledProcessOracle>();
        assert_oracle::<Box<dyn Oracle>>();
        assert_oracle::<Arc<dyn Oracle>>();
        assert_oracle::<&dyn Oracle>();
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_stdin_true_false() {
        // `grep -q x` exits 0 iff stdin contains an "x".
        let o = ProcessOracle::new("grep").arg("-q").arg("x");
        assert!(o.accepts(b"axb"));
        assert!(!o.accepts(b"abc"));
        assert_eq!(o.failure_count(), 0, "nonzero exit is a verdict, not a failure");
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_mode() {
        // `grep -q pat FILE` with the file substituted for {}.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile);
        assert!(o.accepts(b"hay needle stack"));
        assert!(!o.accepts(b"just hay"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_concurrent_queries_do_not_collide() {
        // Identical-length inputs hammered from many threads: under the old
        // pointer-based temp naming these raced on the same file.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile)
            .max_concurrent(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let o = &o;
                s.spawn(move || {
                    for _ in 0..5 {
                        if t % 2 == 0 {
                            assert!(o.accepts(b"needle--"), "thread {t}");
                        } else {
                            assert!(!o.accepts(b"haystack"), "thread {t}");
                        }
                    }
                });
            }
        });
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_missing_program_rejects_and_counts_failure() {
        let o = ProcessOracle::new("/nonexistent/program/glade");
        assert!(!o.accepts(b"anything"));
        assert_eq!(o.failure_count(), 1);
        // Clones share the counter.
        let clone = o.clone();
        assert!(!clone.accepts(b"again"));
        assert_eq!(o.failure_count(), 2);
    }

    #[test]
    fn pooled_oracle_missing_program_degrades_and_counts() {
        let o = PooledProcessOracle::new("/nonexistent/program/glade-worker");
        assert!(!o.accepts(b"anything"));
        assert!(!o.accepts(b"more"));
        assert_eq!(o.failure_count(), 2, "no verdict could be obtained");
        assert_eq!(o.respawn_count(), 0, "nothing ever lived to crash");
    }

    #[cfg(unix)]
    #[test]
    fn pooled_oracle_missing_program_uses_fallback() {
        // Pooled spawn always fails; the spawn-per-query fallback (grep on
        // stdin) still produces real verdicts and no failure is recorded.
        let o = PooledProcessOracle::new("/nonexistent/program/glade-worker")
            .fallback(ProcessOracle::new("grep").arg("-q").arg("x"));
        assert!(o.accepts(b"axb"));
        assert!(!o.accepts(b"abc"));
        assert_eq!(o.failure_count(), 0, "fallback verdicts are real");
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_configuration() {
        let a = ProcessOracle::new("prog").arg("-x").arg("{}").input_mode(InputMode::TempFile);
        let b = ProcessOracle::new("prog").arg("-x").arg("{}").input_mode(InputMode::TempFile);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), ProcessOracle::new("prog").arg("-y").fingerprint());
        assert_ne!(a.fingerprint(), ProcessOracle::new("other").fingerprint());
        let p = PooledProcessOracle::new("prog").arg("-x");
        assert_eq!(p.fingerprint(), PooledProcessOracle::new("prog").arg("-x").fingerprint());
        assert_ne!(p.fingerprint(), a.fingerprint(), "pooled and spawn modes are distinct");
        // Pool size affects throughput only, never verdicts.
        assert_eq!(
            p.fingerprint(),
            PooledProcessOracle::new("prog").arg("-x").pool_size(7).fingerprint()
        );
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Semaphore::new(2);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (sem, active, peak) = (&sem, &active, &peak);
                s.spawn(move || {
                    let _g = sem.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }
}
