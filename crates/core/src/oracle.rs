//! Membership oracles: blackbox access to the program under learning.
//!
//! GLADE's only interface to the target program is the oracle
//! `O(α) = 1[α ∈ L*]` (Section 2): run the program on an input and observe
//! whether it is accepted. This module defines the [`Oracle`] trait plus the
//! adapters used throughout the reproduction:
//!
//! * [`FnOracle`] — wrap any predicate closure (used for handwritten
//!   grammars and the instrumented target parsers).
//! * [`CachingOracle`] — memoize queries and count them (synthesis statistics
//!   report query counts through this wrapper).
//! * [`ProcessOracle`] — spawn an external executable per query, concluding
//!   validity from its exit status, exactly like the paper's setup where "we
//!   run the program on input α … and conclude that α is a valid input if
//!   the program does not print an error message".
//! * [`PooledProcessOracle`] — keep a pool of long-lived worker processes
//!   and pose each query over a pipe instead of paying a process spawn per
//!   query (the forkserver trick; see the protocol below).
//!
//! # The query-reduction layer in front of the runner
//!
//! Everything in this module makes a query *cheaper*; the synthesis
//! engine also works to pose *fewer* of them. A query-reduction layer
//! sits between the planners and the query runner: character
//! generalization and phase-2 merging plan their membership checks in
//! waves, byte-identical check strings from distinct plan sites collapse
//! to one probe whose verdict fans back out to every owner, and a
//! byte-class memo table keyed by `(terminal bytes, context fingerprint,
//! candidate set)` replays already-learned character classes without
//! re-probing (persisted alongside the query cache, see
//! [`Session`](crate::Session)). Only provably-redundant checks are
//! elided — the synthesized grammar is byte-identical with the layer on
//! or off — and the savings are surfaced as
//! [`SynthesisStats::probes_elided`](crate::SynthesisStats) and
//! `memo_hits` before a single byte reaches any oracle here. Disable it
//! with [`GladeBuilder::memoize_byte_classes`](crate::GladeBuilder::memoize_byte_classes)
//! (CLI: `--no-memo`) to measure or debug the unreduced query stream.
//!
//! # The pooled worker protocol
//!
//! Spawning a process per membership query costs milliseconds; the paper's
//! cost model ("each query to O takes constant time") assumes queries are
//! cheap. [`PooledProcessOracle`] amortizes the spawn by keeping N
//! long-lived workers speaking a length-prefixed verdict protocol over
//! stdin/stdout. Two wire versions exist; which one a worker speaks is
//! settled once, immediately after it spawns (see *Version negotiation*).
//!
//! **v1 — single-query frames** (the original protocol):
//!
//! ```text
//! request  (oracle → worker):  u32 little-endian byte length, then the
//!                              input bytes (arbitrary binary, may be empty)
//! response (worker → oracle):  one byte, 0x01 = accept, 0x00 = reject
//! ```
//!
//! v1 requests are posed strictly one at a time per worker: the oracle
//! waits for the verdict byte before framing the next query.
//!
//! **v2 — batched frames**: one request frame carries N queries, one
//! response carries N verdict bytes, so a batch pays two pipe round-trips
//! instead of 2·N:
//!
//! ```text
//! request  (oracle → worker):  u32 LE query count N (1 ≤ N ≤ 2^16), then
//!                              N × { u32 LE byte length, input bytes }
//!                              with ≤ 2^30 total payload bytes
//! response (worker → oracle):  N bytes, one verdict (0x00/0x01) per query
//!                              in frame order
//! ```
//!
//! The frame codec lives in [`wire`](crate::wire) (encode/decode are pure
//! functions, property-tested in isolation). A frame whose count or length
//! prefixes exceed the caps is malformed; conforming workers treat it as a
//! protocol error and exit nonzero, and the oracle treats the resulting
//! crash like any other (see *Failure semantics*). The oracle may keep
//! several v2 frames in flight per worker (a bounded window); responses
//! arrive strictly in request order.
//!
//! **Version negotiation.** The oracle opens every freshly spawned worker
//! with a v1 frame whose payload is the fixed probe
//! [`wire::WIRE_V2_PROBE`](crate::wire::WIRE_V2_PROBE):
//!
//! * a **v2-capable** worker recognizes the payload and answers the single
//!   byte [`wire::WIRE_V2_ACK`](crate::wire::WIRE_V2_ACK) (`0x02`); the
//!   connection speaks v2 batch frames from then on;
//! * a **v1** worker cannot tell the probe from a real query and answers
//!   an ordinary verdict byte (`0x00`/`0x01`), which the oracle discards;
//!   the connection stays on v1 single-query frames.
//!
//! Any other response byte is a protocol error. Because the oracle only
//! ever probes immediately after a worker spawns, workers treat the probe
//! payload as special on the **first frame of a connection only**; a
//! mid-stream membership query that happens to equal it is answered like
//! any other input. The probe does reach a v1 worker's target once per
//! worker spawn (its verdict is discarded, never cached); targets for
//! which even that is unacceptable can pin
//! [`PooledProcessOracle::max_wire_version`]`(1)`, which skips the probe
//! and reproduces the v1-only oracle framing byte for byte.
//!
//! **Batched dispatch.** On Unix hosts the pool implements
//! [`Oracle::accepts_batch_checked`] with an event-driven dispatcher: the
//! calling thread puts every checked-out worker's pipes into nonblocking
//! mode and multiplexes them with `poll(2)` readiness, keeping each worker
//! saturated with a bounded in-flight window (whole batch frames for v2
//! workers, strict request–response for v1 workers) — no helper threads,
//! no async runtime, no engine thread parked per in-flight query. The
//! engine routes whole miss sets here (see
//! [`Oracle::native_batching`]); single queries still use the blocking
//! per-query path.
//!
//! **Failure semantics.** A clean EOF on the worker's stdin (between
//! frames) tells it to exit. Any other deviation — the worker dying, a
//! short read, a malformed frame, a verdict byte other than the legal
//! responses — is treated as a worker crash: the worker is reaped, a
//! replacement is spawned, and the affected queries are retried on fresh
//! workers (in-flight batch queries are requeued once; a query whose
//! retry also crashes is replayed through the blocking per-query path,
//! which performs one final fresh-worker retry of its own). Only when all
//! of that fails does the oracle give up on the pooled path — falling
//! back to a spawn-per-query [`ProcessOracle`] when one is configured,
//! and otherwise counting an oracle failure and answering `false`. A
//! worker that answers a malformed or oversized frame with garbage can
//! therefore never produce a silent wrong verdict: illegal bytes are
//! crashes, and degraded queries are always visible in
//! [`Oracle::failure_count`].
//!
//! **Deadlines.** Every oracle interaction can be time-bounded: install a
//! per-query deadline with [`PooledProcessOracle::query_timeout`], or let
//! the engine flow one in through
//! [`GladeBuilder::oracle_timeout`](crate::GladeBuilder::oracle_timeout)
//! and [`Oracle::configure_timeout`]. The batched dispatcher then polls
//! with a finite timeout and tracks one deadline per worker, re-armed by
//! every verdict byte — a slow-but-steady worker (or a slow-loris writer
//! dribbling one verdict byte at a time) never trips it, while a worker
//! that stops answering for a whole window is *hung*: it is killed,
//! reaped, counted in [`Oracle::timed_out_count`], and its in-flight
//! queries take the ordinary crash path (requeue once, then the blocking
//! replay). The blocking per-query path enforces the same deadline with
//! nonblocking pipe I/O, and [`ProcessOracle::timeout`] bounds
//! spawn-per-query children with a kill-on-expiry wait. A timed-out query
//! is never a silent `false`: it either recovers on a fresh
//! worker/fallback or surfaces as a counted failure.
//!
//! **Respawn backoff and the per-slot circuit breaker.** Each worker slot
//! tracks consecutive *strikes*: spawn failures, and crashes of a worker
//! that never produced a verdict (a worker that answered something resets
//! its slot to one strike when it crashes, and a clean checkin resets the
//! slot to zero). The slot's state machine:
//!
//! ```text
//!           spawn-or-crash failure           strikes reach K
//! CLOSED ─────────────────────────▶ BACKOFF ─────────────────▶ OPEN
//!   ▲     (strike 2+ waits base·2^(s−2)      (tripped: spawns    │
//!   │      plus deterministic jitter)         blocked)           │ cool-down
//!   │                                                            ▼
//!   └──────────── probe spawn succeeds ◀───────────────── HALF-OPEN
//!                 (recovery counted)        (one probe spawn allowed;
//!                                            failure re-opens with a
//!                                            doubled cool-down)
//! ```
//!
//! The first respawn after a crash is immediate, so ordinary crash
//! recovery stays fast; only *consecutive* failures back off, which keeps
//! an instant-crash loop or a vanished binary from tight-looping
//! `fork/exec`. After `K` consecutive strikes
//! ([`PooledProcessOracle::max_respawns`]) the slot trips open: queries
//! route to the remaining workers — or degrade through the
//! fallback/failure path when every slot is open — until the cool-down
//! elapses and a single half-open probe spawn is allowed. Trips and
//! recoveries are counted ([`Oracle::tripped_worker_count`],
//! [`Oracle::recovered_worker_count`]) and surfaced per run as
//! [`SynthEvent::WorkerHung`](crate::SynthEvent::WorkerHung),
//! [`SynthEvent::BreakerTripped`](crate::SynthEvent::BreakerTripped), and
//! [`SynthEvent::BreakerRecovered`](crate::SynthEvent::BreakerRecovered)
//! events plus the
//! [`SynthesisStats::timed_out_queries`](crate::SynthesisStats::timed_out_queries)
//! and
//! [`SynthesisStats::tripped_workers`](crate::SynthesisStats::tripped_workers)
//! statistics. Backoff jitter is deterministic (hashed from the slot index
//! and strike count, never entropy), and none of these knobs affects
//! verdicts: with no timeout configured and healthy workers, grammar bytes
//! and query counts are byte-identical to a pool without the machinery.
//!
//! Any `fn(&[u8]) -> bool` target becomes a protocol-speaking worker with
//! [`serve_oracle_worker`] — call it from a binary's `main` (the
//! `glade-oracle-worker` binary in `glade-targets` does exactly this for
//! the built-in evaluation targets). `serve_oracle_worker` answers the
//! negotiation probe, so its workers speak v2 automatically;
//! [`serve_oracle_worker_v1`] pins the legacy single-query protocol for
//! compatibility testing.
//!
//! # Oracle execution failures
//!
//! A blackbox oracle can fail to *execute* (binary missing, fork limit,
//! pipe torn down mid-query) — which is different from the program
//! rejecting the input. Failed executions answer `false` (fail closed, the
//! same degradation contract as the query budget), are **never cached**
//! (the engine queries through [`Oracle::accepts_checked`], whose `None`
//! keeps degraded answers out of the session cache and out of persisted
//! snapshots), and are **counted**:
//! [`Oracle::failure_count`] exposes the running total, the engine surfaces
//! the per-run delta as
//! [`SynthesisStats::oracle_failures`](crate::SynthesisStats::oracle_failures)
//! and emits
//! [`SynthEvent::OracleFailures`](crate::SynthEvent::OracleFailures), so a
//! degraded run is diagnosable instead of silently under-generalizing.
//!
//! # Thread safety
//!
//! `Oracle` requires `Send + Sync`: the query engine fans batched checks out
//! across a scoped worker pool, so one oracle value is shared by several
//! threads and queried concurrently. See the crate-level documentation for
//! the full contract (determinism + thread safety).

use crate::cache::ShardedCache;
use crate::wire;
#[cfg(any(target_os = "linux", target_os = "macos"))]
use std::collections::VecDeque;
use std::io::{BufReader, Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default queries per v2 batch frame (see
/// [`PooledProcessOracle::frame_batch`]).
const DEFAULT_FRAME_BATCH: usize = 32;

/// Default strike count that trips a worker slot's circuit breaker (see
/// [`PooledProcessOracle::max_respawns`]).
const DEFAULT_MAX_RESPAWNS: u32 = 4;

/// Default base delay of the exponential respawn backoff (see
/// [`PooledProcessOracle::respawn_backoff`]).
const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(10);

/// Raw `poll(2)`/`fcntl(2)` bindings for the batched dispatcher and the
/// serve accept loop. The workspace builds offline (no `libc` crate), so
/// the handful of constants and prototypes they need are declared here;
/// the symbols come from the C library every Unix Rust binary already
/// links.
#[cfg(any(target_os = "linux", target_os = "macos"))]
pub(crate) mod sys {
    use std::os::raw::{c_int, c_short};
    use std::os::unix::io::RawFd;
    use std::time::{Duration, Instant};

    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    // POLLERR (0x008) and POLLHUP (0x010) are reported whether or not
    // they are requested; the dispatcher needs no constants for them — a
    // ready-looking fd whose read/write then fails takes the crash path.
    pub const POLLNVAL: c_short = 0x020;

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(target_os = "macos")]
    const O_NONBLOCK: c_int = 0x0004;

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(target_os = "macos")]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    }

    /// Blocks until at least one registered fd is ready, or `timeout`
    /// expires (`Ok(0)`). `None` waits forever. EINTR is retried with the
    /// *remaining* time recomputed from a deadline captured up front, so a
    /// signal landing mid-dispatch can neither fail the whole batch nor
    /// silently extend the deadline.
    pub fn poll_ready(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let ms: c_int = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(0);
                    }
                    // Round up: a sub-millisecond remainder must still
                    // wait one tick, not busy-spin on a zero timeout.
                    c_int::try_from(left.as_millis().saturating_add(1)).unwrap_or(c_int::MAX)
                }
            };
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd records for the duration of the call.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, ms) };
            if rc > 0 {
                return Ok(rc as usize);
            }
            if rc == 0 {
                // Kernel timeout fired; loop so the rounded-up tick cannot
                // report expiry ahead of the real deadline.
                continue;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Switches `O_NONBLOCK` on or off for `fd`.
    pub fn set_nonblocking(fd: RawFd, on: bool) -> std::io::Result<()> {
        // SAFETY: fcntl with F_GETFL/F_SETFL on an owned, open fd.
        unsafe {
            let flags = fcntl(fd, F_GETFL);
            if flags < 0 {
                return Err(std::io::Error::last_os_error());
            }
            let wanted = if on { flags | O_NONBLOCK } else { flags & !O_NONBLOCK };
            if wanted != flags && fcntl(fd, F_SETFL, wanted) < 0 {
                return Err(std::io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

/// Shared exponential-backoff schedule with deterministic jitter: `None`
/// for `strikes < 2` (the first retry is immediate), then
/// `base · 2^(strikes−2)` (shift capped at 6) plus a per-(salt, strike)
/// jitter ≤ `base/4`, so independent retriers sharing a schedule do not
/// fire in lockstep yet stay reproducible. Used by the pooled oracle's
/// respawn path and by the serve client's connect retry.
pub(crate) fn retry_backoff_delay(base: Duration, salt: u64, strikes: u32) -> Option<Duration> {
    if strikes < 2 {
        return None;
    }
    let exp = (strikes - 2).min(6);
    let mut h = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ u64::from(strikes).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 31;
    let jitter = Duration::from_nanos((base.as_nanos() as u64 / 1024).saturating_mul(h % 256));
    Some(base.saturating_mul(1 << exp).saturating_add(jitter))
}

/// Blackbox membership access to a target language.
///
/// # Contract
///
/// Implementations must be **deterministic**: repeated queries for the same
/// input must agree, across threads and across time. GLADE's monotonicity
/// argument assumes this, and so does the parallel query engine — duplicate
/// in-flight queries may each reach the oracle, and whichever verdict lands
/// in the cache first is kept.
///
/// Implementations must be **thread-safe** (`Send + Sync`): membership
/// checks are batched and dispatched concurrently from a scoped worker
/// pool, all sharing `&self`.
pub trait Oracle: Send + Sync {
    /// Returns whether `input` is a valid program input (`input ∈ L*`).
    fn accepts(&self, input: &[u8]) -> bool;

    /// Like [`Oracle::accepts`], but distinguishes an oracle *execution
    /// failure* (`None` — the verdict could not be obtained at all) from a
    /// real reject (`Some(false)`). The query engine uses this form so
    /// degraded answers are never mistaken for verdicts: a `None` answers
    /// `false` for the in-flight check but is **not cached** and never
    /// reaches a persisted snapshot.
    ///
    /// The default wraps `accepts` (in-process oracles cannot fail to
    /// execute); implementations whose `failure_count` can grow should
    /// override it and return `None` exactly when they record a failure.
    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        Some(self.accepts(input))
    }

    /// Batched form of [`Oracle::accepts_checked`]: one verdict (or
    /// execution failure) per input, in input order.
    ///
    /// The default implementation simply loops over `accepts_checked`, so
    /// ordinary oracles need not override it. Oracles that can answer a
    /// whole batch more efficiently than query-at-a-time — the pooled
    /// process oracle multiplexes all its worker pipes from the calling
    /// thread — override this *and* [`Oracle::native_batching`], which is
    /// how the query engine decides to hand them whole miss sets instead
    /// of fanning single queries out across engine threads.
    ///
    /// Implementations must uphold the determinism contract per input and
    /// must return exactly `inputs.len()` answers.
    fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
        inputs.iter().map(|i| self.accepts_checked(i)).collect()
    }

    /// Whether [`Oracle::accepts_batch_checked`] has a native batched
    /// implementation that the query engine should route whole miss sets
    /// to (from one calling thread), instead of dispatching queries
    /// one-at-a-time across its own worker threads.
    ///
    /// Defaults to `false`. Wrappers forward the inner oracle's answer.
    fn native_batching(&self) -> bool {
        false
    }

    /// Number of queries (so far, across the oracle's lifetime) that failed
    /// to *execute* — the verdict could not be obtained and `accepts`
    /// answered a degraded `false`. In-process oracles never fail; process
    /// oracles count spawn and I/O errors here so runs against a broken
    /// target are diagnosable (see
    /// [`SynthesisStats::oracle_failures`](crate::SynthesisStats::oracle_failures)).
    fn failure_count(&self) -> usize {
        0
    }

    /// Installs (`Some`) or clears (`None`) a per-query deadline on oracles
    /// that support one. The engine calls this when
    /// [`GladeBuilder::oracle_timeout`](crate::GladeBuilder::oracle_timeout)
    /// is configured; [`ProcessOracle`] and [`PooledProcessOracle`] honor
    /// it (see the module docs), in-process oracles ignore it (the default
    /// is a no-op — a predicate cannot hang the engine the way a wedged
    /// child process can). Wrappers forward to the inner oracle.
    fn configure_timeout(&self, _timeout: Option<Duration>) {}

    /// Number of queries (across the oracle's lifetime) whose deadline
    /// expired — a hung worker or child was killed before answering. Every
    /// timed-out query is also retried/degraded through the ordinary
    /// failure machinery; this counter exists so hangs are distinguishable
    /// from crashes in run statistics
    /// ([`SynthesisStats::timed_out_queries`](crate::SynthesisStats::timed_out_queries)).
    fn timed_out_count(&self) -> usize {
        0
    }

    /// Number of times (across the oracle's lifetime) a worker slot's
    /// circuit breaker tripped open after consecutive spawn-or-crash
    /// failures (see the module docs of `oracle` for the state machine).
    fn tripped_worker_count(&self) -> usize {
        0
    }

    /// Number of times a tripped worker slot recovered: its half-open
    /// probe spawn succeeded and the slot closed again.
    fn recovered_worker_count(&self) -> usize {
        0
    }
}

macro_rules! forward_oracle_impl {
    ($ty:ty) => {
        impl<O: Oracle + ?Sized> Oracle for $ty {
            fn accepts(&self, input: &[u8]) -> bool {
                (**self).accepts(input)
            }

            fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
                (**self).accepts_checked(input)
            }

            fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
                (**self).accepts_batch_checked(inputs)
            }

            fn native_batching(&self) -> bool {
                (**self).native_batching()
            }

            fn failure_count(&self) -> usize {
                (**self).failure_count()
            }

            fn configure_timeout(&self, timeout: Option<Duration>) {
                (**self).configure_timeout(timeout)
            }

            fn timed_out_count(&self) -> usize {
                (**self).timed_out_count()
            }

            fn tripped_worker_count(&self) -> usize {
                (**self).tripped_worker_count()
            }

            fn recovered_worker_count(&self) -> usize {
                (**self).recovered_worker_count()
            }
        }
    };
}

forward_oracle_impl!(&O);
forward_oracle_impl!(Box<O>);
forward_oracle_impl!(Arc<O>);

/// An oracle backed by a predicate function.
///
/// The predicate must be `Sync` (shared by query worker threads); any pure
/// function qualifies. Use atomics rather than `Cell`/`RefCell` for
/// instrumentation state inside test predicates.
///
/// # Examples
///
/// ```
/// use glade_core::{FnOracle, Oracle};
///
/// let oracle = FnOracle::new(|input: &[u8]| input.iter().all(u8::is_ascii_lowercase));
/// assert!(oracle.accepts(b"abc"));
/// assert!(!oracle.accepts(b"aBc"));
/// ```
#[derive(Debug, Clone)]
pub struct FnOracle<F> {
    f: F,
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> FnOracle<F> {
    /// Wraps predicate `f`.
    pub fn new(f: F) -> Self {
        FnOracle { f }
    }
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> Oracle for FnOracle<F> {
    fn accepts(&self, input: &[u8]) -> bool {
        (self.f)(input)
    }
}

/// Memoizing, counting wrapper around another oracle.
///
/// GLADE issues many duplicate membership queries (identical checks arise
/// from different candidates); caching them is the paper's implicit
/// assumption that "each query to O takes constant time" (Section 4.4).
/// The cache is mutex-striped and the counters are atomic, so a single
/// `CachingOracle` serves all query worker threads concurrently.
///
/// # Examples
///
/// ```
/// use glade_core::{CachingOracle, FnOracle, Oracle};
///
/// let inner = FnOracle::new(|i: &[u8]| i.len() % 2 == 0);
/// let oracle = CachingOracle::new(inner);
/// assert!(oracle.accepts(b"ab"));
/// assert!(oracle.accepts(b"ab"));
/// assert_eq!(oracle.unique_queries(), 1);
/// assert_eq!(oracle.total_queries(), 2);
/// ```
#[derive(Debug)]
pub struct CachingOracle<O> {
    inner: O,
    cache: ShardedCache,
    total: AtomicUsize,
}

impl<O: Oracle> CachingOracle<O> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: O) -> Self {
        CachingOracle { inner, cache: ShardedCache::new(), total: AtomicUsize::new(0) }
    }

    /// Number of queries answered (including cache hits).
    pub fn total_queries(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of distinct inputs forwarded to the inner oracle.
    ///
    /// Under concurrency, racing misses for the same input may each reach
    /// the inner oracle; the count reflects distinct *cached* inputs, which
    /// is the paper's cost measure.
    pub fn unique_queries(&self) -> usize {
        self.cache.len()
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CachingOracle<O> {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.cache.get(input) {
            return Some(v);
        }
        // Failed executions answer `None` and are deliberately not cached:
        // only real verdicts may be memoized.
        let v = self.inner.accepts_checked(input)?;
        self.cache.insert(input.to_vec(), v);
        Some(v)
    }

    fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
        // Answer what the cache can, forward the misses to the inner
        // oracle as one batch (preserving its native batching, if any),
        // and memoize only real verdicts.
        self.total.fetch_add(inputs.len(), Ordering::Relaxed);
        let mut results: Vec<Option<bool>> = Vec::with_capacity(inputs.len());
        let mut miss_positions = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            let hit = self.cache.get(input);
            if hit.is_none() {
                miss_positions.push(i);
            }
            results.push(hit);
        }
        if miss_positions.is_empty() {
            return results;
        }
        let misses: Vec<&[u8]> = miss_positions.iter().map(|&i| inputs[i]).collect();
        let verdicts = self.inner.accepts_batch_checked(&misses);
        debug_assert_eq!(verdicts.len(), misses.len());
        for (&i, verdict) in miss_positions.iter().zip(verdicts) {
            if let Some(v) = verdict {
                self.cache.insert(inputs[i].to_vec(), v);
            }
            results[i] = verdict;
        }
        results
    }

    fn native_batching(&self) -> bool {
        self.inner.native_batching()
    }

    fn failure_count(&self) -> usize {
        self.inner.failure_count()
    }

    fn configure_timeout(&self, timeout: Option<Duration>) {
        self.inner.configure_timeout(timeout)
    }

    fn timed_out_count(&self) -> usize {
        self.inner.timed_out_count()
    }

    fn tripped_worker_count(&self) -> usize {
        self.inner.tripped_worker_count()
    }

    fn recovered_worker_count(&self) -> usize {
        self.inner.recovered_worker_count()
    }
}

/// How a [`ProcessOracle`] delivers the candidate input to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Write the input to the child's stdin.
    Stdin,
    /// Write the input to a temporary file and substitute its path for the
    /// `{}` placeholder in the argument list.
    TempFile,
}

/// Counting semaphore bounding concurrent child processes.
#[derive(Debug)]
struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore { permits: Mutex::new(permits), available: Condvar::new() }
    }

    fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.available.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }
}

struct SemaphoreGuard<'s> {
    sem: &'s Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        let mut permits = self.sem.permits.lock().expect("semaphore poisoned");
        *permits += 1;
        self.sem.available.notify_one();
    }
}

/// Process-wide counter distinguishing concurrent temp files. The previous
/// scheme (`input.as_ptr() ^ input.len()`) collided for identical-length
/// inputs whose buffers reused an address — guaranteed corruption once
/// queries run in parallel.
static TEMP_FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Spawns an external program per membership query.
///
/// The input is judged valid when the process exits with status zero —
/// mirroring the paper's blackbox setup. Use [`ProcessOracle::require_empty_stderr`]
/// for programs that signal parse errors on stderr but still exit 0.
///
/// Execution failures (the program cannot be spawned, the temp file cannot
/// be written, waiting on the child fails) answer `false` and increment
/// [`Oracle::failure_count`]; a nonzero exit status is a *verdict*, not a
/// failure. For hot loops against a real target, prefer
/// [`PooledProcessOracle`], which pays the spawn once per worker instead of
/// once per query.
///
/// # Concurrency
///
/// `ProcessOracle` is `Sync` and may be queried from many worker threads at
/// once. Because validity is read from the *exit status*, each query
/// inherently needs its own child process; a persistent in-process worker
/// would change the oracle's semantics (that is what the explicit worker
/// protocol of [`PooledProcessOracle`] is for). What the paper's cost model
/// needs from *this* oracle is admission control, not process reuse:
/// [`ProcessOracle::max_concurrent`] installs a counting semaphore so a
/// large batch fan-out cannot fork-bomb the machine. Clones share the same
/// limiter and the same failure counter.
///
/// # Examples
///
/// ```no_run
/// use glade_core::{InputMode, Oracle, ProcessOracle};
///
/// // Validate XML by exit status of `xmllint --noout <file>`.
/// let oracle = ProcessOracle::new("xmllint")
///     .arg("--noout")
///     .arg("{}")
///     .input_mode(InputMode::TempFile)
///     .max_concurrent(8);
/// let _ = oracle.accepts(b"<a>hi</a>");
/// ```
#[derive(Debug, Clone)]
pub struct ProcessOracle {
    program: PathBuf,
    args: Vec<String>,
    input_mode: InputMode,
    require_empty_stderr: bool,
    limiter: Option<Arc<Semaphore>>,
    /// Shared by clones so a fanned-out run reports one total.
    failures: Arc<AtomicUsize>,
    /// Per-query deadline in nanoseconds (`0` = wait forever). Shared by
    /// clones so [`Oracle::configure_timeout`] reaches every handle.
    timeout_nanos: Arc<AtomicU64>,
    /// Children killed on deadline expiry (shared by clones).
    timeouts: Arc<AtomicUsize>,
}

impl ProcessOracle {
    /// Creates an oracle that runs `program`, feeding inputs on stdin.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ProcessOracle {
            program: program.into(),
            args: Vec::new(),
            input_mode: InputMode::Stdin,
            require_empty_stderr: false,
            limiter: None,
            failures: Arc::new(AtomicUsize::new(0)),
            timeout_nanos: Arc::new(AtomicU64::new(0)),
            timeouts: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Appends a command-line argument. The placeholder `{}` is replaced by
    /// the temporary input file path when [`InputMode::TempFile`] is used.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Selects how the input reaches the program.
    pub fn input_mode(mut self, mode: InputMode) -> Self {
        self.input_mode = mode;
        self
    }

    /// Additionally requires stderr to be empty for an input to count as
    /// valid (the paper's "does not print an error message" criterion).
    pub fn require_empty_stderr(mut self, yes: bool) -> Self {
        self.require_empty_stderr = yes;
        self
    }

    /// Bounds the number of child processes in flight at once (shared by
    /// clones of this oracle). `n` must be nonzero.
    pub fn max_concurrent(mut self, n: usize) -> Self {
        assert!(n > 0, "max_concurrent requires at least one permit");
        self.limiter = Some(Arc::new(Semaphore::new(n)));
        self
    }

    /// Sets a per-query deadline: a child still running after `limit` is
    /// killed, reaped, and counted as a timeout
    /// ([`Oracle::timed_out_count`]) plus an execution failure (no verdict
    /// was obtained — never a silent `false`). Unix only; on other hosts
    /// the deadline is recorded but the wait stays unbounded. Shared by
    /// clones; equivalent to [`Oracle::configure_timeout`].
    pub fn timeout(self, limit: Duration) -> Self {
        self.configure_timeout(Some(limit));
        self
    }

    /// A stable fingerprint of the oracle's identity — the program path,
    /// arguments, input mode, and stderr policy — for tagging persisted
    /// query-cache snapshots (see
    /// [`GladeBuilder::oracle_fingerprint`](crate::GladeBuilder::oracle_fingerprint)
    /// and the `glade-cache v2` format in `persist.rs`). Verdicts are facts
    /// about one target: replaying a snapshot against a different program
    /// silently corrupts synthesis, and the fingerprint lets `load_cache`
    /// reject that.
    pub fn fingerprint(&self) -> String {
        let mode = match self.input_mode {
            InputMode::Stdin => "stdin",
            InputMode::TempFile => "tempfile",
        };
        format!(
            "process:{}:{}:{}:{}",
            self.program.display(),
            self.args.join("\u{1f}"),
            mode,
            if self.require_empty_stderr { "empty-stderr" } else { "any-stderr" },
        )
    }

    fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    fn timeout_duration(&self) -> Option<Duration> {
        let nanos = self.timeout_nanos.load(Ordering::Relaxed);
        (nanos > 0).then(|| Duration::from_nanos(nanos))
    }

    /// Timed replacement for `Child::wait_with_output`: polls `try_wait`
    /// while draining stderr nonblockingly (a chatty child must not
    /// deadlock against a full pipe while we only watch its exit), and
    /// kills the child when `limit` expires — counting the timeout and
    /// returning `None` so the caller records an execution failure rather
    /// than inventing a verdict.
    #[cfg(any(target_os = "linux", target_os = "macos"))]
    fn wait_with_deadline(&self, mut child: Child, limit: Duration) -> Option<(bool, Vec<u8>)> {
        use std::os::unix::io::AsRawFd as _;

        fn drain(err: &mut Option<std::process::ChildStderr>, buf: &mut Vec<u8>) {
            let mut chunk = [0u8; 4096];
            if let Some(e) = err {
                loop {
                    match e.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(ioe) if ioe.kind() == std::io::ErrorKind::Interrupted => continue,
                        // WouldBlock (nothing buffered yet) or a torn pipe.
                        Err(_) => break,
                    }
                }
            }
        }

        let deadline = Instant::now() + limit;
        let mut stderr = child.stderr.take();
        if let Some(err) = &stderr {
            if sys::set_nonblocking(err.as_raw_fd(), true).is_err() {
                // Unreadable stderr: judge by exit status alone.
                stderr = None;
            }
        }
        let mut err_buf = Vec::new();
        loop {
            drain(&mut stderr, &mut err_buf);
            match child.try_wait() {
                Ok(Some(status)) => {
                    // Catch bytes written between the drain and the exit.
                    drain(&mut stderr, &mut err_buf);
                    return Some((status.success(), err_buf));
                }
                Ok(None) => {}
                Err(_) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return None;
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = child.kill();
                let _ = child.wait();
                return None;
            }
            std::thread::sleep(left.min(Duration::from_millis(2)));
        }
    }
}

impl Oracle for ProcessOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        let _permit = self.limiter.as_ref().map(|l| l.acquire());

        let run = |cmd: &mut Command, stdin_payload: Option<&[u8]>| -> Option<(bool, Vec<u8>)> {
            cmd.stdout(Stdio::null()).stderr(Stdio::piped());
            cmd.stdin(if stdin_payload.is_some() { Stdio::piped() } else { Stdio::null() });
            let mut child = cmd.spawn().ok()?;
            if let Some(payload) = stdin_payload {
                // Ignore broken pipes: the program may legitimately stop
                // reading after detecting an error.
                let _ = child.stdin.take().expect("piped stdin").write_all(payload);
            }
            #[cfg(any(target_os = "linux", target_os = "macos"))]
            if let Some(limit) = self.timeout_duration() {
                return self.wait_with_deadline(child, limit);
            }
            let out = child.wait_with_output().ok()?;
            Some((out.status.success(), out.stderr))
        };

        let result = match self.input_mode {
            InputMode::Stdin => {
                let mut cmd = Command::new(&self.program);
                cmd.args(&self.args);
                run(&mut cmd, Some(input))
            }
            InputMode::TempFile => {
                let path = std::env::temp_dir().join(format!(
                    "glade-oracle-{}-{}.in",
                    std::process::id(),
                    TEMP_FILE_COUNTER.fetch_add(1, Ordering::Relaxed),
                ));
                if std::fs::write(&path, input).is_err() {
                    self.record_failure();
                    return None;
                }
                let mut cmd = Command::new(&self.program);
                for a in &self.args {
                    if a == "{}" {
                        cmd.arg(&path);
                    } else {
                        cmd.arg(a);
                    }
                }
                let r = run(&mut cmd, None);
                let _ = std::fs::remove_file(&path);
                r
            }
        };
        match result {
            Some((ok, stderr)) => Some(ok && (!self.require_empty_stderr || stderr.is_empty())),
            None => {
                // Spawn or wait failed: no verdict was obtained.
                self.record_failure();
                None
            }
        }
    }

    fn failure_count(&self) -> usize {
        self.failures.load(Ordering::Relaxed)
    }

    fn configure_timeout(&self, timeout: Option<Duration>) {
        let nanos = timeout.map_or(0, |t| u64::try_from(t.as_nanos()).unwrap_or(u64::MAX));
        self.timeout_nanos.store(nanos, Ordering::Relaxed);
    }

    fn timed_out_count(&self) -> usize {
        self.timeouts.load(Ordering::Relaxed)
    }
}

/// Serves the pooled worker protocol on this process's stdin/stdout,
/// answering each request with `f`.
///
/// This is the reusable wrapper that turns any `fn(&[u8]) -> bool` target
/// into a [`PooledProcessOracle`] worker: call it from a binary's `main`
/// and point the oracle at that binary. The loop starts in v1 single-query
/// mode, upgrades to v2 batched frames when the oracle's negotiation probe
/// arrives (see the module docs for both wire formats), answers verdicts
/// accordingly, and returns `Ok(())` on a clean EOF between frames — which
/// is how the pool shuts workers down.
///
/// Anything the target prints to stdout would corrupt the protocol, so
/// route target diagnostics to stderr.
///
/// # Errors
///
/// Returns the first I/O error encountered on the protocol streams (a
/// truncated request, a malformed batch frame, a closed pipe
/// mid-response). Binaries typically exit nonzero on `Err`, which the pool
/// observes as a worker crash — this is the fail-closed half of the
/// protocol's failure semantics.
pub fn serve_oracle_worker<F: FnMut(&[u8]) -> bool>(mut f: F) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    // v1 loop, watching for the upgrade probe. The oracle only ever
    // probes immediately after spawning a worker, so the probe payload is
    // special on the FIRST frame only — a later membership query that
    // happens to equal it is answered like any other input (a v1-capped
    // oracle mid-stream must never trip an accidental upgrade).
    let mut first_frame = true;
    loop {
        let Some(len) = read_frame_prefix(&mut input)? else { return Ok(()) };
        buf.clear();
        buf.resize(len as usize, 0);
        input.read_exact(&mut buf)?;
        if first_frame && buf == wire::WIRE_V2_PROBE {
            output.write_all(&[wire::WIRE_V2_ACK])?;
            output.flush()?;
            break;
        }
        first_frame = false;
        let verdict = f(&buf);
        output.write_all(&[u8::from(verdict)])?;
        output.flush()?;
    }
    // v2 loop: one batch frame in, one run of verdict bytes out. Verdicts
    // are buffered and written once per frame — that is the whole point of
    // batching (two syscalls per frame, not per query).
    let mut verdicts = Vec::new();
    loop {
        let Some(count) = read_frame_prefix(&mut input)? else { return Ok(()) };
        let queries = wire::decode_batch_frame_after_count(count, &mut input)?;
        verdicts.clear();
        verdicts.extend(queries.iter().map(|q| u8::from(f(q))));
        output.write_all(&verdicts)?;
        output.flush()?;
    }
}

/// Like [`serve_oracle_worker`], but pinned to the legacy v1 single-query
/// protocol: the worker never answers the negotiation probe (it is treated
/// as an ordinary query) and never speaks batched frames.
///
/// Exists for wire-compatibility pinning — the test suites and benchmarks
/// use it to prove that a v2 oracle degrades cleanly to v1 framing against
/// an old worker — and for targets whose input language could collide with
/// the probe payload.
///
/// # Errors
///
/// As [`serve_oracle_worker`].
pub fn serve_oracle_worker_v1<F: FnMut(&[u8]) -> bool>(mut f: F) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = stdout.lock();
    let mut buf = Vec::new();
    loop {
        let Some(len) = read_frame_prefix(&mut input)? else { return Ok(()) };
        buf.clear();
        buf.resize(len as usize, 0);
        input.read_exact(&mut buf)?;
        let verdict = f(&buf);
        output.write_all(&[u8::from(verdict)])?;
        output.flush()?;
    }
}

/// Reads a frame's leading `u32` (v1 byte length / v2 query count),
/// mapping a clean EOF *before* the prefix to `None` (the protocol's
/// shutdown signal) and EOF *inside* it to an error.
pub(crate) fn read_frame_prefix(input: &mut impl std::io::Read) -> std::io::Result<Option<u32>> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        let n = match input.read(&mut prefix[got..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return if got == 0 {
                Ok(None)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream truncated inside a frame prefix",
                ))
            };
        }
        got += n;
    }
    Ok(Some(u32::from_le_bytes(prefix)))
}

/// One long-lived protocol-speaking child process.
#[derive(Debug)]
struct PooledWorker {
    child: Child,
    /// `Some` for the worker's whole life; taken (closed) only on drop,
    /// which is the protocol's clean-shutdown signal.
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    /// Wire version settled by negotiation at spawn time: 1 (single-query
    /// frames) or 2 (batched frames).
    version: u8,
    /// Pool slot this worker occupies (indexes `PoolState::slots`).
    slot: usize,
    /// Whether this worker ever answered a query. A crash *after* an
    /// answer restarts the breaker's strike streak at 1 instead of
    /// extending it — only consecutive unanswered failures walk a slot
    /// toward tripping.
    answered: bool,
}

impl PooledWorker {
    /// Settles the wire version right after spawn: pose the v1-framed
    /// [`wire::WIRE_V2_PROBE`] and classify the one response byte. Any I/O
    /// failure or illegal byte is an error — the caller treats the worker
    /// as dead on arrival.
    fn negotiate(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        let mut frame = Vec::with_capacity(4 + wire::WIRE_V2_PROBE.len());
        wire::encode_v1_frame(wire::WIRE_V2_PROBE, &mut frame)?;
        self.version = match self.exchange(&frame, timeout)? {
            wire::WIRE_V2_ACK => 2,
            // A v1 worker answered the probe as a query; the verdict is
            // discarded (never cached — it is not a verdict about any
            // input the engine asked about).
            0 | 1 => 1,
            b => {
                return Err(std::io::Error::other(format!(
                    "bad negotiation response byte {b:#04x}"
                )))
            }
        };
        Ok(())
    }

    /// Poses one query over the worker's pipes (whichever wire version the
    /// worker speaks). Any I/O deviation is an error — the caller treats
    /// it as a worker crash; an [`std::io::ErrorKind::TimedOut`] error
    /// specifically means the worker is hung.
    fn query(&mut self, input: &[u8], timeout: Option<Duration>) -> std::io::Result<bool> {
        let mut frame = Vec::with_capacity(8 + input.len());
        match self.version {
            2 => wire::encode_batch_frame(&[input], &mut frame)?,
            _ => wire::encode_v1_frame(input, &mut frame)?,
        }
        match self.exchange(&frame, timeout)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(std::io::Error::other(format!("bad verdict byte {b:#04x}"))),
        }
    }

    /// Writes `frame` and reads the one response byte — blocking when
    /// `timeout` is `None`, and via polled nonblocking I/O bounded by the
    /// deadline otherwise. [`std::io::ErrorKind::TimedOut`] means the
    /// worker blew the deadline; the caller must treat it as hung (kill,
    /// don't wait on it).
    fn exchange(&mut self, frame: &[u8], timeout: Option<Duration>) -> std::io::Result<u8> {
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        if let Some(limit) = timeout {
            return self.timed_exchange(frame, Instant::now() + limit);
        }
        let _ = timeout;
        let stdin = self.stdin.as_mut().expect("stdin open until drop");
        stdin.write_all(frame)?;
        stdin.flush()?;
        let mut response = [0u8; 1];
        self.stdout.read_exact(&mut response)?;
        Ok(response[0])
    }

    /// The deadline-bounded arm of [`PooledWorker::exchange`]: flips both
    /// pipes into nonblocking mode for the exchange and restores blocking
    /// mode afterwards (a restore failure poisons the worker like any
    /// other I/O error — later blocking use would misbehave).
    #[cfg(any(target_os = "linux", target_os = "macos"))]
    fn timed_exchange(&mut self, frame: &[u8], deadline: Instant) -> std::io::Result<u8> {
        use std::os::unix::io::AsRawFd as _;
        let in_fd = self.stdin.as_ref().expect("stdin open until drop").as_raw_fd();
        let out_fd = self.stdout.get_ref().as_raw_fd();
        sys::set_nonblocking(in_fd, true)?;
        sys::set_nonblocking(out_fd, true)?;
        let result = self.timed_exchange_nonblocking(frame, deadline);
        let restored =
            sys::set_nonblocking(in_fd, false).and_then(|()| sys::set_nonblocking(out_fd, false));
        match result {
            Ok(b) => restored.map(|()| b),
            Err(e) => Err(e),
        }
    }

    #[cfg(any(target_os = "linux", target_os = "macos"))]
    fn timed_exchange_nonblocking(
        &mut self,
        frame: &[u8],
        deadline: Instant,
    ) -> std::io::Result<u8> {
        use std::os::unix::io::AsRawFd as _;
        fn timed_out() -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "worker blew the query deadline")
        }
        let mut written = 0usize;
        while written < frame.len() {
            let stdin = self.stdin.as_mut().expect("stdin open until drop");
            match stdin.write(&frame[written..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => written += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(timed_out());
                    }
                    let mut fds =
                        [sys::PollFd { fd: stdin.as_raw_fd(), events: sys::POLLOUT, revents: 0 }];
                    sys::poll_ready(&mut fds, Some(left))?;
                }
                Err(e) => return Err(e),
            }
        }
        // The dispatcher invariant holds here too: between requests the
        // BufReader holds nothing, so reading the raw fd underneath it
        // cannot skip buffered bytes.
        debug_assert!(self.stdout.buffer().is_empty());
        loop {
            let mut byte = [0u8; 1];
            match self.stdout.get_mut().read(&mut byte) {
                Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
                Ok(_) => return Ok(byte[0]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(timed_out());
                    }
                    let mut fds = [sys::PollFd {
                        fd: self.stdout.get_ref().as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    }];
                    sys::poll_ready(&mut fds, Some(left))?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for PooledWorker {
    fn drop(&mut self) {
        // Closing stdin is the protocol's clean-exit signal: a conforming
        // worker sees EOF between requests and returns, running whatever
        // cleanup its target needs. Give it a short grace period before
        // the hard kill + wait that guarantees no zombie survives a crash
        // path (or a worker that ignores EOF).
        drop(self.stdin.take());
        for _ in 0..10 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(5)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Respawn-backoff and circuit-breaker bookkeeping for one worker slot
/// (see the module-level state machine).
#[derive(Debug, Clone, Default)]
struct SlotHealth {
    /// Consecutive spawn-or-crash failures without an answered query.
    strikes: u32,
    /// Earliest instant a spawn may be attempted in this slot again:
    /// backoff expiry while closed, cool-down expiry while open. `None`
    /// means spawning is allowed now.
    open_after: Option<Instant>,
    /// Breaker state: `true` = open (spawns blocked until `open_after`,
    /// after which one checkout becomes the half-open probe).
    tripped: bool,
    /// How many times this slot's breaker has tripped (drives the
    /// cool-down growth across re-trips).
    trips: u32,
    /// A live worker (idle or checked out) currently occupies this slot.
    occupied: bool,
}

/// Idle workers plus the count of live (idle or checked-out) workers.
#[derive(Debug, Default)]
struct PoolState {
    idle: Vec<PooledWorker>,
    live: usize,
    /// Per-slot breaker state, indexed by `PooledWorker::slot`; grown
    /// lazily to the pool size.
    slots: Vec<SlotHealth>,
}

impl PoolState {
    fn health(&mut self, slot: usize) -> &mut SlotHealth {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, SlotHealth::default());
        }
        &mut self.slots[slot]
    }
}

#[derive(Debug)]
struct PoolInner {
    program: PathBuf,
    args: Vec<String>,
    size: usize,
    /// Queries per v2 batch frame in the batched dispatcher.
    frame_batch: usize,
    /// Highest wire version to negotiate: 1 pins the legacy protocol
    /// (no probe is ever sent), 2 (the default) probes for batched frames.
    max_wire: u8,
    state: Mutex<PoolState>,
    available: Condvar,
    /// Queries for which no real verdict could be obtained (degraded
    /// `false` answers). Excludes queries rescued by the fallback oracle.
    failures: AtomicUsize,
    /// Workers replaced after a crash (diagnostic, not a failure count).
    respawns: AtomicUsize,
    /// Per-query deadline in nanoseconds (`0` = wait forever); see
    /// [`PooledProcessOracle::query_timeout`].
    timeout_nanos: AtomicU64,
    /// Consecutive unanswered spawn-or-crash failures that trip a slot's
    /// circuit breaker.
    max_respawns: u32,
    /// Base delay of the exponential respawn backoff.
    backoff_base: Duration,
    /// Queries abandoned because a worker blew the deadline (the worker
    /// was killed; each query then took the ordinary crash path).
    timeouts: AtomicUsize,
    /// Breaker trips across the pool's lifetime (monotone).
    trips: AtomicUsize,
    /// Half-open probes that revived a tripped slot (monotone).
    recoveries: AtomicUsize,
    fallback: Option<ProcessOracle>,
}

/// A membership oracle backed by a pool of persistent worker processes.
///
/// Where [`ProcessOracle`] pays `spawn + wait` per query, this oracle keeps
/// up to `pool_size` long-lived children of `program` and poses each query
/// over a pipe using the length-prefixed protocol documented at the module
/// level — the same amortization persistent test executors and AFL's
/// forkserver use. The target program must speak the protocol; wrap any
/// in-process predicate with [`serve_oracle_worker`] to get a conforming
/// worker binary.
///
/// Workers are spawned lazily (the first `pool_size` concurrent queries
/// each start one) and checked out exclusively per query, so the pool also
/// bounds process concurrency the way [`ProcessOracle::max_concurrent`]
/// does. A crashed worker is reaped and replaced, and the in-flight query
/// is retried once on the replacement; if the pooled path still cannot
/// produce a verdict, the query falls back to a spawn-per-query
/// [`ProcessOracle`] when one was configured with
/// [`PooledProcessOracle::fallback`], and otherwise answers `false` and
/// increments [`Oracle::failure_count`].
///
/// Clones share the pool, its workers, and its counters.
///
/// # Examples
///
/// ```no_run
/// use glade_core::{Oracle, PooledProcessOracle};
///
/// // `my-worker` loops over glade_core::serve_oracle_worker(my_predicate).
/// let oracle = PooledProcessOracle::new("my-worker").pool_size(8);
/// assert!(oracle.accepts(b"<a>hi</a>") || true);
/// ```
#[derive(Debug, Clone)]
pub struct PooledProcessOracle {
    inner: Arc<PoolInner>,
}

impl PooledProcessOracle {
    /// Creates a pool that runs `program` as its worker command, with a
    /// single worker. Use [`PooledProcessOracle::pool_size`] to widen.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        PooledProcessOracle {
            inner: Arc::new(PoolInner {
                program: program.into(),
                args: Vec::new(),
                size: 1,
                frame_batch: DEFAULT_FRAME_BATCH,
                max_wire: 2,
                state: Mutex::new(PoolState::default()),
                available: Condvar::new(),
                failures: AtomicUsize::new(0),
                respawns: AtomicUsize::new(0),
                timeout_nanos: AtomicU64::new(0),
                max_respawns: DEFAULT_MAX_RESPAWNS,
                backoff_base: DEFAULT_BACKOFF_BASE,
                timeouts: AtomicUsize::new(0),
                trips: AtomicUsize::new(0),
                recoveries: AtomicUsize::new(0),
                fallback: None,
            }),
        }
    }

    fn inner_mut(&mut self) -> &mut PoolInner {
        Arc::get_mut(&mut self.inner)
            .expect("PooledProcessOracle builders must run before the pool is cloned or used")
    }

    /// Appends a command-line argument passed to every worker process.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.inner_mut().args.push(arg.into());
        self
    }

    /// Sets the maximum number of concurrent worker processes (must be
    /// nonzero). Workers are spawned lazily up to this bound.
    pub fn pool_size(mut self, n: usize) -> Self {
        assert!(n > 0, "pool_size requires at least one worker");
        self.inner_mut().size = n;
        self
    }

    /// Sets the number of queries packed into one v2 batch frame by the
    /// batched dispatcher (must be in `1..=`[`wire::MAX_FRAME_QUERIES`]).
    /// Larger frames amortize more syscall round-trips but delay the first
    /// verdicts of a batch; the default of 32 is a good trade for
    /// millisecond-or-faster targets. Irrelevant for v1 workers, which are
    /// always posed one query at a time. Affects throughput only, never
    /// verdicts — grammar bytes and query counts are invariant across
    /// frame batch sizes.
    pub fn frame_batch(mut self, n: usize) -> Self {
        assert!(
            (1..=wire::MAX_FRAME_QUERIES).contains(&n),
            "frame_batch must be in 1..={}",
            wire::MAX_FRAME_QUERIES
        );
        self.inner_mut().frame_batch = n;
        self
    }

    /// Caps the wire version negotiated with workers (must be 1 or 2).
    ///
    /// The default (2) probes every fresh worker for batched-frame
    /// support; `max_wire_version(1)` skips the probe entirely and speaks
    /// the legacy single-query protocol, byte-for-byte — for workers whose
    /// target must never see the probe payload, and for pinning v1
    /// behavior in compatibility tests. Affects throughput only, never
    /// verdicts.
    pub fn max_wire_version(mut self, version: u8) -> Self {
        assert!(version == 1 || version == 2, "wire versions are 1 and 2");
        self.inner_mut().max_wire = version;
        self
    }

    /// Installs a spawn-per-query fallback used when the pooled path cannot
    /// produce a verdict (worker respawn keeps failing — e.g. the binary
    /// disappeared or the system is out of pids). Queries answered by the
    /// fallback are real verdicts and are not counted as failures.
    pub fn fallback(mut self, oracle: ProcessOracle) -> Self {
        self.inner_mut().fallback = Some(oracle);
        self
    }

    /// Bounds every pooled query with a per-query deadline. A worker that
    /// has not produced its next verdict byte within `limit` (measured
    /// from the query being posed — or, in the batched dispatcher, from
    /// its previous verdict byte) is hung: it is killed and reaped, the
    /// timeout is counted in [`Oracle::timed_out_count`], and its
    /// in-flight queries take the ordinary crash path (requeue-once,
    /// fallback rescue, counted failure — never a silent `false`). Unset
    /// (the default) waits forever. Runtime-configurable on a live pool
    /// via [`Oracle::configure_timeout`]. Affects liveness only, never
    /// verdicts.
    pub fn query_timeout(self, limit: Duration) -> Self {
        self.configure_timeout(Some(limit));
        self
    }

    /// Sets how many consecutive unanswered spawn-or-crash failures trip
    /// a worker slot's circuit breaker (must be nonzero; default 4). See
    /// the module docs for the full backoff/breaker state machine.
    pub fn max_respawns(mut self, k: u32) -> Self {
        assert!(k > 0, "max_respawns requires at least one attempt");
        self.inner_mut().max_respawns = k;
        self
    }

    /// Sets the base delay of the exponential respawn backoff (default
    /// 10ms). The breaker cool-down scales from the same base. Mostly for
    /// tests that need fast breaker transitions.
    pub fn respawn_backoff(mut self, base: Duration) -> Self {
        self.inner_mut().backoff_base = base;
        self
    }

    fn query_timeout_duration(&self) -> Option<Duration> {
        let nanos = self.inner.timeout_nanos.load(Ordering::Relaxed);
        (nanos > 0).then(|| Duration::from_nanos(nanos))
    }

    /// Number of workers replaced after a crash, across the pool's
    /// lifetime.
    pub fn respawn_count(&self) -> usize {
        self.inner.respawns.load(Ordering::Relaxed)
    }

    /// A stable fingerprint of the worker command (program + arguments) for
    /// tagging persisted cache snapshots; see [`ProcessOracle::fingerprint`].
    /// The pool size is deliberately excluded — it affects throughput, not
    /// verdicts.
    pub fn fingerprint(&self) -> String {
        format!("pooled:{}:{}", self.inner.program.display(), self.inner.args.join("\u{1f}"))
    }

    fn spawn_worker(&self, slot: usize) -> std::io::Result<PooledWorker> {
        let mut child = Command::new(&self.inner.program)
            .args(&self.inner.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut worker =
            PooledWorker { child, stdin: Some(stdin), stdout, version: 1, slot, answered: false };
        if self.inner.max_wire >= 2 {
            // A worker that cannot even complete negotiation is dead on
            // arrival: report it as a spawn failure so the callers'
            // degradation paths (fallback oracle, failure counting) apply.
            // Negotiation honors the query deadline too — a worker hung at
            // hello is as dead as one hung mid-query.
            worker.negotiate(self.query_timeout_duration())?;
        }
        Ok(worker)
    }

    /// Exponential respawn backoff for strike `strikes` in `slot`: nothing
    /// for the first strike, then `base · 2^(strikes−2)` (shift capped)
    /// plus a deterministic per-(slot, strike) jitter ≤ `base/4` so the
    /// slots of a crashing pool do not respawn in lockstep.
    fn backoff_delay(&self, slot: usize, strikes: u32) -> Option<Duration> {
        retry_backoff_delay(self.inner.backoff_base, slot as u64, strikes)
    }

    /// Breaker cool-down before the `trips`-th open slot half-opens:
    /// `base · 50 · 2^(trips−1)` (growth capped), at most one minute.
    fn trip_cooldown(&self, trips: u32) -> Duration {
        let exp = trips.saturating_sub(1).min(5);
        self.inner.backoff_base.saturating_mul(50 << exp).min(Duration::from_secs(60))
    }

    /// Records one spawn-or-crash strike against `slot` (pool lock held by
    /// the caller): advances the strike streak, schedules the backoff, and
    /// trips (or re-trips) the breaker at `max_respawns` strikes.
    fn record_strike(&self, state: &mut PoolState, slot: usize, answered: bool) {
        let k = self.inner.max_respawns;
        let h = state.health(slot);
        h.strikes = if answered { 1 } else { h.strikes.saturating_add(1) };
        if h.tripped || h.strikes >= k {
            // Fresh trip, or a failed half-open probe re-tripping with a
            // longer cool-down.
            h.tripped = true;
            h.trips = h.trips.saturating_add(1);
            let trips = h.trips;
            state.health(slot).open_after = Some(Instant::now() + self.trip_cooldown(trips));
            self.inner.trips.fetch_add(1, Ordering::Relaxed);
        } else {
            let delay = self.backoff_delay(slot, h.strikes);
            state.health(slot).open_after = delay.map(|d| Instant::now() + d);
        }
    }

    /// Records a strike against `slot` while keeping it occupied (the
    /// caller is about to retry in place). Returns `true` when the slot
    /// may not spawn right now — breaker open or backoff pending — in
    /// which case the caller must release the slot and degrade instead of
    /// retrying.
    fn strike_in_place(&self, slot: usize, answered: bool) -> bool {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        self.record_strike(&mut state, slot, answered);
        let h = state.health(slot);
        h.tripped || h.open_after.is_some_and(|t| t > Instant::now())
    }

    /// Records a strike against `slot` and gives the live slot up (the
    /// worker died and is not being replaced here, or a spawn failed).
    fn strike_and_release(&self, slot: usize, answered: bool) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        state.live -= 1;
        self.record_strike(&mut state, slot, answered);
        state.health(slot).occupied = false;
        drop(state);
        self.inner.available.notify_one();
    }

    /// A half-open probe spawned successfully: close the slot's breaker
    /// and count the recovery. The strike streak is deliberately *not*
    /// reset — only an answered query ([`PooledProcessOracle::checkin`])
    /// does that, so a spawn-then-crash-before-answering loop still trips.
    fn note_recovery(&self, slot: usize) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        let h = state.health(slot);
        h.tripped = false;
        h.open_after = None;
        drop(state);
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Checks a worker out of the pool, spawning one lazily into a
    /// spawnable slot (backoff elapsed, breaker closed — or open past its
    /// cool-down, which makes this checkout the half-open probe). `block`
    /// waits out a fully-busy pool and pending backoffs; nonblocking
    /// callers get `None` instead. Returns `None` when no worker can be
    /// produced — needed spawns failed, or every idle slot's breaker is
    /// open (queries then degrade to the fallback rather than sleeping
    /// out a cool-down).
    fn checkout_inner(&self, block: bool) -> Option<PooledWorker> {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        loop {
            if let Some(w) = state.idle.pop() {
                return Some(w);
            }
            if state.live >= self.inner.size {
                if !block {
                    return None;
                }
                state = self.inner.available.wait(state).expect("pool poisoned");
                continue;
            }
            let now = Instant::now();
            let candidate = (0..self.inner.size).find(|&s| {
                let h = state.health(s);
                !h.occupied && h.open_after.is_none_or(|t| t <= now)
            });
            if let Some(slot) = candidate {
                state.live += 1;
                let h = state.health(slot);
                h.occupied = true;
                let half_open = h.tripped;
                drop(state);
                match self.spawn_worker(slot) {
                    Ok(w) => {
                        if half_open {
                            self.note_recovery(slot);
                        }
                        return Some(w);
                    }
                    Err(_) => {
                        self.strike_and_release(slot, false);
                        if !block {
                            return None;
                        }
                        state = self.inner.state.lock().expect("pool poisoned");
                        continue;
                    }
                }
            }
            // No slot is spawnable right now. Distinguish "worth waiting"
            // (live workers will check back in, or a backoff will elapse)
            // from "degrade now" (no live workers and every idle slot's
            // breaker is open).
            let waitable = (0..self.inner.size).any(|s| {
                let h = state.health(s);
                !h.occupied && !h.tripped
            });
            if state.live == 0 && !waitable {
                return None;
            }
            if !block {
                return None;
            }
            let earliest = (0..self.inner.size)
                .filter_map(|s| {
                    let h = state.health(s);
                    if h.occupied || h.tripped {
                        None
                    } else {
                        h.open_after
                    }
                })
                .min();
            state = match earliest {
                Some(t) => {
                    let wait =
                        t.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
                    self.inner.available.wait_timeout(state, wait).expect("pool poisoned").0
                }
                None => self.inner.available.wait(state).expect("pool poisoned"),
            };
        }
    }

    /// Blocking checkout; see [`PooledProcessOracle::checkout_inner`].
    fn checkout(&self) -> Option<PooledWorker> {
        self.checkout_inner(true)
    }

    /// Like [`PooledProcessOracle::checkout`], but never blocks: returns
    /// `None` when every worker is busy (or a needed spawn fails, or the
    /// breakers forbid spawning). The batched dispatcher uses this to
    /// widen its worker set opportunistically without stalling on pools
    /// shared with other callers.
    fn try_checkout(&self) -> Option<PooledWorker> {
        self.checkout_inner(false)
    }

    /// Returns a healthy worker to the idle set. An answered query is the
    /// breaker's proof of slot health: the strike streak resets here.
    fn checkin(&self, worker: PooledWorker) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        if worker.answered {
            let h = state.health(worker.slot);
            h.strikes = 0;
            h.open_after = None;
            h.tripped = false;
        }
        state.idle.push(worker);
        drop(state);
        self.inner.available.notify_one();
    }

    /// Gives up a live slot (worker died and was not replaced, or a spawn
    /// failed), waking a waiter so it can try spawning afresh.
    fn release_slot(&self, slot: usize) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        state.live -= 1;
        state.health(slot).occupied = false;
        drop(state);
        self.inner.available.notify_one();
    }

    /// A [`std::io::ErrorKind::TimedOut`] exchange means the worker is
    /// hung, not crashed: count the timeout and kill it immediately, so
    /// the drop-time grace period (meant for workers that honor EOF) does
    /// not stall the caller.
    fn kill_if_hung(&self, worker: &mut PooledWorker, err: &std::io::Error) {
        if err.kind() == std::io::ErrorKind::TimedOut {
            self.inner.timeouts.fetch_add(1, Ordering::Relaxed);
            let _ = worker.child.kill();
        }
    }

    /// The pooled path produced no verdict: consult the fallback oracle or
    /// record a failure (`None` — the caller must not cache the answer).
    fn degraded(&self, input: &[u8]) -> Option<bool> {
        match &self.inner.fallback {
            Some(fallback) => fallback.accepts_checked(input),
            None => {
                self.inner.failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// A checked-out worker inside the batched dispatcher, with its pipes in
/// nonblocking mode.
#[cfg(any(target_os = "linux", target_os = "macos"))]
struct DispatchSlot {
    worker: PooledWorker,
    /// Encoded-but-not-fully-written frame bytes.
    outbuf: Vec<u8>,
    written: usize,
    /// Query indices whose verdict bytes are still owed, in frame order
    /// (this includes queries whose frame is still in `outbuf`).
    inflight: VecDeque<usize>,
    /// Set when the worker deviates from the protocol; the crash pass
    /// requeues its in-flight queries and replaces it.
    dead: bool,
    /// When the worker's next verdict byte is due: armed as queries enter
    /// an empty in-flight window, re-armed on every verdict byte, cleared
    /// when the window drains. `None` while nothing is owed or no
    /// [`PooledProcessOracle::query_timeout`] is configured.
    deadline: Option<Instant>,
}

#[cfg(any(target_os = "linux", target_os = "macos"))]
impl DispatchSlot {
    fn wants_write(&self) -> bool {
        self.written < self.outbuf.len()
    }
}

#[cfg(any(target_os = "linux", target_os = "macos"))]
impl PooledProcessOracle {
    /// Puts a freshly checked-out worker's pipes into nonblocking mode and
    /// wraps it into a dispatch slot. On failure the worker is dropped and
    /// its pool slot released.
    fn open_slot(&self, worker: PooledWorker) -> Option<DispatchSlot> {
        use std::os::unix::io::AsRawFd as _;
        // The dispatcher reads the raw ChildStdout underneath the worker's
        // BufReader; that is sound only while the BufReader holds nothing,
        // which the request/response protocol guarantees for an idle
        // worker (every response has been consumed exactly).
        debug_assert!(worker.stdout.buffer().is_empty());
        let ok = sys::set_nonblocking(worker.stdin.as_ref().expect("stdin open").as_raw_fd(), true)
            .and_then(|()| sys::set_nonblocking(worker.stdout.get_ref().as_raw_fd(), true))
            .is_ok();
        if !ok {
            let slot = worker.slot;
            drop(worker);
            self.release_slot(slot);
            return None;
        }
        Some(DispatchSlot {
            worker,
            outbuf: Vec::new(),
            written: 0,
            inflight: VecDeque::new(),
            dead: false,
            deadline: None,
        })
    }

    /// Restores blocking mode and returns the worker to the pool (or
    /// gives its slot up if the fds cannot be restored).
    fn close_slot(&self, slot: DispatchSlot) {
        use std::os::unix::io::AsRawFd as _;
        debug_assert!(!slot.dead && slot.inflight.is_empty());
        let worker = slot.worker;
        let ok =
            sys::set_nonblocking(worker.stdin.as_ref().expect("stdin open").as_raw_fd(), false)
                .and_then(|()| sys::set_nonblocking(worker.stdout.get_ref().as_raw_fd(), false))
                .is_ok();
        if ok {
            self.checkin(worker);
        } else {
            let slot = worker.slot;
            drop(worker);
            self.release_slot(slot);
        }
    }

    /// Event-driven batched dispatch (see the module docs): multiplexes
    /// every checked-out worker pipe with `poll(2)` readiness from the
    /// calling thread, keeping each worker saturated with a bounded
    /// in-flight window — batched v2 frames, or strict request–response
    /// for v1 workers. Crash recovery, retry-once, fallback, and failure
    /// accounting follow the per-query path exactly; results are one
    /// verdict (or `None` for an execution failure) per input, in input
    /// order.
    fn dispatch_batch(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
        let n = inputs.len();
        let frame_batch = self.inner.frame_batch;
        let timeout = self.query_timeout_duration();
        let mut results: Vec<Option<bool>> = vec![None; n];
        let mut retried = vec![false; n];
        // Indices that exhausted the event-driven path. They are resolved
        // at the end through the blocking per-query path
        // ([`Oracle::accepts_checked`]), which carries its own
        // fresh-worker retry, fallback-oracle rescue, and failure
        // accounting — so a query degrades to a counted failure only when
        // a freshly spawned worker cannot answer it either, exactly as in
        // per-query operation.
        let mut no_verdict: Vec<usize> = Vec::new();
        let mut pending: VecDeque<usize> = VecDeque::with_capacity(n);
        let mut remaining = 0usize;
        for (i, input) in inputs.iter().enumerate() {
            if u32::try_from(input.len()).is_err() {
                // Unframeable behind the protocol's u32 length prefix;
                // `accepts_checked` repeats the check and degrades.
                no_verdict.push(i);
            } else {
                pending.push_back(i);
                remaining += 1;
            }
        }

        let mut slots: Vec<DispatchSlot> = Vec::new();
        let mut read_buf = [0u8; 8192];
        let mut fds: Vec<sys::PollFd> = Vec::new();
        // Which (slot, direction) each pollfd belongs to; true = write.
        let mut fd_map: Vec<(usize, bool)> = Vec::new();

        'dispatch: while remaining > 0 {
            // Worker acquisition: block for the first worker (an empty
            // worker set cannot make progress), then widen
            // opportunistically while there is more queued work than the
            // current slots' windows can hold.
            if slots.is_empty() {
                match self.checkout().and_then(|w| self.open_slot(w)) {
                    Some(slot) => slots.push(slot),
                    None => {
                        // No worker obtainable at all: everything left
                        // degrades (the loop exits, `remaining` is moot).
                        no_verdict.extend(pending.drain(..));
                        break 'dispatch;
                    }
                }
            }
            let per_worker =
                if slots.first().is_some_and(|s| s.worker.version >= 2) { frame_batch } else { 1 };
            while !pending.is_empty()
                && slots.len() < self.inner.size
                && slots.len() < pending.len().div_ceil(per_worker)
            {
                match self.try_checkout().and_then(|w| self.open_slot(w)) {
                    Some(slot) => slots.push(slot),
                    None => break,
                }
            }

            // Fill: top every live slot's in-flight window up from the
            // pending queue. v2 workers take whole batch frames (up to two
            // frames outstanding so the pipe never drains between frames);
            // v1 workers are posed strictly one query at a time, per the
            // protocol.
            for slot in &mut slots {
                if !slot.wants_write() && !slot.outbuf.is_empty() {
                    slot.outbuf.clear();
                    slot.written = 0;
                }
                loop {
                    let v2 = slot.worker.version >= 2;
                    let window = if v2 { frame_batch.saturating_mul(2) } else { 1 };
                    if pending.is_empty() || slot.inflight.len() >= window {
                        break;
                    }
                    // Assemble one frame's worth of queries, respecting
                    // the v2 frame caps so encoding cannot fail.
                    let mut frame_queries: Vec<usize> = Vec::new();
                    let mut frame_bytes = 0u64;
                    let take_limit = if v2 { frame_batch } else { 1 };
                    while frame_queries.len() < take_limit {
                        let Some(&i) = pending.front() else { break };
                        let len = inputs[i].len() as u64;
                        if v2 && len > wire::MAX_FRAME_BYTES as u64 {
                            // A single query beyond the v2 frame cap
                            // cannot be posed over this channel at all.
                            pending.pop_front();
                            no_verdict.push(i);
                            remaining -= 1;
                            continue;
                        }
                        if v2
                            && !frame_queries.is_empty()
                            && frame_bytes + len > wire::MAX_FRAME_BYTES as u64
                        {
                            break;
                        }
                        pending.pop_front();
                        frame_queries.push(i);
                        frame_bytes += len;
                    }
                    if frame_queries.is_empty() {
                        break;
                    }
                    if v2 {
                        let refs: Vec<&[u8]> = frame_queries.iter().map(|&i| inputs[i]).collect();
                        wire::encode_batch_frame(&refs, &mut slot.outbuf)
                            .expect("frame pre-validated against the protocol caps");
                    } else {
                        wire::encode_v1_frame(inputs[frame_queries[0]], &mut slot.outbuf)
                            .expect("length pre-validated against the u32 prefix");
                    }
                    slot.inflight.extend(frame_queries);
                }
                if let Some(t) = timeout {
                    if slot.deadline.is_none() && !slot.inflight.is_empty() {
                        // The deadline covers frame delivery too: a worker
                        // hung enough to stop reading stalls the write
                        // side just as hard as one that stops answering.
                        slot.deadline = Some(Instant::now() + t);
                    }
                }
            }

            // Readiness: one pollfd per direction per slot with work.
            fds.clear();
            fd_map.clear();
            for (si, slot) in slots.iter().enumerate() {
                use std::os::unix::io::AsRawFd as _;
                if slot.wants_write() {
                    fds.push(sys::PollFd {
                        fd: slot.worker.stdin.as_ref().expect("stdin open").as_raw_fd(),
                        events: sys::POLLOUT,
                        revents: 0,
                    });
                    fd_map.push((si, true));
                }
                if !slot.inflight.is_empty() {
                    fds.push(sys::PollFd {
                        fd: slot.worker.stdout.get_ref().as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    fd_map.push((si, false));
                }
            }
            if fds.is_empty() {
                // No slot holds work: with remaining > 0 the fill pass
                // must have queued something, so this means every slot
                // died and was not replaced. Loop back to re-acquire.
                continue;
            }
            // Block until a pipe is ready or the earliest slot deadline
            // passes (`Ok(0)`). `poll_ready` retries EINTR internally with
            // the remaining time recomputed, so a stray signal never
            // degrades the batch.
            let poll_timeout = slots
                .iter()
                .filter_map(|s| s.deadline)
                .min()
                .map(|d| d.saturating_duration_since(Instant::now()));
            if sys::poll_ready(&mut fds, poll_timeout).is_err() {
                // poll(2) itself failed (resource exhaustion): no channel
                // is trustworthy, degrade whatever is unanswered.
                for slot in &mut slots {
                    no_verdict.extend(slot.inflight.drain(..));
                    slot.dead = true;
                }
                no_verdict.extend(pending.drain(..));
                break 'dispatch;
            }

            // Service ready pipes. Errors and protocol deviations mark
            // the slot dead; the crash pass below deals with them.
            for (k, fd) in fds.iter().enumerate() {
                if fd.revents == 0 {
                    continue;
                }
                let (si, is_write) = fd_map[k];
                let slot = &mut slots[si];
                if slot.dead {
                    continue;
                }
                if fd.revents & sys::POLLNVAL != 0 {
                    slot.dead = true;
                    continue;
                }
                if is_write {
                    while slot.wants_write() {
                        let stdin = slot.worker.stdin.as_mut().expect("stdin open");
                        match stdin.write(&slot.outbuf[slot.written..]) {
                            Ok(0) => {
                                slot.dead = true;
                                break;
                            }
                            Ok(k) => slot.written += k,
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::Interrupted =>
                            {
                                break;
                            }
                            Err(_) => {
                                slot.dead = true;
                                break;
                            }
                        }
                    }
                } else {
                    let mut advanced = false;
                    'read: loop {
                        match slot.worker.stdout.get_mut().read(&mut read_buf) {
                            Ok(0) => {
                                slot.dead = true;
                                break;
                            }
                            Ok(got) => {
                                for &b in &read_buf[..got] {
                                    let Some(idx) = slot.inflight.pop_front() else {
                                        // Bytes we never asked for.
                                        slot.dead = true;
                                        break 'read;
                                    };
                                    match b {
                                        0 | 1 => {
                                            results[idx] = Some(b == 1);
                                            remaining -= 1;
                                            advanced = true;
                                        }
                                        _ => {
                                            // Illegal verdict: the query is
                                            // unanswered; let the crash pass
                                            // requeue it with the rest.
                                            slot.inflight.push_front(idx);
                                            slot.dead = true;
                                            break 'read;
                                        }
                                    }
                                }
                            }
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::Interrupted =>
                            {
                                break;
                            }
                            Err(_) => {
                                slot.dead = true;
                                break;
                            }
                        }
                    }
                    if advanced {
                        // Progress is per verdict byte: a slow worker that
                        // keeps answering within the deadline is healthy,
                        // however long the whole frame takes.
                        slot.worker.answered = true;
                        slot.deadline = if slot.inflight.is_empty() {
                            None
                        } else {
                            timeout.map(|t| Instant::now() + t)
                        };
                    }
                }
            }

            // Hang scan: a slot still owing verdicts past its deadline is
            // hung — count its in-flight queries as timeouts, kill the
            // worker, and let the crash pass recover them (requeue-once,
            // then the blocking replay path with fallback and failure
            // accounting — never a silent `false`).
            if timeout.is_some() {
                let now = Instant::now();
                for slot in &mut slots {
                    if !slot.dead
                        && !slot.inflight.is_empty()
                        && slot.deadline.is_some_and(|d| d <= now)
                    {
                        self.inner.timeouts.fetch_add(slot.inflight.len(), Ordering::Relaxed);
                        let _ = slot.worker.child.kill();
                        slot.dead = true;
                    }
                }
            }

            // Crash pass: reap dead workers, requeue their unanswered
            // queries (one retry each, as in the per-query path), and
            // spawn replacements into the same pool slots.
            let mut si = 0;
            while si < slots.len() {
                if !slots[si].dead {
                    si += 1;
                    continue;
                }
                let mut slot = slots.swap_remove(si);
                for idx in slot.inflight.drain(..) {
                    if retried[idx] {
                        no_verdict.push(idx);
                        remaining -= 1;
                    } else {
                        retried[idx] = true;
                        pending.push_back(idx);
                    }
                }
                let pool_slot = slot.worker.slot;
                let answered = slot.worker.answered;
                drop(slot.worker); // reap
                self.inner.respawns.fetch_add(1, Ordering::Relaxed);
                if self.strike_in_place(pool_slot, answered) {
                    // Breaker open or backoff pending: give the slot up
                    // rather than spawning into it; the top-of-loop
                    // acquisition re-probes once spawning is allowed
                    // again (and sleeps out backoffs off the hot path).
                    self.release_slot(pool_slot);
                    continue;
                }
                match self.spawn_worker(pool_slot) {
                    Ok(fresh) => {
                        // A `None` means open_slot released the pool slot.
                        if let Some(replacement) = self.open_slot(fresh) {
                            slots.push(replacement);
                        }
                    }
                    Err(_) => self.strike_and_release(pool_slot, false),
                }
            }
        }

        for slot in slots {
            if slot.dead {
                // Only reachable on the poll-failure bailout: reap.
                let pool_slot = slot.worker.slot;
                drop(slot.worker);
                self.release_slot(pool_slot);
            } else {
                self.close_slot(slot);
            }
        }
        // Last resort for queries the event loop could not settle: the
        // blocking per-query path (fresh-worker retry, fallback, failure
        // accounting included).
        for idx in no_verdict {
            results[idx] = self.accepts_checked(inputs[idx]);
        }
        results
    }
}

impl Oracle for PooledProcessOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        self.accepts_checked(input).unwrap_or(false)
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        // The protocol cannot frame inputs beyond the u32 length prefix;
        // detect that before any I/O rather than punishing (and reaping) a
        // healthy worker for an unpose-able query.
        if u32::try_from(input.len()).is_err() {
            return self.degraded(input);
        }
        let Some(mut worker) = self.checkout() else {
            // Could not spawn a worker at all.
            return self.degraded(input);
        };
        // The v2 channel additionally caps a frame's payload: a query
        // beyond it is unpose-able on *this worker*, not a worker crash —
        // return the healthy worker and degrade (the fallback oracle, if
        // any, still produces a real verdict).
        if worker.version >= 2 && input.len() > wire::MAX_FRAME_BYTES {
            self.checkin(worker);
            return self.degraded(input);
        }
        let timeout = self.query_timeout_duration();
        match worker.query(input, timeout) {
            Ok(v) => {
                worker.answered = true;
                self.checkin(worker);
                Some(v)
            }
            Err(e) => {
                // Worker crashed (or hung and blew the deadline): reap it,
                // respawn, retry once — unless the slot's breaker says the
                // retry would just strike again.
                let slot = worker.slot;
                let answered = worker.answered;
                self.kill_if_hung(&mut worker, &e);
                drop(worker); // reap
                self.inner.respawns.fetch_add(1, Ordering::Relaxed);
                if self.strike_in_place(slot, answered) {
                    self.release_slot(slot);
                    return self.degraded(input);
                }
                match self.spawn_worker(slot) {
                    Ok(mut fresh) => {
                        if fresh.version >= 2 && input.len() > wire::MAX_FRAME_BYTES {
                            // Same unpose-able-on-v2 guard as above (the
                            // replacement may negotiate differently).
                            self.checkin(fresh);
                            return self.degraded(input);
                        }
                        match fresh.query(input, timeout) {
                            Ok(v) => {
                                fresh.answered = true;
                                self.checkin(fresh);
                                Some(v)
                            }
                            Err(e) => {
                                self.kill_if_hung(&mut fresh, &e);
                                drop(fresh);
                                self.strike_and_release(slot, false);
                                self.degraded(input)
                            }
                        }
                    }
                    Err(_) => {
                        self.strike_and_release(slot, false);
                        self.degraded(input)
                    }
                }
            }
        }
    }

    fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        if inputs.len() > 1 {
            return self.dispatch_batch(inputs);
        }
        inputs.iter().map(|i| self.accepts_checked(i)).collect()
    }

    fn native_batching(&self) -> bool {
        cfg!(any(target_os = "linux", target_os = "macos"))
    }

    fn failure_count(&self) -> usize {
        self.inner.failures.load(Ordering::Relaxed)
            + self.inner.fallback.as_ref().map_or(0, Oracle::failure_count)
    }

    fn configure_timeout(&self, timeout: Option<Duration>) {
        let nanos = timeout.map_or(0, |t| u64::try_from(t.as_nanos()).unwrap_or(u64::MAX));
        self.inner.timeout_nanos.store(nanos, Ordering::Relaxed);
        // The fallback rescues queries the pooled path abandoned; it needs
        // the same hang protection or a hung target would stall the rescue.
        if let Some(fallback) = &self.inner.fallback {
            fallback.configure_timeout(timeout);
        }
    }

    fn timed_out_count(&self) -> usize {
        self.inner.timeouts.load(Ordering::Relaxed)
            + self.inner.fallback.as_ref().map_or(0, Oracle::timed_out_count)
    }

    fn tripped_worker_count(&self) -> usize {
        self.inner.trips.load(Ordering::Relaxed)
    }

    fn recovered_worker_count(&self) -> usize {
        self.inner.recoveries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_oracle_delegates() {
        let o = FnOracle::new(|i: &[u8]| i.starts_with(b"ok"));
        assert!(o.accepts(b"okay"));
        assert!(!o.accepts(b"nope"));
        assert_eq!(o.failure_count(), 0, "in-process oracles never fail");
    }

    #[test]
    fn caching_oracle_counts_and_memoizes() {
        let calls = AtomicUsize::new(0);
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| {
            calls.fetch_add(1, Ordering::Relaxed);
            i.is_empty()
        }));
        assert!(o.accepts(b""));
        assert!(o.accepts(b""));
        assert!(!o.accepts(b"x"));
        assert_eq!(o.total_queries(), 3);
        assert_eq!(o.unique_queries(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caching_oracle_is_consistent_under_concurrency() {
        let o = CachingOracle::new(FnOracle::new(|i: &[u8]| i.len().is_multiple_of(2)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let o = &o;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let input = i.to_le_bytes();
                        assert_eq!(o.accepts(&input), input.len() % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(o.unique_queries(), 200);
        assert_eq!(o.total_queries(), 800);
    }

    #[test]
    fn oracle_by_reference_works() {
        fn takes_oracle(o: &dyn Oracle) -> bool {
            o.accepts(b"y")
        }
        let o = FnOracle::new(|i: &[u8]| i == b"y");
        assert!(takes_oracle(&o));
        // The blanket &O impl also composes.
        let r = &o;
        assert!(r.accepts(b"y"));
    }

    #[test]
    fn oracle_impls_are_send_sync() {
        fn assert_oracle<T: Oracle + Send + Sync>() {}
        assert_oracle::<FnOracle<fn(&[u8]) -> bool>>();
        assert_oracle::<CachingOracle<FnOracle<fn(&[u8]) -> bool>>>();
        assert_oracle::<ProcessOracle>();
        assert_oracle::<PooledProcessOracle>();
        assert_oracle::<Box<dyn Oracle>>();
        assert_oracle::<Arc<dyn Oracle>>();
        assert_oracle::<&dyn Oracle>();
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_stdin_true_false() {
        // `grep -q x` exits 0 iff stdin contains an "x".
        let o = ProcessOracle::new("grep").arg("-q").arg("x");
        assert!(o.accepts(b"axb"));
        assert!(!o.accepts(b"abc"));
        assert_eq!(o.failure_count(), 0, "nonzero exit is a verdict, not a failure");
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_mode() {
        // `grep -q pat FILE` with the file substituted for {}.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile);
        assert!(o.accepts(b"hay needle stack"));
        assert!(!o.accepts(b"just hay"));
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_tempfile_concurrent_queries_do_not_collide() {
        // Identical-length inputs hammered from many threads: under the old
        // pointer-based temp naming these raced on the same file.
        let o = ProcessOracle::new("grep")
            .arg("-q")
            .arg("needle")
            .arg("{}")
            .input_mode(InputMode::TempFile)
            .max_concurrent(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let o = &o;
                s.spawn(move || {
                    for _ in 0..5 {
                        if t % 2 == 0 {
                            assert!(o.accepts(b"needle--"), "thread {t}");
                        } else {
                            assert!(!o.accepts(b"haystack"), "thread {t}");
                        }
                    }
                });
            }
        });
    }

    #[cfg(unix)]
    #[test]
    fn process_oracle_missing_program_rejects_and_counts_failure() {
        let o = ProcessOracle::new("/nonexistent/program/glade");
        assert!(!o.accepts(b"anything"));
        assert_eq!(o.failure_count(), 1);
        // Clones share the counter.
        let clone = o.clone();
        assert!(!clone.accepts(b"again"));
        assert_eq!(o.failure_count(), 2);
    }

    #[test]
    fn pooled_oracle_missing_program_degrades_and_counts() {
        let o = PooledProcessOracle::new("/nonexistent/program/glade-worker");
        assert!(!o.accepts(b"anything"));
        assert!(!o.accepts(b"more"));
        assert_eq!(o.failure_count(), 2, "no verdict could be obtained");
        assert_eq!(o.respawn_count(), 0, "nothing ever lived to crash");
    }

    #[cfg(unix)]
    #[test]
    fn pooled_oracle_missing_program_uses_fallback() {
        // Pooled spawn always fails; the spawn-per-query fallback (grep on
        // stdin) still produces real verdicts and no failure is recorded.
        let o = PooledProcessOracle::new("/nonexistent/program/glade-worker")
            .fallback(ProcessOracle::new("grep").arg("-q").arg("x"));
        assert!(o.accepts(b"axb"));
        assert!(!o.accepts(b"abc"));
        assert_eq!(o.failure_count(), 0, "fallback verdicts are real");
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_configuration() {
        let a = ProcessOracle::new("prog").arg("-x").arg("{}").input_mode(InputMode::TempFile);
        let b = ProcessOracle::new("prog").arg("-x").arg("{}").input_mode(InputMode::TempFile);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), ProcessOracle::new("prog").arg("-y").fingerprint());
        assert_ne!(a.fingerprint(), ProcessOracle::new("other").fingerprint());
        let p = PooledProcessOracle::new("prog").arg("-x");
        assert_eq!(p.fingerprint(), PooledProcessOracle::new("prog").arg("-x").fingerprint());
        assert_ne!(p.fingerprint(), a.fingerprint(), "pooled and spawn modes are distinct");
        // Pool size affects throughput only, never verdicts.
        assert_eq!(
            p.fingerprint(),
            PooledProcessOracle::new("prog").arg("-x").pool_size(7).fingerprint()
        );
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Semaphore::new(2);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (sem, active, peak) = (&sem, &active, &peak);
                s.spawn(move || {
                    let _g = sem.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }
}
