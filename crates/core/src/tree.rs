//! The internal representation of GLADE's current language.
//!
//! Phase one (Section 4) maintains an annotated regular expression; we
//! represent it as a tree mirroring the meta-grammar `C_regex`:
//!
//! ```text
//! Node ::= Const(byte-classes, contexts)                 Trep ::= β
//!        | Rep { pre, star: (inner, ctx, original), rest }
//!                                                        Trep ::= β T_alt* T_rep
//!        | Alt { left, right }                           Talt ::= Trep + Talt
//! ```
//!
//! Every `Const` carries the contexts `(γ, δ)` needed for character
//! generalization (Section 6.2); every star carries the context and
//! representative substring needed to build phase-two merge checks
//! (Section 5.3). The tree converts losslessly to a [`Regex`] (the phase-one
//! result) and — given a star equivalence relation from phase two — to a
//! [`Grammar`].

use glade_grammar::cfg::{GrammarBuilder, NtId, Sym};
use glade_grammar::{CharClass, Grammar, Regex};

/// A check context `(γ, δ)`: strings wrapped around a residual to form a
/// complete membership query (Section 4.3, property (1)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Context {
    pub before: Vec<u8>,
    pub after: Vec<u8>,
}

impl Context {
    /// The root context `(ε, ε)` of the seed input.
    pub fn root() -> Self {
        Context { before: Vec::new(), after: Vec::new() }
    }

    /// Builds the full check string `γ·ρ·δ`.
    ///
    /// The synthesis hot paths describe checks as `CheckSpec` segment lists
    /// instead; this allocating form remains for tests and diagnostics.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn wrap(&self, residual: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.before.len() + residual.len() + self.after.len());
        self.wrap_into(residual, &mut out);
        out
    }

    /// Appends `γ·ρ·δ` to `out` without allocating a fresh buffer.
    ///
    /// Note: the synthesis hot paths do their allocation-free construction
    /// through `CheckSpec::write_into` in `runner.rs` (segments, one shared
    /// scratch buffer); this method is the same idea for callers that
    /// already hold a contiguous residual.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn wrap_into(&self, residual: &[u8], out: &mut Vec<u8>) {
        out.reserve(self.before.len() + residual.len() + self.after.len());
        out.extend_from_slice(&self.before);
        out.extend_from_slice(residual);
        out.extend_from_slice(&self.after);
    }

    /// Derives `(γ·x, y·δ)`.
    pub fn narrowed(&self, x: &[u8], y: &[u8]) -> Context {
        let mut before = self.before.clone();
        before.extend_from_slice(x);
        let mut after = Vec::with_capacity(y.len() + self.after.len());
        after.extend_from_slice(y);
        after.extend_from_slice(&self.after);
        Context { before, after }
    }
}

/// A terminal run: one byte class per original byte position.
#[derive(Debug, Clone)]
pub(crate) struct ConstNode {
    /// Post-character-generalization classes (singletons before that phase).
    pub classes: Vec<CharClass>,
    /// The original bytes from the seed input.
    pub original: Vec<u8>,
    /// Contexts for character-generalization checks; a candidate byte must
    /// pass the check in every context.
    pub contexts: Vec<Context>,
}

impl ConstNode {
    pub fn new(original: &[u8], contexts: Vec<Context>) -> Self {
        ConstNode {
            classes: original.iter().map(|&b| CharClass::single(b)).collect(),
            original: original.to_vec(),
            contexts,
        }
    }
}

/// A starred subexpression `( inner )*` created by a repetition
/// generalization step, with the metadata phase two needs.
#[derive(Debug, Clone)]
pub(crate) struct StarNode {
    /// Stable id used as the merge-pair key in phase two.
    pub id: usize,
    /// Generalization of the repeated substring `α2`.
    pub inner: Node,
    /// Context `(γ·α1, α3·δ)` of the starred subexpression.
    pub ctx: Context,
    /// The original substring `α2`; its doubling `α2 α2` is the phase-two
    /// residual (Section 5.3).
    pub original: Vec<u8>,
}

impl StarNode {
    /// The phase-two residual `α2 α2 ∈ L(R) \ {α2}` as an owned string
    /// (the merge phase itself uses the borrowed [`StarNode::residual_parts`]).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn residual(&self) -> Vec<u8> {
        let mut r = self.original.clone();
        r.extend_from_slice(&self.original);
        r
    }

    /// The residual as borrowed segments (`[α2, α2]`), for building merge
    /// checks without materializing the doubled string.
    pub fn residual_parts(&self) -> [&[u8]; 2] {
        [&self.original, &self.original]
    }
}

/// A repetition generalization `α1 (inner)* rest`.
#[derive(Debug, Clone)]
pub(crate) struct RepNode {
    /// The literal prefix `α1` (possibly empty), character-generalizable.
    pub pre: ConstNode,
    pub star: StarNode,
    /// Generalization of `α3`.
    pub rest: Node,
}

/// An alternation generalization `left + right`.
#[derive(Debug, Clone)]
pub(crate) struct AltNode {
    pub left: Node,
    pub right: Node,
}

/// One node of the annotated-language tree.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Const(ConstNode),
    Rep(Box<RepNode>),
    Alt(Box<AltNode>),
}

impl Node {
    /// Converts to the equivalent regular expression (the phase-one view).
    pub fn to_regex(&self) -> Regex {
        match self {
            Node::Const(c) => {
                Regex::concat(c.classes.iter().map(|cls| Regex::class(*cls)).collect())
            }
            Node::Rep(r) => Regex::concat(vec![
                Regex::concat(r.pre.classes.iter().map(|cls| Regex::class(*cls)).collect()),
                Regex::star(r.star.inner.to_regex()),
                r.rest.to_regex(),
            ]),
            Node::Alt(a) => Regex::alt(vec![a.left.to_regex(), a.right.to_regex()]),
        }
    }

    /// Visits every `ConstNode` immutably, in the same order as
    /// [`Node::visit_consts_mut`] — character generalization plans its
    /// probes with this visit and applies the verdicts with the mutable
    /// one, pairing consts by ordinal.
    pub fn visit_consts<'a>(&'a self, f: &mut impl FnMut(&'a ConstNode)) {
        match self {
            Node::Const(c) => f(c),
            Node::Rep(r) => {
                f(&r.pre);
                r.star.inner.visit_consts(f);
                r.rest.visit_consts(f);
            }
            Node::Alt(a) => {
                a.left.visit_consts(f);
                a.right.visit_consts(f);
            }
        }
    }

    /// Visits every `ConstNode` mutably (including `Rep` prefixes).
    pub fn visit_consts_mut(&mut self, f: &mut impl FnMut(&mut ConstNode)) {
        match self {
            Node::Const(c) => f(c),
            Node::Rep(r) => {
                f(&mut r.pre);
                r.star.inner.visit_consts_mut(f);
                r.rest.visit_consts_mut(f);
            }
            Node::Alt(a) => {
                a.left.visit_consts_mut(f);
                a.right.visit_consts_mut(f);
            }
        }
    }

    /// Collects references to every star node, in id order of discovery.
    pub fn collect_stars<'a>(&'a self, out: &mut Vec<&'a StarNode>) {
        match self {
            Node::Const(_) => {}
            Node::Rep(r) => {
                out.push(&r.star);
                r.star.inner.collect_stars(out);
                r.rest.collect_stars(out);
            }
            Node::Alt(a) => {
                a.left.collect_stars(out);
                a.right.collect_stars(out);
            }
        }
    }

    /// Number of nodes (a size measure for statistics).
    pub fn size(&self) -> usize {
        match self {
            Node::Const(_) => 1,
            Node::Rep(r) => 2 + r.star.inner.size() + r.rest.size(),
            Node::Alt(a) => 1 + a.left.size() + a.right.size(),
        }
    }
}

/// Simple union-find used for phase-two star merging.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    pub fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        let (keep, drop) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent[drop] = keep;
    }
}

/// Builds the final context-free grammar from the per-seed trees and the
/// star equivalence relation computed by phase two (Section 5.1–5.2).
///
/// Each star class `c` becomes a nonterminal with the left-recursive
/// expansion `S_c → ε | S_c Body_i` for every class member `i`; equating
/// nonterminals is thus realized by pooling the member bodies, exactly as in
/// the paper's "replace all occurrences of A'_i and A'_j with A".
pub(crate) fn trees_to_grammar(trees: &[Node], merges: &mut UnionFind) -> Grammar {
    let mut b = GrammarBuilder::new();
    let start = b.nt("S");

    // Pass 1: one nonterminal per star class.
    let mut stars: Vec<&StarNode> = Vec::new();
    for t in trees {
        t.collect_stars(&mut stars);
    }
    let mut class_nt: std::collections::HashMap<usize, NtId> = std::collections::HashMap::new();
    for s in &stars {
        let class = merges.find(s.id);
        class_nt.entry(class).or_insert_with(|| b.nt(&format!("R{class}")));
    }

    // Pass 2: productions.
    fn syms(
        node: &Node,
        b: &mut GrammarBuilder,
        merges: &mut UnionFind,
        class_nt: &std::collections::HashMap<usize, NtId>,
        alt_counter: &mut usize,
    ) -> Vec<Sym> {
        match node {
            Node::Const(c) => c.classes.iter().map(|cls| Sym::Class(*cls)).collect(),
            Node::Rep(r) => {
                let mut out: Vec<Sym> = r.pre.classes.iter().map(|cls| Sym::Class(*cls)).collect();
                let class = merges.find(r.star.id);
                out.push(Sym::Nt(class_nt[&class]));
                out.extend(syms(&r.rest, b, merges, class_nt, alt_counter));
                out
            }
            Node::Alt(_) => {
                // Collect the right-spine branches into one nonterminal.
                let mut branches: Vec<&Node> = Vec::new();
                let mut cur = node;
                while let Node::Alt(a) = cur {
                    branches.push(&a.left);
                    cur = &a.right;
                }
                branches.push(cur);
                *alt_counter += 1;
                let nt = b.nt(&format!("A{alt_counter}"));
                let mut bodies: Vec<Vec<Sym>> =
                    branches.iter().map(|br| syms(br, b, merges, class_nt, alt_counter)).collect();
                // Character generalization can widen distinct branches to
                // identical byte classes; dedup to keep sampling uniform.
                let mut kept = Vec::new();
                bodies.retain(|body| {
                    let fresh = !kept.contains(body);
                    if fresh {
                        kept.push(body.clone());
                    }
                    fresh
                });
                for body in bodies {
                    b.prod(nt, body);
                }
                vec![Sym::Nt(nt)]
            }
        }
    }

    let mut alt_counter = 0usize;

    // Star-class productions. Each class nonterminal keeps the paper's
    // two-production star shape `S → ε | S Body` (Section 5.1's A'_i
    // expansion), with the pooled member bodies behind a single body
    // nonterminal when the class has several members. This matters for
    // sampling (Section 8.1): a uniform production choice then continues a
    // repetition with probability 1/2 regardless of how many merges landed
    // in the class. Identical bodies (e.g. two alternation branches that
    // character generalization widened to the same classes) are deduped.
    let mut class_bodies: std::collections::HashMap<NtId, Vec<Vec<Sym>>> =
        std::collections::HashMap::new();
    for s in &stars {
        let class = merges.find(s.id);
        let nt = class_nt[&class];
        let body = syms(&s.inner, &mut b, &mut *merges, &class_nt, &mut alt_counter);
        let bodies = class_bodies.entry(nt).or_default();
        if !bodies.contains(&body) {
            bodies.push(body);
        }
    }
    // Emit classes in nonterminal order: HashMap iteration order is
    // per-instance random, and it would otherwise decide which class gets
    // its `B` body nonterminal allocated first — making the grammar's
    // byte serialization differ between identical runs.
    let mut class_list: Vec<(NtId, Vec<Vec<Sym>>)> = class_bodies.into_iter().collect();
    class_list.sort_by_key(|&(nt, _)| nt.index());
    for (nt, mut bodies) in class_list {
        b.prod(nt, vec![]); // ε
        if bodies.len() == 1 {
            let mut rhs = vec![Sym::Nt(nt)];
            rhs.extend(bodies.pop().expect("len 1"));
            b.prod(nt, rhs);
        } else {
            let body_nt = b.nt(&format!("B{}", nt.index()));
            b.prod(nt, vec![Sym::Nt(nt), Sym::Nt(body_nt)]);
            for body in bodies.drain(..) {
                b.prod(body_nt, body);
            }
        }
    }
    // A class may end up with no members only if `stars` was empty for it;
    // class_nt entries always originate from stars, so every class got its
    // ε production above.

    // Start productions: one per seed tree. Distinct seeds can collapse to
    // the same production once their stars merge into shared classes;
    // dedup those too.
    let mut start_bodies: Vec<Vec<Sym>> = Vec::new();
    for t in trees {
        let body = syms(t, &mut b, merges, &class_nt, &mut alt_counter);
        if !start_bodies.contains(&body) {
            start_bodies.push(body);
        }
    }
    for body in start_bodies {
        b.prod(start, body);
    }

    b.build(start).expect("internally constructed grammar is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use glade_grammar::Earley;

    fn const_node(s: &[u8]) -> Node {
        Node::Const(ConstNode::new(s, vec![Context::root()]))
    }

    /// Hand-builds the paper's running-example tree:
    /// ( "<a>" (h + i)* "</a>" )*.
    fn running_example_tree() -> Node {
        let hi = Node::Alt(Box::new(AltNode { left: const_node(b"h"), right: const_node(b"i") }));
        let inner_rep = Node::Rep(Box::new(RepNode {
            pre: ConstNode::new(b"<a>", vec![Context::root()]),
            star: StarNode {
                id: 1,
                inner: hi,
                ctx: Context { before: b"<a>".to_vec(), after: b"</a>".to_vec() },
                original: b"hi".to_vec(),
            },
            rest: const_node(b"</a>"),
        }));
        Node::Rep(Box::new(RepNode {
            pre: ConstNode::new(b"", vec![Context::root()]),
            star: StarNode {
                id: 0,
                inner: inner_rep,
                ctx: Context::root(),
                original: b"<a>hi</a>".to_vec(),
            },
            rest: const_node(b""),
        }))
    }

    #[test]
    fn to_regex_matches_expected_language() {
        let t = running_example_tree();
        let r = t.to_regex();
        assert!(r.is_match(b""));
        assert!(r.is_match(b"<a>hi</a>"));
        assert!(r.is_match(b"<a>ih</a><a></a>"));
        assert!(!r.is_match(b"<a><a></a></a>")); // no recursion without merging
    }

    #[test]
    fn grammar_without_merges_equals_regex_language() {
        let t = running_example_tree();
        let mut uf = UnionFind::new(2);
        let g = trees_to_grammar(std::slice::from_ref(&t), &mut uf);
        let e = Earley::new(&g);
        let r = t.to_regex();
        for s in [
            &b""[..],
            b"<a>hi</a>",
            b"<a></a>",
            b"<a>hhii</a><a>i</a>",
            b"<a><a></a></a>",
            b"<a>hi</a",
            b"x",
        ] {
            assert_eq!(e.accepts(s), r.is_match(s), "disagree on {:?}", s);
        }
    }

    #[test]
    fn grammar_with_merges_adds_recursion() {
        let t = running_example_tree();
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let g = trees_to_grammar(std::slice::from_ref(&t), &mut uf);
        let e = Earley::new(&g);
        // Regular members still accepted.
        assert!(e.accepts(b""));
        assert!(e.accepts(b"<a>hi</a>"));
        // Merging allows nesting (matching-parentheses behavior, Prop 5.1)…
        assert!(e.accepts(b"<a><a>hi</a><a>hi</a></a>"));
        // …and top-level letters (R_hi substituted at the root).
        assert!(e.accepts(b"hihi"));
        // Still no overgeneralization to unbalanced strings.
        assert!(!e.accepts(b"<a>hi"));
    }

    #[test]
    fn star_residual_doubles_original() {
        let t = running_example_tree();
        let mut stars = Vec::new();
        t.collect_stars(&mut stars);
        assert_eq!(stars.len(), 2);
        assert_eq!(stars[0].residual(), b"<a>hi</a><a>hi</a>".to_vec());
        assert_eq!(stars[1].residual(), b"hihi".to_vec());
    }

    #[test]
    fn context_wrap_and_narrow() {
        let ctx = Context { before: b"<a>".to_vec(), after: b"</a>".to_vec() };
        assert_eq!(ctx.wrap(b"hi"), b"<a>hi</a>".to_vec());
        let n = ctx.narrowed(b"h", b"x");
        assert_eq!(n.before, b"<a>h".to_vec());
        assert_eq!(n.after, b"x</a>".to_vec());
    }

    #[test]
    fn multiple_trees_alternate_at_start() {
        let t1 = const_node(b"one");
        let t2 = const_node(b"two");
        let mut uf = UnionFind::new(0);
        let g = trees_to_grammar(&[t1, t2], &mut uf);
        let e = Earley::new(&g);
        assert!(e.accepts(b"one"));
        assert!(e.accepts(b"two"));
        assert!(!e.accepts(b"onetwo"));
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(0, 3);
        uf.union(3, 2);
        assert_eq!(uf.find(2), uf.find(0));
        assert_ne!(uf.find(1), uf.find(0));
    }

    #[test]
    fn visit_consts_covers_rep_prefix() {
        let mut t = running_example_tree();
        let mut count = 0;
        t.visit_consts_mut(&mut |_| count += 1);
        // pre "<a>", pre "", rest "</a>", rest "", "h", "i".
        assert_eq!(count, 6);
    }
}
