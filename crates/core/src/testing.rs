//! Reference oracles for tests, examples, and documentation.
//!
//! The paper's running example (Figures 1–3) is exercised by nearly every
//! layer of this workspace; before this module the recursive-descent
//! membership predicate was copied verbatim into each test file. The
//! canonical definitions live here instead. (`glade_targets::languages::
//! toy_xml` defines the same language grammar-side, but `glade-core` cannot
//! depend on `glade-targets` without a dependency cycle.)

/// Membership in the paper's XML-like running-example language
/// `A → (a..z | <a>A</a>)*` (Figure 1).
///
/// # Examples
///
/// ```
/// use glade_core::testing::xml_like;
///
/// assert!(xml_like(b""));
/// assert!(xml_like(b"<a>hi</a>"));
/// assert!(xml_like(b"<a><a>deep</a></a>"));
/// assert!(!xml_like(b"<a>hi</a"));
/// assert!(!xml_like(b"<a>HI</a>"));
/// ```
pub fn xml_like(input: &[u8]) -> bool {
    fn parse(mut s: &[u8]) -> Option<&[u8]> {
        loop {
            if s.first().is_some_and(|b| b.is_ascii_lowercase()) {
                s = &s[1..];
            } else if s.starts_with(b"<a>") {
                s = parse(&s[3..])?.strip_prefix(b"</a>")?;
            } else {
                return Some(s);
            }
        }
    }
    parse(input).is_some_and(|r| r.is_empty())
}

/// The Section 7 extension of [`xml_like`]: the same language plus the
/// self-closing tag `<a/>`, used by the paper's greedy-limitation and
/// two-seed-recovery discussion.
pub fn xml_like_with_self_closing(input: &[u8]) -> bool {
    fn parse(mut s: &[u8]) -> Option<&[u8]> {
        loop {
            if s.first().is_some_and(|b| b.is_ascii_lowercase()) {
                s = &s[1..];
            } else if s.starts_with(b"<a/>") {
                s = &s[4..];
            } else if s.starts_with(b"<a>") {
                s = parse(&s[3..])?.strip_prefix(b"</a>")?;
            } else {
                return Some(s);
            }
        }
    }
    parse(input).is_some_and(|r| r.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_like_matches_figure1() {
        for member in [&b""[..], b"xyz", b"<a>hi</a>", b"<a><a>a</a><a>b</a>cc</a>"] {
            assert!(xml_like(member), "{:?}", String::from_utf8_lossy(member));
        }
        for nonmember in [&b"<a>"[..], b"</a>", b"<b>x</b>", b"<a>HI</a>", b"1"] {
            assert!(!xml_like(nonmember), "{:?}", String::from_utf8_lossy(nonmember));
        }
    }

    #[test]
    fn self_closing_variant_extends_the_language() {
        assert!(xml_like_with_self_closing(b"<a/>"));
        assert!(xml_like_with_self_closing(b"<a><a/>hi</a>"));
        assert!(!xml_like(b"<a/>"));
        assert!(!xml_like_with_self_closing(b"<a/"));
    }
}
