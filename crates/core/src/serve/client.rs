//! A blocking `glade-serve v2` client.
//!
//! [`ServeClient`] drives one campaign over a unix socket: connect, open
//! (or [`resume`](ServeClient::resume) a journaled campaign after a
//! server restart), then any number of
//! [`synthesize`](ServeClient::synthesize) calls, each streaming live
//! [`SynthEvent`](crate::SynthEvent)s into a callback and returning the
//! final grammar text plus run statistics. A [`CancelHandle`] (a second
//! handle on the same socket) can cancel the campaign from another thread
//! while `synthesize` is blocked reading the event stream.

use super::protocol::{
    decode_open_ack, decode_result, encode_frame, encode_resume, encode_seeds_body, read_frame,
    OpenRequest, ProtocolError, SERVE_PROTOCOL, TAG_CANCEL, TAG_CLOSE, TAG_ERROR, TAG_EVENT,
    TAG_HELLO, TAG_HELLO_ACK, TAG_OPEN, TAG_OPEN_ACK, TAG_RESULT, TAG_RESUME, TAG_SEEDS,
};
use crate::events::SynthEvent;
use crate::synth::SynthesisStats;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// The outcome of one server-side synthesis run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The grammar over all seeds submitted so far, in the canonical text
    /// form of [`glade_grammar::grammar_to_text`] — byte-identical to a
    /// local run on the same seeds.
    pub grammar_text: String,
    /// The run's statistics, as measured server-side.
    pub stats: SynthesisStats,
}

/// Cancels a campaign mid-run from another thread.
///
/// Obtained from [`ServeClient::cancel_handle`]; holds its own handle on
/// the campaign's socket, so it can write a `CANCEL` frame while the
/// client thread is blocked reading the event stream. Like a local
/// [`CancelToken`](crate::CancelToken), cancellation is sticky for the
/// campaign: the in-flight run still returns a degraded `RESULT` whose
/// grammar contains every seed.
#[derive(Debug)]
pub struct CancelHandle {
    stream: UnixStream,
}

impl CancelHandle {
    /// Sends the `CANCEL` frame. Idempotent.
    pub fn cancel(&mut self) -> std::io::Result<()> {
        let mut frame = Vec::new();
        encode_frame(TAG_CANCEL, b"", &mut frame);
        self.stream.write_all(&frame)
    }
}

/// A connected `glade-serve v2` client driving one campaign.
#[derive(Debug)]
pub struct ServeClient {
    stream: UnixStream,
    campaign: Option<(u32, String)>,
}

impl ServeClient {
    /// Connects to a server socket and exchanges the protocol banner.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut stream = UnixStream::connect(socket)?;
        let mut frame = Vec::new();
        encode_frame(TAG_HELLO, SERVE_PROTOCOL, &mut frame);
        stream.write_all(&frame)?;
        let (tag, body) = read_frame(&mut stream).map_err(std::io::Error::from)?;
        match tag {
            TAG_HELLO_ACK if body == SERVE_PROTOCOL => Ok(ServeClient { stream, campaign: None }),
            TAG_ERROR => Err(server_error(&body)),
            _ => {
                Err(ProtocolError::Malformed(format!("unexpected frame {tag:#04x} to HELLO"))
                    .into())
            }
        }
    }

    /// Connects like [`connect`](ServeClient::connect), retrying while the
    /// socket does not exist or refuses connections (a restarting server).
    ///
    /// Up to `retries` re-attempts after the first failure, spaced by the
    /// engine's standard backoff curve seeded from `backoff_base`
    /// (deterministic exponential growth with bounded jitter — the same
    /// schedule the pooled oracle uses for worker respawns). Other errors
    /// (including a protocol mismatch) fail immediately; exhaustion
    /// returns the last connect error annotated with the attempt count.
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        retries: u32,
        backoff_base: Duration,
    ) -> std::io::Result<Self> {
        let socket = socket.as_ref();
        // Stable per-path salt so concurrent clients de-synchronize.
        let salt =
            socket.as_os_str().as_encoded_bytes().iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            });
        let mut attempt: u32 = 0;
        loop {
            match Self::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e)
                    if attempt < retries
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused
                        ) =>
                {
                    attempt += 1;
                    // strikes starts at 2 so the very first retry already
                    // waits one base period.
                    if let Some(delay) =
                        crate::oracle::retry_backoff_delay(backoff_base, salt, attempt + 1)
                    {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) if attempt > 0 => {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("{e} (after {} connect attempts)", attempt + 1),
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Resumes a journaled campaign interrupted by a server crash or
    /// restart (`glade-serve v2`); returns the campaign id and oracle
    /// fingerprint, exactly like [`open`](ServeClient::open).
    ///
    /// The server replays the campaign's journaled seed batches over its
    /// warm persistent cache; call
    /// [`synthesize`](ServeClient::synthesize)`(&[], ..)` (an empty
    /// batch... or any new batch) afterwards, or read the replay's result
    /// first via [`resume_result`](ServeClient::resume_result).
    pub fn resume(&mut self, campaign: u32) -> std::io::Result<(u32, String)> {
        if self.campaign.is_some() {
            return Err(std::io::Error::other("campaign already open"));
        }
        let mut frame = Vec::new();
        encode_frame(TAG_RESUME, &encode_resume(campaign), &mut frame);
        self.stream.write_all(&frame)?;
        let (tag, body) = read_frame(&mut self.stream).map_err(std::io::Error::from)?;
        match tag {
            TAG_OPEN_ACK => {
                let (id, fingerprint) = decode_open_ack(&body).map_err(std::io::Error::from)?;
                self.campaign = Some((id, fingerprint.clone()));
                Ok((id, fingerprint))
            }
            TAG_ERROR => Err(server_error(&body)),
            _ => {
                Err(ProtocolError::Malformed(format!("unexpected frame {tag:#04x} to RESUME"))
                    .into())
            }
        }
    }

    /// Reads the replay outcome a [`resume`](ServeClient::resume) leaves
    /// in flight: blocks until the server's replay `RESULT`, feeding
    /// streamed events to `on_event`. The grammar is byte-identical to an
    /// uninterrupted run over the campaign's journaled seed batches.
    pub fn resume_result(
        &mut self,
        on_event: impl FnMut(SynthEvent),
    ) -> std::io::Result<RunOutcome> {
        if self.campaign.is_none() {
            return Err(std::io::Error::other("no campaign open"));
        }
        self.read_run_outcome(on_event)
    }

    /// Opens the connection's campaign; returns the campaign id and the
    /// oracle fingerprint.
    pub fn open(&mut self, request: &OpenRequest) -> std::io::Result<(u32, String)> {
        if self.campaign.is_some() {
            return Err(std::io::Error::other("campaign already open"));
        }
        let mut frame = Vec::new();
        encode_frame(TAG_OPEN, &request.to_body(), &mut frame);
        self.stream.write_all(&frame)?;
        let (tag, body) = read_frame(&mut self.stream).map_err(std::io::Error::from)?;
        match tag {
            TAG_OPEN_ACK => {
                let (id, fingerprint) = decode_open_ack(&body).map_err(std::io::Error::from)?;
                self.campaign = Some((id, fingerprint.clone()));
                Ok((id, fingerprint))
            }
            TAG_ERROR => Err(server_error(&body)),
            _ => {
                Err(ProtocolError::Malformed(format!("unexpected frame {tag:#04x} to OPEN")).into())
            }
        }
    }

    /// The open campaign's id and oracle fingerprint.
    pub fn campaign(&self) -> Option<(u32, &str)> {
        self.campaign.as_ref().map(|(id, fp)| (*id, fp.as_str()))
    }

    /// A handle that can cancel this campaign from another thread.
    pub fn cancel_handle(&self) -> std::io::Result<CancelHandle> {
        Ok(CancelHandle { stream: self.stream.try_clone()? })
    }

    /// Submits a seed batch (empty = re-synthesize from current state) and
    /// blocks until the run's `RESULT`, feeding each streamed event to
    /// `on_event` as it arrives. Unknown event tags from a newer server
    /// are skipped.
    ///
    /// A run the server rejects (e.g. a seed its oracle rejects) returns
    /// an [`InvalidData`](std::io::ErrorKind::InvalidData) error carrying
    /// the server's message; the campaign stays usable.
    pub fn synthesize(
        &mut self,
        seeds: &[Vec<u8>],
        on_event: impl FnMut(SynthEvent),
    ) -> std::io::Result<RunOutcome> {
        if self.campaign.is_none() {
            return Err(std::io::Error::other("no campaign open"));
        }
        let body = encode_seeds_body(seeds).map_err(std::io::Error::from)?;
        let mut frame = Vec::new();
        encode_frame(TAG_SEEDS, &body, &mut frame);
        self.stream.write_all(&frame)?;
        self.read_run_outcome(on_event)
    }

    /// Reads event frames until the in-flight run's `RESULT` (or `ERROR`).
    fn read_run_outcome(
        &mut self,
        mut on_event: impl FnMut(SynthEvent),
    ) -> std::io::Result<RunOutcome> {
        loop {
            let (tag, payload) = read_frame(&mut self.stream).map_err(std::io::Error::from)?;
            match tag {
                TAG_EVENT => {
                    let line = std::str::from_utf8(&payload).map_err(|_| {
                        std::io::Error::from(ProtocolError::Malformed(
                            "EVENT line is not UTF-8".into(),
                        ))
                    })?;
                    match SynthEvent::from_wire_line(line) {
                        Ok(Some(event)) => on_event(event),
                        Ok(None) => {} // newer server's event kind: skip
                        Err(e) => {
                            return Err(ProtocolError::Malformed(e.to_string()).into());
                        }
                    }
                }
                TAG_RESULT => {
                    let (stats, grammar_text) =
                        decode_result(&payload).map_err(std::io::Error::from)?;
                    return Ok(RunOutcome { grammar_text, stats });
                }
                TAG_ERROR => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        String::from_utf8_lossy(&payload).into_owned(),
                    ));
                }
                other => {
                    return Err(ProtocolError::Malformed(format!(
                        "unexpected frame {other:#04x} during run"
                    ))
                    .into());
                }
            }
        }
    }

    /// Gracefully ends the session: the server finishes flushing and
    /// closes the socket.
    pub fn close(mut self) -> std::io::Result<()> {
        let mut frame = Vec::new();
        encode_frame(TAG_CLOSE, b"", &mut frame);
        self.stream.write_all(&frame)?;
        // Wait for the server's close so queued output is never lost to a
        // racing disconnect.
        let mut sink = [0u8; 256];
        use std::io::Read;
        while matches!(self.stream.read(&mut sink), Ok(n) if n > 0) {}
        Ok(())
    }
}

fn server_error(body: &[u8]) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, String::from_utf8_lossy(body).into_owned())
}
