//! The `glade serve` daemon: accept loop, tenant state, campaign threads.
//!
//! See the [module docs](super) for the architecture and wire format. The
//! accept loop here is the only code that touches client sockets; it is
//! single-threaded and never blocks on a peer (nonblocking fds multiplexed
//! with `poll(2)`, the same discipline as the pooled oracle's batched
//! dispatcher). Campaigns run on their own threads and communicate with
//! the loop through channels plus a wake pipe.

use super::journal::{Journal, JournaledCampaign};
use super::protocol::{
    decode_resume, decode_seeds_body, drain_frames, encode_frame, encode_open_ack, encode_result,
    OpenRequest, SERVE_PROTOCOL, SERVE_PROTOCOL_V1, TAG_CANCEL, TAG_CLOSE, TAG_ERROR, TAG_EVENT,
    TAG_HELLO, TAG_HELLO_ACK, TAG_OPEN, TAG_OPEN_ACK, TAG_RESULT, TAG_RESUME, TAG_SEEDS,
};
use super::scheduler::{FairScheduler, ScheduledOracle};
use crate::events::{CancelToken, SynthEvent, SynthesisObserver};
use crate::oracle::{sys, Oracle};
use crate::persist::CacheFormat;
use crate::session::{GladeBuilder, Session};
use crate::synth::SynthesisStats;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Creates the oracle behind a campaign's `oracle <spec>` line.
///
/// The factory decides what specs mean; the bundled CLI accepts
/// `target:<name>` (an in-process built-in) and `cmd:<command line>` (a
/// [`PooledProcessOracle`](crate::PooledProcessOracle) worker command).
/// On success it returns the shared oracle plus its *fingerprint* — the
/// stable identity string used to namespace persistent caches and to
/// validate cache snapshots (see
/// [`GladeBuilder::oracle_fingerprint`](crate::GladeBuilder::oracle_fingerprint)).
///
/// Campaigns naming the same spec share one oracle instance (and its
/// worker pool); the server serializes their access through the
/// [`FairScheduler`], so implementations need not add their own locking
/// beyond the ordinary [`Oracle`] thread-safety contract.
pub trait OracleFactory: Send + Sync {
    /// Creates (or fails to create) the oracle for `spec`.
    fn create(&self, spec: &str) -> Result<(Arc<dyn Oracle>, String), String>;
}

impl<F> OracleFactory for F
where
    F: Fn(&str) -> Result<(Arc<dyn Oracle>, String), String> + Send + Sync,
{
    fn create(&self, spec: &str) -> Result<(Arc<dyn Oracle>, String), String> {
        self(spec)
    }
}

/// How long a draining server waits for running campaigns before giving
/// up and cancelling them (overridable via [`ServeConfig::drain_timeout`]).
pub(crate) const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Default bound on a connection's queued outbound events (overridable
/// via [`ServeConfig::max_event_buffer`]).
pub(crate) const DEFAULT_MAX_EVENT_BUFFER: usize = 4096;

/// Soft cap on a connection's serialized output buffer: queued events move
/// from the bounded event queue into the byte buffer only while it is
/// below this, so a stalled reader backs events up into the (bounded,
/// coalescing) queue instead of an unbounded byte buffer.
const OUTBUF_SOFT_CAP: usize = 1 << 16;

/// Server-wide policy knobs.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Per-query deadline pushed onto every shared oracle at creation
    /// (tenants cannot override it — a shared pool's deadline is server
    /// policy, see [`ScheduledOracle`]).
    pub oracle_timeout: Option<Duration>,
    /// Directory for per-campaign persistent query caches, namespaced by
    /// oracle fingerprint, and for the campaign journal that makes open
    /// campaigns survive a restart. `None` disables persistence (and
    /// journaling) even for campaigns that request `cache on`.
    pub cache_dir: Option<PathBuf>,
    /// Default per-run distinct-query budget for campaigns that do not set
    /// `max-queries` themselves.
    pub default_max_queries: Option<usize>,
    /// How long a drain (first SIGTERM/SIGINT, or
    /// [`ServerHandle::drain`]) waits for running campaigns to finish and
    /// checkpoint before cancelling them. `None` means
    /// 10 seconds.
    pub drain_timeout: Option<Duration>,
    /// Bound on a connection's queued outbound events. A reader that falls
    /// further behind than this is demoted to result-only delivery (see
    /// the [module docs](super) on backpressure). `None` means 4096;
    /// `Some(0)` demotes every connection immediately (result-only
    /// service).
    pub max_event_buffer: Option<usize>,
    /// On-disk format for per-campaign cache checkpoints under
    /// [`cache_dir`](ServeConfig::cache_dir). `None` means
    /// [`CacheFormat::Binary`] — the indexed format loads in one header
    /// read plus on-demand record faults, which is what a daemon
    /// checkpointing after every batch wants. Loads always sniff the
    /// magic, so flipping the format (or pointing at a directory of old
    /// text snapshots) never loses a warm start.
    pub cache_format: Option<CacheFormat>,
}

/// What a campaign thread sends back to the accept loop.
enum Outbound {
    Event { line: String, tally: bool },
    Result { stats: SynthesisStats, grammar: String },
    Error(String),
}

/// Bounded, coalescing queue of outbound event lines for one connection.
///
/// Query-tally events (see [`SynthEvent::is_query_tally`]) collapse — a
/// newly arriving tally replaces a queued one, because only the latest
/// sample matters to a live progress reader — while lifecycle events are
/// never coalesced. If the queue still overflows `cap`, the connection is
/// *demoted*: everything queued is discarded, future events are dropped on
/// arrival, and the reader only receives `RESULT`/`ERROR` frames plus one
/// [`SynthEvent::EventsDropped`] notice before each result. Demotion is
/// sticky for the connection — a reader that stalled once has proven it
/// cannot keep up, and flapping between live and demoted would make the
/// stream's gaps unpredictable.
struct EventQueue {
    queue: VecDeque<String>,
    /// Whether the newest queued line is a coalescible tally.
    back_is_tally: bool,
    cap: usize,
    demoted: bool,
    dropped: usize,
}

impl EventQueue {
    fn new(cap: usize) -> Self {
        EventQueue { queue: VecDeque::new(), back_is_tally: false, cap, demoted: false, dropped: 0 }
    }

    fn push(&mut self, line: String, tally: bool) {
        if self.demoted {
            self.dropped += 1;
            return;
        }
        if tally && self.back_is_tally {
            if let Some(back) = self.queue.back_mut() {
                *back = line;
                return;
            }
        }
        if self.queue.len() >= self.cap {
            self.dropped += self.queue.len() + 1;
            self.queue.clear();
            self.back_is_tally = false;
            self.demoted = true;
            return;
        }
        self.queue.push_back(line);
        self.back_is_tally = tally;
    }

    fn pop(&mut self) -> Option<String> {
        let line = self.queue.pop_front();
        if self.queue.is_empty() {
            self.back_is_tally = false;
        }
        line
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Takes (and resets) the count of events lost to demotion.
    fn take_dropped(&mut self) -> usize {
        std::mem::take(&mut self.dropped)
    }
}

/// Wakes the accept loop out of its poll sleep. Writes never block (the
/// pipe is nonblocking); a full pipe already guarantees a pending wake.
#[derive(Clone)]
struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// Streams events straight into the outbound channel as wire lines.
struct StreamObserver {
    conn: u64,
    out: mpsc::Sender<(u64, Outbound)>,
    wake: WakeHandle,
}

impl SynthesisObserver for StreamObserver {
    fn on_event(&self, event: &SynthEvent) {
        let outbound =
            Outbound::Event { line: event.to_wire_line(), tally: event.is_query_tally() };
        let _ = self.out.send((self.conn, outbound));
        self.wake.wake();
    }
}

/// Accept-loop-side handle to one campaign thread.
struct CampaignSeat {
    cmd_tx: mpsc::Sender<Vec<Vec<u8>>>,
    cancel: CancelToken,
    /// The campaign's stable (journal-visible) id.
    id: u32,
    /// Index the next journaled seed batch gets (counts replayed batches).
    next_batch: usize,
    /// Seed batches forwarded minus results/errors delivered.
    pending: usize,
}

/// One client connection's state in the accept loop.
struct Conn {
    stream: UnixStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Bounded, coalescing buffer between campaign events and `outbuf`.
    events: EventQueue,
    greeted: bool,
    /// `CLOSE` received: stop reading, finish pending runs, flush, drop.
    closing: bool,
    /// Fatal error or EOF: flush what is queued, then drop.
    dead: bool,
    campaign: Option<CampaignSeat>,
}

impl Conn {
    fn new(stream: UnixStream, max_event_buffer: usize) -> Self {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            events: EventQueue::new(max_event_buffer),
            greeted: false,
            closing: false,
            dead: false,
            campaign: None,
        }
    }

    fn queue(&mut self, tag: u8, body: &[u8]) {
        encode_frame(tag, body, &mut self.outbuf);
    }

    /// Moves queued events into `outbuf` while it stays below the soft
    /// cap, so a healthy reader streams live while a stalled one backs
    /// events up into the bounded queue.
    fn pump_events(&mut self) {
        while self.outbuf.len() < OUTBUF_SOFT_CAP {
            let Some(line) = self.events.pop() else { break };
            self.queue(TAG_EVENT, line.as_bytes());
        }
    }

    /// Flushes *all* queued events ahead of a `RESULT`/`ERROR` frame (the
    /// queue is bounded, so this cannot balloon `outbuf`), and reports a
    /// demoted connection's losses with one `events-dropped` notice.
    fn drain_events_before_result(&mut self) {
        while let Some(line) = self.events.pop() {
            self.queue(TAG_EVENT, line.as_bytes());
        }
        let dropped = self.events.take_dropped();
        if dropped > 0 {
            let notice = SynthEvent::EventsDropped { dropped };
            self.queue(TAG_EVENT, notice.to_wire_line().as_bytes());
        }
    }

    /// Whether nothing is pending on this connection (drain-mode exit
    /// test): no running batch, nothing buffered, nothing queued.
    fn is_idle(&self) -> bool {
        self.outbuf.is_empty()
            && self.events.is_empty()
            && self.campaign.as_ref().is_none_or(|seat| seat.pending == 0)
    }

    fn fail(&mut self, message: &str) {
        self.queue(TAG_ERROR, message.as_bytes());
        self.dead = true;
    }

    /// Appends newly readable bytes to `inbuf`; `false` means EOF/error.
    fn fill(&mut self) -> bool {
        let mut buf = [0u8; 1 << 16];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Writes as much of `outbuf` as the socket accepts; `false` means the
    /// peer is gone.
    fn flush(&mut self) -> bool {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }
}

/// Everything a campaign thread needs; owned, so the thread outlives the
/// connection that spawned it without borrowing the accept loop.
struct CampaignCtx {
    conn: u64,
    tenant: u64,
    campaign_id: u32,
    oracle: Arc<dyn Oracle>,
    fingerprint: String,
    sched: Arc<FairScheduler>,
    req: OpenRequest,
    default_max_queries: Option<usize>,
    cache_path: Option<PathBuf>,
    cache_format: CacheFormat,
    cancel: CancelToken,
    out: mpsc::Sender<(u64, Outbound)>,
    wake: WakeHandle,
    journal: Option<Arc<Mutex<Journal>>>,
    /// Whether this campaign re-attaches a journaled campaign (`RESUME`)
    /// rather than opening a fresh one.
    is_resume: bool,
    /// Journaled seed batches to re-run before serving new ones (restart
    /// resume); empty for fresh campaigns.
    replay: Vec<Vec<Vec<u8>>>,
    /// The cumulative unique-query count the journal's last checkpoint
    /// recorded, when the checkpoint covered every journaled batch — used
    /// purely as a post-replay consistency check.
    replay_expect_unique: Option<usize>,
}

fn save_cache_atomic(session: &Session<'_>, path: &Path, campaign: u32, format: CacheFormat) {
    let bytes = match format {
        CacheFormat::Text => session.export_cache().into_bytes(),
        CacheFormat::Binary => session.export_cache_binary(),
    };
    let tmp = path.with_extension(format!("tmp{campaign}"));
    if let Err(e) = crate::persist::write_durable(path, &tmp, &bytes) {
        eprintln!("glade serve: campaign {campaign}: cache save failed: {e}");
    }
}

/// Appends one journal record, downgrading failures to a warning: a
/// campaign must keep serving even when its crash insurance lapses.
fn journal_append(
    journal: &Option<Arc<Mutex<Journal>>>,
    campaign: u32,
    append: impl FnOnce(&mut Journal) -> std::io::Result<()>,
) {
    let Some(journal) = journal else { return };
    let mut journal = journal.lock().expect("campaign journal poisoned");
    if let Err(e) = append(&mut journal) {
        eprintln!(
            "glade serve: campaign {campaign}: journal append failed ({}): {e}",
            journal.path().display()
        );
    }
}

/// Body of one campaign thread: a private [`Session`] over the shared
/// oracle (through the fair scheduler), fed seed batches until the accept
/// loop drops the channel. A resumed campaign first re-runs its journaled
/// batches (over the warm persistent cache, so completed work re-pays no
/// oracle queries) and answers with a single `RESULT` for the replayed
/// state.
fn run_campaign(ctx: CampaignCtx, seeds_rx: mpsc::Receiver<Vec<Vec<u8>>>) {
    let oracle = ScheduledOracle::new(ctx.oracle, ctx.sched, ctx.tenant);
    let mut builder = GladeBuilder::new()
        .oracle_fingerprint(ctx.fingerprint.clone())
        .cancel_token(ctx.cancel.clone())
        .memoize_byte_classes(ctx.req.memoize);
    if let Some(limit) = ctx.req.max_queries.or(ctx.default_max_queries) {
        builder = builder.max_queries(limit);
    }
    if ctx.req.events {
        builder = builder.observer_shared(Arc::new(StreamObserver {
            conn: ctx.conn,
            out: ctx.out.clone(),
            wake: ctx.wake.clone(),
        }));
    }
    let mut session = builder.session(&oracle);
    if let Some(path) = &ctx.cache_path {
        if path.exists() {
            // A stale or foreign snapshot is not fatal — the fingerprint
            // check inside `load_cache` rejects mismatches and the
            // campaign simply starts cold.
            let _ = session.load_cache(path);
        }
    }

    // One completed batch = one add_seeds call = one journal index; the
    // counter spans replayed and fresh batches so checkpoint records line
    // up with the `s` records the accept loop wrote at receipt.
    let mut batch_index = 0usize;
    let mut run_batch = |session: &mut Session<'_>, seeds: &[Vec<u8>]| {
        let outcome = match session.add_seeds(seeds) {
            Ok(result) => {
                if let Some(path) = &ctx.cache_path {
                    save_cache_atomic(session, path, ctx.campaign_id, ctx.cache_format);
                }
                journal_append(&ctx.journal, ctx.campaign_id, |j| {
                    j.append_checkpoint(ctx.campaign_id, batch_index, result.stats.unique_queries)
                });
                Outbound::Result {
                    stats: result.stats,
                    grammar: glade_grammar::grammar_to_text(&result.grammar),
                }
            }
            // A rejected batch (e.g. a seed the oracle refuses) leaves the
            // session state untouched; on replay it re-rejects identically.
            Err(e) => Outbound::Error(e.to_string()),
        };
        batch_index += 1;
        outcome
    };

    if ctx.is_resume {
        // Restart resume: replay every journaled batch in order, then
        // answer with exactly one frame describing the replayed state —
        // the latest successful result, or the first error if nothing
        // succeeded.
        let mut last: Option<Outbound> = None;
        let mut last_unique: Option<usize> = None;
        for seeds in &ctx.replay {
            match run_batch(&mut session, seeds) {
                result @ Outbound::Result { .. } => {
                    if let Outbound::Result { stats, .. } = &result {
                        last_unique = Some(stats.unique_queries);
                    }
                    last = Some(result);
                }
                error => {
                    if last.is_none() {
                        last = Some(error);
                    }
                }
            }
        }
        if let (Some(expect), Some(got)) = (ctx.replay_expect_unique, last_unique) {
            if expect != got {
                eprintln!(
                    "glade serve: campaign {}: replay disagreed with the journal checkpoint \
                     ({got} unique queries, checkpoint said {expect}) — the oracle or cache \
                     may have changed since the campaign was journaled",
                    ctx.campaign_id
                );
            }
        }
        let outcome = last.unwrap_or_else(|| {
            Outbound::Error("campaign has no journaled seed batches to replay".into())
        });
        if ctx.out.send((ctx.conn, outcome)).is_err() {
            return;
        }
        ctx.wake.wake();
    }

    while let Ok(seeds) = seeds_rx.recv() {
        let outcome = run_batch(&mut session, &seeds);
        if ctx.out.send((ctx.conn, outcome)).is_err() {
            break;
        }
        ctx.wake.wake();
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A resolved oracle spec: the shared oracle plus its fingerprint.
type OracleEntry = (Arc<dyn Oracle>, String);

/// A multi-tenant synthesis server.
///
/// Construct with an [`OracleFactory`] and a [`ServeConfig`], then either
/// [`run`](Server::run) the accept loop on the current thread or
/// [`spawn`](Server::spawn) it onto a background thread with a
/// [`ServerHandle`] for shutdown. See the [module docs](super) for the
/// protocol, fairness, and determinism guarantees.
pub struct Server {
    factory: Arc<dyn OracleFactory>,
    config: ServeConfig,
    sched: Arc<FairScheduler>,
    registry: Mutex<HashMap<String, OracleEntry>>,
    /// The campaign journal (present when `cache_dir` is set and usable).
    journal: Option<Arc<Mutex<Journal>>>,
    /// Journaled campaigns awaiting a `RESUME` claim, loaded at startup.
    resumable: Mutex<HashMap<u32, JournaledCampaign>>,
    /// Next fresh campaign id; starts past everything the journal has
    /// ever recorded so ids stay stable across restarts.
    next_campaign: AtomicU32,
}

impl Server {
    /// Creates a server (no socket yet). When
    /// [`cache_dir`](ServeConfig::cache_dir) is set, the campaign journal
    /// in that directory is replayed: campaigns that were open when the
    /// previous server died become claimable via `RESUME`. A journal that
    /// cannot be opened disables journaling (with a warning) rather than
    /// failing the server.
    pub fn new(factory: Arc<dyn OracleFactory>, config: ServeConfig) -> Self {
        let (journal, resumable, max_seen_id) = match &config.cache_dir {
            Some(dir) => match Journal::open(dir) {
                Ok((journal, state)) => {
                    (Some(Arc::new(Mutex::new(journal))), state.campaigns, state.max_seen_id)
                }
                Err(e) => {
                    eprintln!("glade serve: campaign journal disabled ({}): {e}", dir.display());
                    (None, HashMap::new(), 0)
                }
            },
            None => (None, HashMap::new(), 0),
        };
        Server {
            factory,
            config,
            sched: Arc::new(FairScheduler::new()),
            registry: Mutex::new(HashMap::new()),
            journal,
            resumable: Mutex::new(resumable),
            next_campaign: AtomicU32::new(max_seen_id.saturating_add(1)),
        }
    }

    /// Ids of journaled campaigns currently claimable via `RESUME`.
    pub fn resumable_campaigns(&self) -> Vec<u32> {
        let mut ids: Vec<u32> =
            self.resumable.lock().expect("resumable registry poisoned").keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Resolves `spec` to a shared oracle, creating (and deadline-
    /// configuring) it on first use.
    fn resolve_oracle(&self, spec: &str) -> Result<(Arc<dyn Oracle>, String), String> {
        let mut registry = self.registry.lock().expect("oracle registry poisoned");
        if let Some(entry) = registry.get(spec) {
            return Ok(entry.clone());
        }
        let (oracle, fingerprint) = self.factory.create(spec)?;
        if let Some(limit) = self.config.oracle_timeout {
            oracle.configure_timeout(Some(limit));
        }
        registry.insert(spec.to_string(), (Arc::clone(&oracle), fingerprint.clone()));
        Ok((oracle, fingerprint))
    }

    fn cache_path_for(&self, fingerprint: &str, requested: bool) -> Option<PathBuf> {
        if !requested {
            return None;
        }
        let dir = self.config.cache_dir.as_ref()?;
        Some(dir.join(format!("{:016x}.glade-cache", fnv1a64(fingerprint.as_bytes()))))
    }

    /// Spawns one campaign thread (fresh `OPEN` or `RESUME` replay) and
    /// seats it on `conn`, answering with `OPEN_ACK`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_campaign(
        &self,
        conn_id: u64,
        conn: &mut Conn,
        campaign_id: u32,
        req: OpenRequest,
        oracle: Arc<dyn Oracle>,
        fingerprint: String,
        out_tx: &mpsc::Sender<(u64, Outbound)>,
        wake: &WakeHandle,
        replay: Vec<Vec<Vec<u8>>>,
        replay_expect_unique: Option<usize>,
        is_resume: bool,
    ) -> JoinHandle<()> {
        let tenant = self.sched.register();
        let cancel = CancelToken::new();
        let cache_path = self.cache_path_for(&fingerprint, req.cache);
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let next_batch = replay.len();
        // A resume owes the client one RESULT (or ERROR) for the replay.
        let pending = usize::from(is_resume);
        let ctx = CampaignCtx {
            conn: conn_id,
            tenant,
            campaign_id,
            oracle,
            fingerprint: fingerprint.clone(),
            sched: Arc::clone(&self.sched),
            req,
            default_max_queries: self.config.default_max_queries,
            cache_path,
            cache_format: self.config.cache_format.unwrap_or(CacheFormat::Binary),
            cancel: cancel.clone(),
            out: out_tx.clone(),
            wake: wake.clone(),
            journal: self.journal.clone(),
            is_resume,
            replay,
            replay_expect_unique,
        };
        let join = std::thread::Builder::new()
            .name(format!("glade-serve-campaign-{campaign_id}"))
            .spawn(move || run_campaign(ctx, cmd_rx))
            .expect("spawn campaign thread");
        conn.campaign = Some(CampaignSeat { cmd_tx, cancel, id: campaign_id, next_batch, pending });
        conn.queue(TAG_OPEN_ACK, &encode_open_ack(campaign_id, &fingerprint));
        join
    }

    /// Handles one parsed frame for `conn`. Returns the campaign thread's
    /// join handle when the frame opened (or resumed) a campaign.
    #[allow(clippy::too_many_arguments)]
    fn handle_frame(
        &self,
        conn_id: u64,
        conn: &mut Conn,
        tag: u8,
        body: Vec<u8>,
        out_tx: &mpsc::Sender<(u64, Outbound)>,
        wake: &WakeHandle,
        draining: bool,
    ) -> Option<JoinHandle<()>> {
        match tag {
            TAG_HELLO => {
                if body != SERVE_PROTOCOL && body != SERVE_PROTOCOL_V1 {
                    conn.fail("unsupported protocol version");
                } else if conn.greeted {
                    conn.fail("duplicate HELLO");
                } else {
                    // Echo the banner the client sent: a v1 client keeps
                    // its v1 session, a v2 client gets v2.
                    conn.greeted = true;
                    conn.queue(TAG_HELLO_ACK, &body);
                }
                None
            }
            _ if !conn.greeted => {
                conn.fail("expected HELLO first");
                None
            }
            TAG_OPEN => {
                if conn.campaign.is_some() {
                    conn.fail("campaign already open on this connection");
                    return None;
                }
                if draining {
                    conn.fail("server is draining; no new campaigns");
                    return None;
                }
                let req = match OpenRequest::from_body(&body) {
                    Ok(req) => req,
                    Err(e) => {
                        conn.fail(&e.to_string());
                        return None;
                    }
                };
                let (oracle, fingerprint) = match self.resolve_oracle(&req.oracle_spec) {
                    Ok(resolved) => resolved,
                    Err(e) => {
                        conn.fail(&format!("oracle {:?}: {e}", req.oracle_spec));
                        return None;
                    }
                };
                let campaign_id = self.next_campaign.fetch_add(1, Ordering::SeqCst);
                // Journal the open before the campaign exists, so no `s`
                // or `c` record can ever precede its `o`.
                journal_append(&self.journal, campaign_id, |j| j.append_open(campaign_id, &req));
                Some(self.spawn_campaign(
                    conn_id,
                    conn,
                    campaign_id,
                    req,
                    oracle,
                    fingerprint,
                    out_tx,
                    wake,
                    Vec::new(),
                    None,
                    false,
                ))
            }
            TAG_RESUME => {
                if conn.campaign.is_some() {
                    conn.fail("campaign already open on this connection");
                    return None;
                }
                if draining {
                    conn.fail("server is draining; no new campaigns");
                    return None;
                }
                let id = match decode_resume(&body) {
                    Ok(id) => id,
                    Err(e) => {
                        conn.fail(&e.to_string());
                        return None;
                    }
                };
                // A server started without `--cache-dir` keeps no journal,
                // so *nothing* is resumable — tell the client that, not a
                // generic "unknown campaign": the fix is restarting the
                // server with persistence, not retrying another id.
                if self.journal.is_none() {
                    conn.fail(&format!(
                        "server has no journal (started without --cache-dir): \
                         campaign {id} is not resumable"
                    ));
                    return None;
                }
                let Some(entry) =
                    self.resumable.lock().expect("resumable registry poisoned").remove(&id)
                else {
                    conn.fail(&format!("campaign {id} is not resumable on this server"));
                    return None;
                };
                let (oracle, fingerprint) = match self.resolve_oracle(&entry.req.oracle_spec) {
                    Ok(resolved) => resolved,
                    Err(e) => {
                        let spec = entry.req.oracle_spec.clone();
                        // Put the claim back: a transient factory failure
                        // should not burn the campaign.
                        self.resumable
                            .lock()
                            .expect("resumable registry poisoned")
                            .insert(id, entry);
                        conn.fail(&format!("oracle {spec:?}: {e}"));
                        return None;
                    }
                };
                let expect = if entry.checkpointed == entry.batches.len() {
                    entry.last_unique
                } else {
                    None
                };
                Some(self.spawn_campaign(
                    conn_id,
                    conn,
                    id,
                    entry.req,
                    oracle,
                    fingerprint,
                    out_tx,
                    wake,
                    entry.batches,
                    expect,
                    true,
                ))
            }
            TAG_SEEDS => {
                let Some(seat) = conn.campaign.as_mut() else {
                    conn.fail("SEEDS before OPEN");
                    return None;
                };
                match decode_seeds_body(&body) {
                    Ok(seeds) => {
                        // Journal at receipt, before the run: a crash
                        // mid-run must not lose the batch.
                        journal_append(&self.journal, seat.id, |j| {
                            j.append_seeds(seat.id, seat.next_batch, &seeds)
                        });
                        seat.next_batch += 1;
                        if seat.cmd_tx.send(seeds).is_ok() {
                            seat.pending += 1;
                        } else {
                            conn.fail("campaign worker exited");
                        }
                    }
                    Err(e) => conn.fail(&e.to_string()),
                }
                None
            }
            TAG_CANCEL => {
                if let Some(seat) = &conn.campaign {
                    // Sticky, like a local CancelToken: the in-flight run
                    // (and any later run of this campaign) degrades along
                    // the fail-closed path and still produces a RESULT.
                    seat.cancel.cancel();
                } else {
                    conn.fail("CANCEL before OPEN");
                }
                None
            }
            TAG_CLOSE => {
                conn.closing = true;
                None
            }
            other => {
                // Unknown frame from a newer client: answer, don't wedge.
                conn.queue(TAG_ERROR, format!("unknown frame tag {other:#04x}").as_bytes());
                None
            }
        }
    }

    /// Runs the accept loop until `shutdown` is cancelled or the listener
    /// fails. Campaign threads are cancelled and joined before returning.
    pub fn run(&self, listener: UnixListener, shutdown: CancelToken) -> std::io::Result<()> {
        self.run_with(listener, shutdown, CancelToken::new(), None)
    }

    /// Runs the accept loop with a drain control: cancelling `drain` stops
    /// accepting connections and rejects new `OPEN`/`RESUME` frames, but
    /// lets running campaigns finish (bounded by
    /// [`ServeConfig::drain_timeout`]) before the loop exits, caches are
    /// saved, and `socket_path` (when given) is unlinked. Cancelling
    /// `shutdown` still hard-stops immediately via the fail-closed path.
    pub fn run_with(
        &self,
        listener: UnixListener,
        shutdown: CancelToken,
        drain: CancelToken,
        socket_path: Option<&Path>,
    ) -> std::io::Result<()> {
        let result = self.run_inner(listener, shutdown, drain);
        if let Some(path) = socket_path {
            let _ = std::fs::remove_file(path);
        }
        result
    }

    fn run_inner(
        &self,
        listener: UnixListener,
        shutdown: CancelToken,
        drain: CancelToken,
    ) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let wake = WakeHandle { tx: Arc::new(wake_tx) };
        let (out_tx, out_rx) = mpsc::channel::<(u64, Outbound)>();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut campaign_joins: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: u64 = 1;
        let drain_timeout = self.config.drain_timeout.unwrap_or(DEFAULT_DRAIN_TIMEOUT);
        let max_event_buffer = self.config.max_event_buffer.unwrap_or(DEFAULT_MAX_EVENT_BUFFER);
        let mut drain_deadline: Option<Instant> = None;

        while !shutdown.is_cancelled() {
            // Entering drain mode: stop accepting, start the clock.
            let draining = drain.is_cancelled();
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + drain_timeout);
            }
            if let Some(deadline) = drain_deadline {
                let all_idle = conns.values().all(Conn::is_idle);
                if all_idle || Instant::now() >= deadline {
                    // Campaigns checkpointed (every finished batch is in
                    // the journal + cache); anything still running rides
                    // the fail-closed cancel path below.
                    break;
                }
            }

            // Poll: listener, wake pipe, then every connection (write
            // interest only while output is queued). While draining the
            // listener stays in the set with no interest bits so the
            // index math (`fds[2 + slot]`) is unchanged.
            let mut fds = vec![
                sys::PollFd {
                    fd: listener.as_raw_fd(),
                    events: if draining { 0 } else { sys::POLLIN },
                    revents: 0,
                },
                sys::PollFd { fd: wake_rx.as_raw_fd(), events: sys::POLLIN, revents: 0 },
            ];
            let mut order: Vec<u64> = Vec::with_capacity(conns.len());
            for (&id, conn) in &conns {
                let mut events = sys::POLLIN;
                if !conn.outbuf.is_empty() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
                order.push(id);
            }
            // Bounded sleep so a shutdown or drain request is noticed
            // promptly even with no traffic.
            sys::poll_ready(&mut fds, Some(Duration::from_millis(100)))?;

            // Drain wake bytes (their only job was ending the sleep).
            if fds[1].revents & sys::POLLIN != 0 {
                let mut sink = [0u8; 256];
                while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }

            // Drain campaign output into per-connection buffers.
            while let Ok((conn_id, outbound)) = out_rx.try_recv() {
                let Some(conn) = conns.get_mut(&conn_id) else { continue };
                match outbound {
                    // Events land in the bounded per-connection queue, not
                    // the outbuf: a stuck reader fills the queue (which
                    // coalesces and eventually demotes) instead of growing
                    // server memory without bound.
                    Outbound::Event { line, tally } => conn.events.push(line, tally),
                    Outbound::Result { stats, grammar } => {
                        if let Some(seat) = conn.campaign.as_mut() {
                            seat.pending = seat.pending.saturating_sub(1);
                        }
                        conn.drain_events_before_result();
                        conn.queue(TAG_RESULT, &encode_result(&stats, &grammar));
                    }
                    Outbound::Error(message) => {
                        if let Some(seat) = conn.campaign.as_mut() {
                            seat.pending = seat.pending.saturating_sub(1);
                        }
                        conn.drain_events_before_result();
                        conn.queue(TAG_ERROR, message.as_bytes());
                    }
                }
            }

            // New connections.
            if !draining && fds[0].revents & sys::POLLIN != 0 {
                loop {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            stream.set_nonblocking(true)?;
                            conns.insert(next_conn, Conn::new(stream, max_event_buffer));
                            next_conn += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
            }

            // Per-connection I/O.
            let mut doomed: Vec<u64> = Vec::new();
            for (slot, &conn_id) in order.iter().enumerate() {
                let revents = fds[2 + slot].revents;
                let conn = conns.get_mut(&conn_id).expect("conn vanished mid-loop");
                if revents & sys::POLLNVAL != 0 {
                    doomed.push(conn_id);
                    continue;
                }
                if revents & sys::POLLIN != 0 && !conn.closing && !conn.dead && !conn.fill() {
                    // EOF or read error: a vanished client preempts its
                    // campaign through the ordinary cancel path.
                    conn.dead = true;
                }
                if !conn.dead {
                    match drain_frames(&mut conn.inbuf) {
                        Ok(frames) => {
                            for (tag, frame_body) in frames {
                                if conn.dead || conn.closing {
                                    break;
                                }
                                if let Some(join) = self.handle_frame(
                                    conn_id, conn, tag, frame_body, &out_tx, &wake, draining,
                                ) {
                                    campaign_joins.push(join);
                                }
                            }
                        }
                        Err(e) => conn.fail(&e.to_string()),
                    }
                }
                // Move queued events into the outbuf only while the reader
                // is keeping up (soft cap on outbuf size).
                conn.pump_events();
                if !conn.outbuf.is_empty() && !conn.flush() {
                    conn.outbuf.clear();
                    conn.dead = true;
                }
                let finished_close = conn.closing
                    && conn.outbuf.is_empty()
                    && conn.campaign.as_ref().is_none_or(|seat| seat.pending == 0);
                let finished_dead = conn.dead && conn.outbuf.is_empty();
                if finished_close || finished_dead {
                    doomed.push(conn_id);
                }
            }
            for conn_id in doomed {
                if let Some(conn) = conns.remove(&conn_id) {
                    if let Some(seat) = conn.campaign {
                        if conn.dead {
                            // Disconnect/error preemption; a graceful CLOSE
                            // already drained every pending run. The journal
                            // entry stays open, so the campaign is resumable
                            // after a server restart.
                            seat.cancel.cancel();
                        } else {
                            // Clean close: retire the campaign from the
                            // journal so a restart won't offer it.
                            journal_append(&self.journal, seat.id, |j| j.append_closed(seat.id));
                        }
                        drop(seat.cmd_tx);
                    }
                }
            }
        }

        // Shutdown: preempt every campaign, close every connection (which
        // drops the seed senders), then join the workers.
        for conn in conns.into_values() {
            if let Some(seat) = conn.campaign {
                seat.cancel.cancel();
            }
        }
        for join in campaign_joins {
            let _ = join.join();
        }
        Ok(())
    }

    /// Binds `socket` (replacing a stale socket file) and runs the accept
    /// loop on a background thread.
    pub fn spawn(self, socket: impl AsRef<Path>) -> std::io::Result<ServerHandle> {
        let path = socket.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let shutdown = CancelToken::new();
        let drain = CancelToken::new();
        let token = shutdown.clone();
        let drain_token = drain.clone();
        let run_path = path.clone();
        let join = std::thread::Builder::new()
            .name("glade-serve".into())
            .spawn(move || self.run_with(listener, token, drain_token, Some(&run_path)))?;
        Ok(ServerHandle { shutdown, drain, join: Some(join), path })
    }
}

/// Handle to a [spawned](Server::spawn) server; shuts the server down on
/// [`shutdown`](ServerHandle::shutdown) or drop.
#[derive(Debug)]
pub struct ServerHandle {
    shutdown: CancelToken,
    drain: CancelToken,
    join: Option<JoinHandle<std::io::Result<()>>>,
    path: PathBuf,
}

impl ServerHandle {
    /// The unix socket path the server listens on.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// A token that stops the accept loop when cancelled.
    pub fn cancel_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// A token that puts the server into drain mode when cancelled.
    pub fn drain_token(&self) -> CancelToken {
        self.drain.clone()
    }

    /// Asks the server to drain: stop accepting work, finish (or
    /// checkpoint) running campaigns, then exit. Non-blocking; pair with
    /// [`wait`](ServerHandle::wait).
    pub fn drain(&self) {
        self.drain.cancel();
    }

    /// Waits for the accept loop to exit without forcing a shutdown.
    pub fn wait(mut self) -> std::io::Result<()> {
        let result = match self.join.take() {
            Some(join) => join
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("serve accept loop panicked"))),
            None => Ok(()),
        };
        let _ = std::fs::remove_file(&self.path);
        result
    }

    /// Stops the server and waits for the accept loop (and every campaign
    /// thread) to exit.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.finish()
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.shutdown.cancel();
        let result = match self.join.take() {
            Some(join) => join
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("serve accept loop panicked"))),
            None => Ok(()),
        };
        let _ = std::fs::remove_file(&self.path);
        result
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            let _ = self.finish();
        }
    }
}

/// Signals received since [`install_drain_signals`]; written from the
/// handler, so reads must tolerate any count.
static DRAIN_SIGNALS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

extern "C" fn count_drain_signal(_signum: std::os::raw::c_int) {
    // Lock-free atomic increment: async-signal-safe.
    DRAIN_SIGNALS.fetch_add(1, Ordering::SeqCst);
}

/// Installs `SIGTERM`/`SIGINT` handlers that only count deliveries; the
/// caller polls [`drain_signal_count`] and applies its policy (the CLI
/// drains on the first signal and hard-stops on the second). Counting in
/// the handler keeps the handler trivially async-signal-safe and leaves
/// all real work on an ordinary thread.
pub fn install_drain_signals() {
    const SIGINT: std::os::raw::c_int = 2;
    const SIGTERM: std::os::raw::c_int = 15;
    extern "C" {
        fn signal(
            signum: std::os::raw::c_int,
            handler: extern "C" fn(std::os::raw::c_int),
        ) -> usize;
    }
    // SAFETY: installs a handler that only touches a static atomic.
    unsafe {
        signal(SIGTERM, count_drain_signal);
        signal(SIGINT, count_drain_signal);
    }
}

/// How many `SIGTERM`/`SIGINT` deliveries have been counted since
/// [`install_drain_signals`].
pub fn drain_signal_count() -> usize {
    DRAIN_SIGNALS.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(n: usize) -> String {
        SynthEvent::QueryBatch { checks: n, cached: 0, posed: n }.to_wire_line()
    }

    #[test]
    fn event_queue_coalesces_consecutive_tallies() {
        let mut q = EventQueue::new(8);
        q.push("phase start".into(), false);
        q.push(tally(10), true);
        q.push(tally(20), true);
        q.push(tally(30), true);
        q.push("phase done".into(), false);
        let drained: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        // The three tallies collapse to the most recent one; lifecycle
        // events all survive.
        assert_eq!(drained, vec!["phase start".to_string(), tally(30), "phase done".into()]);
        assert_eq!(q.take_dropped(), 0);
    }

    #[test]
    fn event_queue_does_not_coalesce_across_lifecycle_events() {
        let mut q = EventQueue::new(8);
        q.push(tally(10), true);
        q.push("phase done".into(), false);
        q.push(tally(20), true);
        let drained: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![tally(10), "phase done".to_string(), tally(20)]);
    }

    #[test]
    fn event_queue_overflow_demotes_and_counts_drops() {
        let mut q = EventQueue::new(2);
        q.push("a".into(), false);
        q.push("b".into(), false);
        // Third push overflows: the queue empties, and every later push is
        // dropped too (demotion is sticky).
        q.push("c".into(), false);
        assert!(q.pop().is_none());
        q.push("d".into(), false);
        assert!(q.pop().is_none());
        assert_eq!(q.take_dropped(), 4);
        // The counter resets once reported, but demotion persists.
        q.push("e".into(), false);
        assert_eq!(q.take_dropped(), 1);
    }

    #[test]
    fn event_queue_cap_zero_is_result_only() {
        let mut q = EventQueue::new(0);
        q.push("a".into(), false);
        assert!(q.pop().is_none());
        assert_eq!(q.take_dropped(), 1);
    }
}
