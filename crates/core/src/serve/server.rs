//! The `glade serve` daemon: accept loop, tenant state, campaign threads.
//!
//! See the [module docs](super) for the architecture and wire format. The
//! accept loop here is the only code that touches client sockets; it is
//! single-threaded and never blocks on a peer (nonblocking fds multiplexed
//! with `poll(2)`, the same discipline as the pooled oracle's batched
//! dispatcher). Campaigns run on their own threads and communicate with
//! the loop through channels plus a wake pipe.

use super::protocol::{
    decode_seeds_body, drain_frames, encode_frame, encode_open_ack, encode_result, OpenRequest,
    SERVE_PROTOCOL, TAG_CANCEL, TAG_CLOSE, TAG_ERROR, TAG_EVENT, TAG_HELLO, TAG_HELLO_ACK,
    TAG_OPEN, TAG_OPEN_ACK, TAG_RESULT, TAG_SEEDS,
};
use super::scheduler::{FairScheduler, ScheduledOracle};
use crate::events::{CancelToken, SynthEvent, SynthesisObserver};
use crate::oracle::{sys, Oracle};
use crate::session::{GladeBuilder, Session};
use crate::synth::SynthesisStats;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Creates the oracle behind a campaign's `oracle <spec>` line.
///
/// The factory decides what specs mean; the bundled CLI accepts
/// `target:<name>` (an in-process built-in) and `cmd:<command line>` (a
/// [`PooledProcessOracle`](crate::PooledProcessOracle) worker command).
/// On success it returns the shared oracle plus its *fingerprint* — the
/// stable identity string used to namespace persistent caches and to
/// validate cache snapshots (see
/// [`GladeBuilder::oracle_fingerprint`](crate::GladeBuilder::oracle_fingerprint)).
///
/// Campaigns naming the same spec share one oracle instance (and its
/// worker pool); the server serializes their access through the
/// [`FairScheduler`], so implementations need not add their own locking
/// beyond the ordinary [`Oracle`] thread-safety contract.
pub trait OracleFactory: Send + Sync {
    /// Creates (or fails to create) the oracle for `spec`.
    fn create(&self, spec: &str) -> Result<(Arc<dyn Oracle>, String), String>;
}

impl<F> OracleFactory for F
where
    F: Fn(&str) -> Result<(Arc<dyn Oracle>, String), String> + Send + Sync,
{
    fn create(&self, spec: &str) -> Result<(Arc<dyn Oracle>, String), String> {
        self(spec)
    }
}

/// Server-wide policy knobs.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Per-query deadline pushed onto every shared oracle at creation
    /// (tenants cannot override it — a shared pool's deadline is server
    /// policy, see [`ScheduledOracle`]).
    pub oracle_timeout: Option<Duration>,
    /// Directory for per-campaign persistent query caches, namespaced by
    /// oracle fingerprint. `None` disables persistence even for campaigns
    /// that request `cache on`.
    pub cache_dir: Option<PathBuf>,
    /// Default per-run distinct-query budget for campaigns that do not set
    /// `max-queries` themselves.
    pub default_max_queries: Option<usize>,
}

/// What a campaign thread sends back to the accept loop.
enum Outbound {
    Event(String),
    Result { stats: SynthesisStats, grammar: String },
    Error(String),
}

/// Wakes the accept loop out of its poll sleep. Writes never block (the
/// pipe is nonblocking); a full pipe already guarantees a pending wake.
#[derive(Clone)]
struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// Streams events straight into the outbound channel as wire lines.
struct StreamObserver {
    conn: u64,
    out: mpsc::Sender<(u64, Outbound)>,
    wake: WakeHandle,
}

impl SynthesisObserver for StreamObserver {
    fn on_event(&self, event: &SynthEvent) {
        let _ = self.out.send((self.conn, Outbound::Event(event.to_wire_line())));
        self.wake.wake();
    }
}

/// Accept-loop-side handle to one campaign thread.
struct CampaignSeat {
    cmd_tx: mpsc::Sender<Vec<Vec<u8>>>,
    cancel: CancelToken,
    /// Seed batches forwarded minus results/errors delivered.
    pending: usize,
}

/// One client connection's state in the accept loop.
struct Conn {
    stream: UnixStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    greeted: bool,
    /// `CLOSE` received: stop reading, finish pending runs, flush, drop.
    closing: bool,
    /// Fatal error or EOF: flush what is queued, then drop.
    dead: bool,
    campaign: Option<CampaignSeat>,
}

impl Conn {
    fn new(stream: UnixStream) -> Self {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            greeted: false,
            closing: false,
            dead: false,
            campaign: None,
        }
    }

    fn queue(&mut self, tag: u8, body: &[u8]) {
        encode_frame(tag, body, &mut self.outbuf);
    }

    fn fail(&mut self, message: &str) {
        self.queue(TAG_ERROR, message.as_bytes());
        self.dead = true;
    }

    /// Appends newly readable bytes to `inbuf`; `false` means EOF/error.
    fn fill(&mut self) -> bool {
        let mut buf = [0u8; 1 << 16];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Writes as much of `outbuf` as the socket accepts; `false` means the
    /// peer is gone.
    fn flush(&mut self) -> bool {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }
}

/// Everything a campaign thread needs; owned, so the thread outlives the
/// connection that spawned it without borrowing the accept loop.
struct CampaignCtx {
    conn: u64,
    tenant: u64,
    oracle: Arc<dyn Oracle>,
    fingerprint: String,
    sched: Arc<FairScheduler>,
    req: OpenRequest,
    default_max_queries: Option<usize>,
    cache_path: Option<PathBuf>,
    cancel: CancelToken,
    out: mpsc::Sender<(u64, Outbound)>,
    wake: WakeHandle,
}

fn save_cache_atomic(session: &Session<'_>, path: &Path, tenant: u64) {
    let text = session.export_cache();
    let tmp = path.with_extension(format!("tmp{tenant}"));
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Body of one campaign thread: a private [`Session`] over the shared
/// oracle (through the fair scheduler), fed seed batches until the accept
/// loop drops the channel.
fn run_campaign(ctx: CampaignCtx, seeds_rx: mpsc::Receiver<Vec<Vec<u8>>>) {
    let oracle = ScheduledOracle::new(ctx.oracle, ctx.sched, ctx.tenant);
    let mut builder = GladeBuilder::new()
        .oracle_fingerprint(ctx.fingerprint.clone())
        .cancel_token(ctx.cancel.clone())
        .memoize_byte_classes(ctx.req.memoize);
    if let Some(limit) = ctx.req.max_queries.or(ctx.default_max_queries) {
        builder = builder.max_queries(limit);
    }
    if ctx.req.events {
        builder = builder.observer_shared(Arc::new(StreamObserver {
            conn: ctx.conn,
            out: ctx.out.clone(),
            wake: ctx.wake.clone(),
        }));
    }
    let mut session = builder.session(&oracle);
    if let Some(path) = &ctx.cache_path {
        if path.exists() {
            // A stale or foreign snapshot is not fatal — the fingerprint
            // check inside `load_cache` rejects mismatches and the
            // campaign simply starts cold.
            let _ = session.load_cache(path);
        }
    }
    while let Ok(seeds) = seeds_rx.recv() {
        let outcome = match session.add_seeds(&seeds) {
            Ok(result) => {
                if let Some(path) = &ctx.cache_path {
                    save_cache_atomic(&session, path, ctx.tenant);
                }
                Outbound::Result {
                    stats: result.stats,
                    grammar: glade_grammar::grammar_to_text(&result.grammar),
                }
            }
            Err(e) => Outbound::Error(e.to_string()),
        };
        if ctx.out.send((ctx.conn, outcome)).is_err() {
            break;
        }
        ctx.wake.wake();
    }
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A resolved oracle spec: the shared oracle plus its fingerprint.
type OracleEntry = (Arc<dyn Oracle>, String);

/// A multi-tenant synthesis server.
///
/// Construct with an [`OracleFactory`] and a [`ServeConfig`], then either
/// [`run`](Server::run) the accept loop on the current thread or
/// [`spawn`](Server::spawn) it onto a background thread with a
/// [`ServerHandle`] for shutdown. See the [module docs](super) for the
/// protocol, fairness, and determinism guarantees.
pub struct Server {
    factory: Arc<dyn OracleFactory>,
    config: ServeConfig,
    sched: Arc<FairScheduler>,
    registry: Mutex<HashMap<String, OracleEntry>>,
}

impl Server {
    /// Creates a server (no socket yet).
    pub fn new(factory: Arc<dyn OracleFactory>, config: ServeConfig) -> Self {
        Server {
            factory,
            config,
            sched: Arc::new(FairScheduler::new()),
            registry: Mutex::new(HashMap::new()),
        }
    }

    /// Resolves `spec` to a shared oracle, creating (and deadline-
    /// configuring) it on first use.
    fn resolve_oracle(&self, spec: &str) -> Result<(Arc<dyn Oracle>, String), String> {
        let mut registry = self.registry.lock().expect("oracle registry poisoned");
        if let Some(entry) = registry.get(spec) {
            return Ok(entry.clone());
        }
        let (oracle, fingerprint) = self.factory.create(spec)?;
        if let Some(limit) = self.config.oracle_timeout {
            oracle.configure_timeout(Some(limit));
        }
        registry.insert(spec.to_string(), (Arc::clone(&oracle), fingerprint.clone()));
        Ok((oracle, fingerprint))
    }

    fn cache_path_for(&self, fingerprint: &str, requested: bool) -> Option<PathBuf> {
        if !requested {
            return None;
        }
        let dir = self.config.cache_dir.as_ref()?;
        Some(dir.join(format!("{:016x}.glade-cache", fnv1a64(fingerprint.as_bytes()))))
    }

    /// Handles one parsed frame for `conn`. Returns the campaign thread's
    /// join handle when the frame opened a campaign.
    #[allow(clippy::too_many_arguments)]
    fn handle_frame(
        &self,
        conn_id: u64,
        conn: &mut Conn,
        tag: u8,
        body: Vec<u8>,
        out_tx: &mpsc::Sender<(u64, Outbound)>,
        wake: &WakeHandle,
    ) -> Option<JoinHandle<()>> {
        match tag {
            TAG_HELLO => {
                if body != SERVE_PROTOCOL {
                    conn.fail("unsupported protocol version");
                } else if conn.greeted {
                    conn.fail("duplicate HELLO");
                } else {
                    conn.greeted = true;
                    conn.queue(TAG_HELLO_ACK, SERVE_PROTOCOL);
                }
                None
            }
            _ if !conn.greeted => {
                conn.fail("expected HELLO first");
                None
            }
            TAG_OPEN => {
                if conn.campaign.is_some() {
                    conn.fail("campaign already open on this connection");
                    return None;
                }
                let req = match OpenRequest::from_body(&body) {
                    Ok(req) => req,
                    Err(e) => {
                        conn.fail(&e.to_string());
                        return None;
                    }
                };
                let (oracle, fingerprint) = match self.resolve_oracle(&req.oracle_spec) {
                    Ok(resolved) => resolved,
                    Err(e) => {
                        conn.fail(&format!("oracle {:?}: {e}", req.oracle_spec));
                        return None;
                    }
                };
                let tenant = self.sched.register();
                let campaign_id = tenant as u32;
                let cancel = CancelToken::new();
                let cache_path = self.cache_path_for(&fingerprint, req.cache);
                let (cmd_tx, cmd_rx) = mpsc::channel();
                let ctx = CampaignCtx {
                    conn: conn_id,
                    tenant,
                    oracle,
                    fingerprint: fingerprint.clone(),
                    sched: Arc::clone(&self.sched),
                    req,
                    default_max_queries: self.config.default_max_queries,
                    cache_path,
                    cancel: cancel.clone(),
                    out: out_tx.clone(),
                    wake: wake.clone(),
                };
                let join = std::thread::Builder::new()
                    .name(format!("glade-serve-campaign-{campaign_id}"))
                    .spawn(move || run_campaign(ctx, cmd_rx))
                    .expect("spawn campaign thread");
                conn.campaign = Some(CampaignSeat { cmd_tx, cancel, pending: 0 });
                conn.queue(TAG_OPEN_ACK, &encode_open_ack(campaign_id, &fingerprint));
                Some(join)
            }
            TAG_SEEDS => {
                let Some(seat) = conn.campaign.as_mut() else {
                    conn.fail("SEEDS before OPEN");
                    return None;
                };
                match decode_seeds_body(&body) {
                    Ok(seeds) => {
                        if seat.cmd_tx.send(seeds).is_ok() {
                            seat.pending += 1;
                        } else {
                            conn.fail("campaign worker exited");
                        }
                    }
                    Err(e) => conn.fail(&e.to_string()),
                }
                None
            }
            TAG_CANCEL => {
                if let Some(seat) = &conn.campaign {
                    // Sticky, like a local CancelToken: the in-flight run
                    // (and any later run of this campaign) degrades along
                    // the fail-closed path and still produces a RESULT.
                    seat.cancel.cancel();
                } else {
                    conn.fail("CANCEL before OPEN");
                }
                None
            }
            TAG_CLOSE => {
                conn.closing = true;
                None
            }
            other => {
                // Unknown frame from a newer client: answer, don't wedge.
                conn.queue(TAG_ERROR, format!("unknown frame tag {other:#04x}").as_bytes());
                None
            }
        }
    }

    /// Runs the accept loop until `shutdown` is cancelled or the listener
    /// fails. Campaign threads are cancelled and joined before returning.
    pub fn run(&self, listener: UnixListener, shutdown: CancelToken) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let wake = WakeHandle { tx: Arc::new(wake_tx) };
        let (out_tx, out_rx) = mpsc::channel::<(u64, Outbound)>();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut campaign_joins: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: u64 = 1;

        while !shutdown.is_cancelled() {
            // Poll: listener, wake pipe, then every connection (write
            // interest only while output is queued).
            let mut fds = vec![
                sys::PollFd { fd: listener.as_raw_fd(), events: sys::POLLIN, revents: 0 },
                sys::PollFd { fd: wake_rx.as_raw_fd(), events: sys::POLLIN, revents: 0 },
            ];
            let mut order: Vec<u64> = Vec::with_capacity(conns.len());
            for (&id, conn) in &conns {
                let mut events = sys::POLLIN;
                if !conn.outbuf.is_empty() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
                order.push(id);
            }
            // Bounded sleep so a shutdown request is noticed promptly even
            // with no traffic.
            sys::poll_ready(&mut fds, Some(Duration::from_millis(100)))?;

            // Drain wake bytes (their only job was ending the sleep).
            if fds[1].revents & sys::POLLIN != 0 {
                let mut sink = [0u8; 256];
                while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }

            // Drain campaign output into per-connection buffers.
            while let Ok((conn_id, outbound)) = out_rx.try_recv() {
                let Some(conn) = conns.get_mut(&conn_id) else { continue };
                match outbound {
                    Outbound::Event(line) => conn.queue(TAG_EVENT, line.as_bytes()),
                    Outbound::Result { stats, grammar } => {
                        if let Some(seat) = conn.campaign.as_mut() {
                            seat.pending = seat.pending.saturating_sub(1);
                        }
                        conn.queue(TAG_RESULT, &encode_result(&stats, &grammar));
                    }
                    Outbound::Error(message) => {
                        if let Some(seat) = conn.campaign.as_mut() {
                            seat.pending = seat.pending.saturating_sub(1);
                        }
                        conn.queue(TAG_ERROR, message.as_bytes());
                    }
                }
            }

            // New connections.
            if fds[0].revents & sys::POLLIN != 0 {
                loop {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            stream.set_nonblocking(true)?;
                            conns.insert(next_conn, Conn::new(stream));
                            next_conn += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
            }

            // Per-connection I/O.
            let mut doomed: Vec<u64> = Vec::new();
            for (slot, &conn_id) in order.iter().enumerate() {
                let revents = fds[2 + slot].revents;
                let conn = conns.get_mut(&conn_id).expect("conn vanished mid-loop");
                if revents & sys::POLLNVAL != 0 {
                    doomed.push(conn_id);
                    continue;
                }
                if revents & sys::POLLIN != 0 && !conn.closing && !conn.dead && !conn.fill() {
                    // EOF or read error: a vanished client preempts its
                    // campaign through the ordinary cancel path.
                    conn.dead = true;
                }
                if !conn.dead {
                    match drain_frames(&mut conn.inbuf) {
                        Ok(frames) => {
                            for (tag, frame_body) in frames {
                                if conn.dead || conn.closing {
                                    break;
                                }
                                if let Some(join) = self
                                    .handle_frame(conn_id, conn, tag, frame_body, &out_tx, &wake)
                                {
                                    campaign_joins.push(join);
                                }
                            }
                        }
                        Err(e) => conn.fail(&e.to_string()),
                    }
                }
                if !conn.outbuf.is_empty() && !conn.flush() {
                    conn.outbuf.clear();
                    conn.dead = true;
                }
                let finished_close = conn.closing
                    && conn.outbuf.is_empty()
                    && conn.campaign.as_ref().is_none_or(|seat| seat.pending == 0);
                let finished_dead = conn.dead && conn.outbuf.is_empty();
                if finished_close || finished_dead {
                    doomed.push(conn_id);
                }
            }
            for conn_id in doomed {
                if let Some(conn) = conns.remove(&conn_id) {
                    if let Some(seat) = conn.campaign {
                        if conn.dead {
                            // Disconnect/error preemption; a graceful CLOSE
                            // already drained every pending run.
                            seat.cancel.cancel();
                        }
                        drop(seat.cmd_tx);
                    }
                }
            }
        }

        // Shutdown: preempt every campaign, close every connection (which
        // drops the seed senders), then join the workers.
        for conn in conns.into_values() {
            if let Some(seat) = conn.campaign {
                seat.cancel.cancel();
            }
        }
        for join in campaign_joins {
            let _ = join.join();
        }
        Ok(())
    }

    /// Binds `socket` (replacing a stale socket file) and runs the accept
    /// loop on a background thread.
    pub fn spawn(self, socket: impl AsRef<Path>) -> std::io::Result<ServerHandle> {
        let path = socket.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let shutdown = CancelToken::new();
        let token = shutdown.clone();
        let join = std::thread::Builder::new()
            .name("glade-serve".into())
            .spawn(move || self.run(listener, token))?;
        Ok(ServerHandle { shutdown, join: Some(join), path })
    }
}

/// Handle to a [spawned](Server::spawn) server; shuts the server down on
/// [`shutdown`](ServerHandle::shutdown) or drop.
#[derive(Debug)]
pub struct ServerHandle {
    shutdown: CancelToken,
    join: Option<JoinHandle<std::io::Result<()>>>,
    path: PathBuf,
}

impl ServerHandle {
    /// The unix socket path the server listens on.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// A token that stops the accept loop when cancelled.
    pub fn cancel_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Stops the server and waits for the accept loop (and every campaign
    /// thread) to exit.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.finish()
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.shutdown.cancel();
        let result = match self.join.take() {
            Some(join) => join
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("serve accept loop panicked"))),
            None => Ok(()),
        };
        let _ = std::fs::remove_file(&self.path);
        result
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            let _ = self.finish();
        }
    }
}
