//! Round-robin turn scheduling for campaigns sharing one oracle.
//!
//! The unit of interleaving is a *turn*: one oracle call — in practice one
//! query sub-batch, since [`ScheduledOracle`] advertises
//! [`native_batching`](crate::Oracle::native_batching) and the query
//! engine hands native oracles bounded sub-batches of its miss sets. A
//! turn is granted to the waiting tenant next in cyclic id order after the
//! last-served tenant, so N active campaigns each get ~1/N of the oracle
//! while a lone campaign runs unthrottled.

use crate::oracle::Oracle;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct SchedState {
    /// Next tenant id to hand out.
    next_id: u64,
    /// Whether a turn is currently held.
    busy: bool,
    /// The tenant whose turn most recently started; the cyclic order
    /// resumes after it.
    last: u64,
    /// Tenants currently blocked in [`FairScheduler::turn`].
    waiting: BTreeSet<u64>,
}

impl SchedState {
    /// The waiter that owns the next turn: the smallest waiting id greater
    /// than `last`, wrapping to the smallest overall.
    fn next_turn(&self) -> Option<u64> {
        self.waiting.range(self.last + 1..).next().or_else(|| self.waiting.iter().next()).copied()
    }
}

/// Grants oracle turns to tenants in round-robin order.
///
/// Fairness is cyclic by tenant id over the *currently waiting* tenants:
/// after tenant `t`'s turn, the next turn goes to the smallest waiting id
/// above `t`, wrapping around. Tenants that are not waiting (busy
/// planning, between waves, finished) are skipped rather than waited for,
/// so the shared oracle never idles while any tenant has work.
#[derive(Debug, Default)]
pub struct FairScheduler {
    state: Mutex<SchedState>,
    turn_free: Condvar,
}

impl FairScheduler {
    /// Creates a scheduler with no tenants.
    pub fn new() -> Self {
        FairScheduler::default()
    }

    /// Registers a tenant and returns its id (ids also define the
    /// round-robin order).
    pub fn register(&self) -> u64 {
        let mut state = self.state.lock().expect("scheduler poisoned");
        let id = state.next_id;
        state.next_id += 1;
        id
    }

    /// Blocks until it is `tenant`'s turn; the turn lasts until the
    /// returned guard drops.
    pub fn turn(&self, tenant: u64) -> TurnGuard<'_> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        state.waiting.insert(tenant);
        while state.busy || state.next_turn() != Some(tenant) {
            state = self.turn_free.wait(state).expect("scheduler poisoned");
        }
        state.busy = true;
        state.waiting.remove(&tenant);
        state.last = tenant;
        TurnGuard { sched: self }
    }
}

/// Holds one scheduler turn; dropping it passes the oracle to the next
/// waiting tenant.
#[must_use = "dropping the guard immediately forfeits the turn"]
#[derive(Debug)]
pub struct TurnGuard<'a> {
    sched: &'a FairScheduler,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.sched.state.lock().expect("scheduler poisoned");
        state.busy = false;
        drop(state);
        self.sched.turn_free.notify_all();
    }
}

/// A per-tenant view of a shared [`Oracle`], serialized through a
/// [`FairScheduler`].
///
/// Every oracle call takes one scheduler turn, so concurrent tenants'
/// query waves interleave fairly instead of racing. The wrapper always
/// advertises [`native_batching`](Oracle::native_batching): the query
/// engine then routes whole miss sets here in bounded sub-batches from the
/// session thread (one turn each) rather than fanning single queries
/// across engine workers — which both matches the turn granularity and
/// keeps results byte-identical to a local run (batch construction is
/// dispatch-independent; see the crate docs).
///
/// Failure accounting is per tenant: because all access to the shared
/// oracle is serialized through turns, the wrapper snapshots the inner
/// failure/timeout/breaker counters around each call and accumulates the
/// deltas locally, so [`failure_count`](Oracle::failure_count) (and
/// friends) report only what *this* tenant's queries caused — one tenant's
/// injected faults never leak into another tenant's statistics.
///
/// [`configure_timeout`](Oracle::configure_timeout) is deliberately a
/// no-op: the per-query deadline of a shared oracle belongs to the server
/// (set once at pool creation), not to whichever tenant configured it
/// last.
pub struct ScheduledOracle {
    inner: Arc<dyn Oracle>,
    sched: Arc<FairScheduler>,
    tenant: u64,
    failures: AtomicUsize,
    timeouts: AtomicUsize,
    trips: AtomicUsize,
    recoveries: AtomicUsize,
}

impl ScheduledOracle {
    /// Wraps `inner` for the given registered tenant.
    pub fn new(inner: Arc<dyn Oracle>, sched: Arc<FairScheduler>, tenant: u64) -> Self {
        ScheduledOracle {
            inner,
            sched,
            tenant,
            failures: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
            trips: AtomicUsize::new(0),
            recoveries: AtomicUsize::new(0),
        }
    }

    /// The tenant id this wrapper takes turns as.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Runs `call` under one scheduler turn, attributing the inner
    /// oracle's counter growth during the call to this tenant.
    fn with_turn<T>(&self, call: impl FnOnce(&dyn Oracle) -> T) -> T {
        let _turn = self.sched.turn(self.tenant);
        let before = (
            self.inner.failure_count(),
            self.inner.timed_out_count(),
            self.inner.tripped_worker_count(),
            self.inner.recovered_worker_count(),
        );
        let out = call(&*self.inner);
        let after = (
            self.inner.failure_count(),
            self.inner.timed_out_count(),
            self.inner.tripped_worker_count(),
            self.inner.recovered_worker_count(),
        );
        self.failures.fetch_add(after.0 - before.0, Ordering::Relaxed);
        self.timeouts.fetch_add(after.1 - before.1, Ordering::Relaxed);
        self.trips.fetch_add(after.2 - before.2, Ordering::Relaxed);
        self.recoveries.fetch_add(after.3 - before.3, Ordering::Relaxed);
        out
    }
}

impl std::fmt::Debug for ScheduledOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduledOracle")
            .field("tenant", &self.tenant)
            .field("failures", &self.failures.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Oracle for ScheduledOracle {
    fn accepts(&self, input: &[u8]) -> bool {
        self.with_turn(|o| o.accepts(input))
    }

    fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
        self.with_turn(|o| o.accepts_checked(input))
    }

    fn accepts_batch_checked(&self, inputs: &[&[u8]]) -> Vec<Option<bool>> {
        self.with_turn(|o| o.accepts_batch_checked(inputs))
    }

    fn native_batching(&self) -> bool {
        true
    }

    fn failure_count(&self) -> usize {
        self.failures.load(Ordering::Relaxed)
    }

    fn configure_timeout(&self, _timeout: Option<Duration>) {
        // Deliberate no-op: see the type docs.
    }

    fn timed_out_count(&self) -> usize {
        self.timeouts.load(Ordering::Relaxed)
    }

    fn tripped_worker_count(&self) -> usize {
        self.trips.load(Ordering::Relaxed)
    }

    fn recovered_worker_count(&self) -> usize {
        self.recoveries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FnOracle;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_tenant_runs_unthrottled() {
        let sched = FairScheduler::new();
        let t = sched.register();
        for _ in 0..100 {
            let _turn = sched.turn(t);
        }
    }

    #[test]
    fn turns_are_mutually_exclusive_and_all_complete() {
        let sched = Arc::new(FairScheduler::new());
        let ids: Vec<u64> = (0..3).map(|_| sched.register()).collect();
        let running = Arc::new(AtomicU64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for &id in &ids {
                let sched = Arc::clone(&sched);
                let running = Arc::clone(&running);
                let served = Arc::clone(&served);
                s.spawn(move || {
                    for _ in 0..20 {
                        let _turn = sched.turn(id);
                        assert_eq!(running.fetch_add(1, Ordering::SeqCst), 0);
                        served.fetch_add(1, Ordering::SeqCst);
                        running.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::SeqCst), 60, "no tenant starved");
    }

    #[test]
    fn waiting_tenants_are_served_in_cyclic_order() {
        let sched = Arc::new(FairScheduler::new());
        let a = sched.register();
        let b = sched.register();
        let c = sched.register();
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let guard = sched.turn(b);
            for &id in &[a, c] {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let _turn = sched.turn(id);
                    order.lock().unwrap().push(id);
                });
            }
            // Hold b's turn until both a and c are queued, so the grant
            // order is decided by the scheduler, not thread start order.
            while sched.state.lock().unwrap().waiting.len() < 2 {
                std::thread::yield_now();
            }
            drop(guard);
        });
        // The cyclic order after b is c, then (wrapping) a.
        assert_eq!(*order.lock().unwrap(), vec![c, a]);
    }

    #[test]
    fn scheduled_oracle_attributes_failures_per_tenant() {
        struct FailingOracle {
            failures: AtomicUsize,
        }
        impl Oracle for FailingOracle {
            fn accepts(&self, _input: &[u8]) -> bool {
                self.failures.fetch_add(1, Ordering::Relaxed);
                false
            }
            fn accepts_checked(&self, input: &[u8]) -> Option<bool> {
                self.accepts(input);
                None
            }
            fn failure_count(&self) -> usize {
                self.failures.load(Ordering::Relaxed)
            }
        }

        let shared: Arc<dyn Oracle> = Arc::new(FailingOracle { failures: AtomicUsize::new(0) });
        let sched = Arc::new(FairScheduler::new());
        let a = ScheduledOracle::new(Arc::clone(&shared), Arc::clone(&sched), sched.register());
        let b = ScheduledOracle::new(Arc::clone(&shared), Arc::clone(&sched), sched.register());
        a.accepts_checked(b"x");
        a.accepts_checked(b"y");
        b.accepts_checked(b"z");
        assert_eq!(a.failure_count(), 2, "tenant a saw only its own failures");
        assert_eq!(b.failure_count(), 1, "tenant b saw only its own failures");
        assert_eq!(shared.failure_count(), 3);
    }

    #[test]
    fn scheduled_oracle_forwards_verdicts_and_batches() {
        let shared: Arc<dyn Oracle> =
            Arc::new(FnOracle::new(|input: &[u8]| input.starts_with(b"ok")));
        let sched = Arc::new(FairScheduler::new());
        let tenant = sched.register();
        let o = ScheduledOracle::new(shared, sched, tenant);
        assert!(o.accepts(b"ok then"));
        assert!(!o.accepts(b"nope"));
        assert_eq!(o.accepts_checked(b"ok"), Some(true));
        assert_eq!(
            o.accepts_batch_checked(&[b"ok".as_slice(), b"no".as_slice()]),
            vec![Some(true), Some(false)]
        );
        assert!(o.native_batching(), "wrapper always advertises native batching");
        assert_eq!(o.failure_count(), 0);
    }
}
