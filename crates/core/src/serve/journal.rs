//! Append-only campaign journal for crash-safe `glade serve`.
//!
//! The engine's determinism pins make a campaign *replayable*: feeding the
//! same seed batches through [`Session::add_seeds`](crate::Session::add_seeds)
//! in the same order produces byte-identical grammars, and the
//! fingerprint-namespaced persistent cache makes the replay re-pay ~zero
//! oracle queries. This module persists exactly the inputs that replay
//! needs — the `OPEN` options and every accepted seed batch — as an
//! append-only text journal under the server's cache directory, so a
//! `glade serve` process killed mid-campaign can restart and resume every
//! open campaign (`RESUME` frame) into the same determinism envelope.
//!
//! # Format (`glade-journal v1`)
//!
//! A header line, then one record per line. Fields are space-separated;
//! byte payloads (the `OPEN` body, `SEEDS` bodies) travel hex-encoded —
//! seeds are arbitrary bytes, so no text escaping scheme is safe (the same
//! argument as the [`persist`](crate::persist) snapshot format):
//!
//! ```text
//! glade-journal v1
//! n <high-water campaign id>
//! o <campaign-id> <hex OPEN body>
//! s <campaign-id> <batch-index> <hex SEEDS body>
//! c <campaign-id> <batch-index> <unique-queries>
//! x <campaign-id>
//! ```
//!
//! `o` opens a campaign, `s` records a seed batch *at receipt* (before the
//! run, so a crash mid-run does not lose the batch), `c` checkpoints a
//! completed batch with the session's cumulative distinct-query count
//! (the budget spent so far), and `x` marks a clean `CLOSE`. Every append
//! is a single `write` followed by `fdatasync`, so a record is either
//! fully on disk or (for the torn final line a crash can leave) ignored by
//! the replay parser.
//!
//! # Replay semantics
//!
//! Parsing never fails: a torn trailing line is skipped, and the first
//! malformed record stops the parse, keeping every record before it — the
//! journal degrades to a shorter history, never to an error that would
//! wedge a restart. Campaigns with an `o` but no `x` are *resumable*; on
//! startup the server compacts the journal (rewriting only live records,
//! durably) and offers each resumable campaign to `RESUME`. Campaign ids
//! are never reused across restarts: the id counter starts past the
//! largest id the journal has ever recorded.

use super::protocol::{decode_seeds_body, encode_seeds_body, OpenRequest};
use crate::persist::write_durable;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The journal's file name inside [`ServeConfig::cache_dir`](super::ServeConfig).
pub(crate) const JOURNAL_FILE: &str = "serve.journal";
const JOURNAL_HEADER: &str = "glade-journal v1";

/// One resumable campaign reconstructed from the journal.
#[derive(Debug, Clone)]
pub(crate) struct JournaledCampaign {
    /// The campaign's original `OPEN` options.
    pub req: OpenRequest,
    /// Every journaled seed batch, in submission order.
    pub batches: Vec<Vec<Vec<u8>>>,
    /// Batches covered by a checkpoint (the completed prefix length).
    pub checkpointed: usize,
    /// The cumulative distinct-query count the last checkpoint recorded.
    pub last_unique: Option<usize>,
}

/// Everything a restarting server learns from the journal.
#[derive(Debug, Default)]
pub(crate) struct JournalState {
    /// Campaigns opened but never cleanly closed, by id.
    pub campaigns: HashMap<u32, JournaledCampaign>,
    /// The largest campaign id ever journaled (0 if none); persisted
    /// through compaction by the `n` record so closed campaigns' ids are
    /// never reused after a restart.
    pub max_seen_id: u32,
}

/// Appending handle on the journal file. Shared across campaign threads
/// behind a mutex; every append is fsynced before returning.
#[derive(Debug)]
pub(crate) struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replays it, and
    /// compacts it down to its live records.
    pub(crate) fn open(dir: &Path) -> std::io::Result<(Journal, JournalState)> {
        let path = dir.join(JOURNAL_FILE);
        let state = match std::fs::read_to_string(&path) {
            Ok(text) => parse_journal(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => JournalState::default(),
            Err(e) => return Err(e),
        };
        let compacted = render_journal(&state);
        let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
        write_durable(&path, &tmp, compacted.as_bytes())?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((Journal { file, path }, state))
    }

    /// The journal's path (for diagnostics).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf)?;
        self.file.sync_data()
    }

    /// Records a campaign's `OPEN`.
    pub(crate) fn append_open(&mut self, id: u32, req: &OpenRequest) -> std::io::Result<()> {
        self.append_line(&format!("o {id} {}", hex_encode(&req.to_body())))
    }

    /// Records a seed batch at receipt, before it runs.
    pub(crate) fn append_seeds(
        &mut self,
        id: u32,
        index: usize,
        seeds: &[Vec<u8>],
    ) -> std::io::Result<()> {
        let body = encode_seeds_body(seeds).map_err(std::io::Error::from)?;
        self.append_line(&format!("s {id} {index} {}", hex_encode(&body)))
    }

    /// Checkpoints a completed batch with the cumulative unique-query
    /// count (the budget spent so far).
    pub(crate) fn append_checkpoint(
        &mut self,
        id: u32,
        index: usize,
        unique_queries: usize,
    ) -> std::io::Result<()> {
        self.append_line(&format!("c {id} {index} {unique_queries}"))
    }

    /// Records a clean `CLOSE`: the campaign is no longer resumable.
    pub(crate) fn append_closed(&mut self, id: u32) -> std::io::Result<()> {
        self.append_line(&format!("x {id}"))
    }
}

/// Parses journal text into the live-campaign state. Never fails: a
/// missing/foreign header yields the empty state, a torn trailing line is
/// skipped, and the first malformed record stops the parse keeping the
/// prefix.
pub(crate) fn parse_journal(text: &str) -> JournalState {
    let mut state = JournalState::default();
    // A crash can tear the final append; a line is only trustworthy if the
    // newline that terminates it reached the file.
    let complete = match text.rfind('\n') {
        Some(end) => &text[..end],
        None => return state,
    };
    let mut lines = complete.lines();
    if lines.next() != Some(JOURNAL_HEADER) {
        return state;
    }
    let closed_or_bumped = |state: &mut JournalState, id: u32| {
        state.max_seen_id = state.max_seen_id.max(id);
    };
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let (Some(kind), id) = (fields.next(), fields.next().and_then(|f| f.parse::<u32>().ok()))
        else {
            return state;
        };
        let Some(id) = id else { return state };
        match kind {
            "n" => closed_or_bumped(&mut state, id),
            "o" => {
                let Some(req) = fields
                    .next()
                    .and_then(hex_decode)
                    .and_then(|body| OpenRequest::from_body(&body).ok())
                else {
                    return state;
                };
                if state.campaigns.contains_key(&id) {
                    return state;
                }
                closed_or_bumped(&mut state, id);
                state.campaigns.insert(
                    id,
                    JournaledCampaign {
                        req,
                        batches: Vec::new(),
                        checkpointed: 0,
                        last_unique: None,
                    },
                );
            }
            "s" => {
                let index = fields.next().and_then(|f| f.parse::<usize>().ok());
                let seeds = fields
                    .next()
                    .and_then(hex_decode)
                    .and_then(|body| decode_seeds_body(&body).ok());
                let (Some(index), Some(seeds), Some(campaign)) =
                    (index, seeds, state.campaigns.get_mut(&id))
                else {
                    return state;
                };
                if index != campaign.batches.len() {
                    return state;
                }
                campaign.batches.push(seeds);
            }
            "c" => {
                let index = fields.next().and_then(|f| f.parse::<usize>().ok());
                let unique = fields.next().and_then(|f| f.parse::<usize>().ok());
                let (Some(index), Some(unique), Some(campaign)) =
                    (index, unique, state.campaigns.get_mut(&id))
                else {
                    return state;
                };
                if index >= campaign.batches.len() {
                    return state;
                }
                campaign.checkpointed = campaign.checkpointed.max(index + 1);
                campaign.last_unique = Some(unique);
            }
            "x" => {
                if state.campaigns.remove(&id).is_none() {
                    return state;
                }
                closed_or_bumped(&mut state, id);
            }
            _ => return state,
        }
        if fields.next().is_some() {
            return state;
        }
    }
    state
}

/// Renders the live records back to journal text (used by compaction).
pub(crate) fn render_journal(state: &JournalState) -> String {
    let mut out = String::from(JOURNAL_HEADER);
    out.push('\n');
    if state.max_seen_id > 0 {
        out.push_str(&format!("n {}\n", state.max_seen_id));
    }
    let mut ids: Vec<u32> = state.campaigns.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let campaign = &state.campaigns[&id];
        out.push_str(&format!("o {id} {}\n", hex_encode(&campaign.req.to_body())));
        for (index, seeds) in campaign.batches.iter().enumerate() {
            let body = encode_seeds_body(seeds).expect("journaled batch re-encodes");
            out.push_str(&format!("s {id} {index} {}\n", hex_encode(&body)));
        }
        if let (true, Some(unique)) = (campaign.checkpointed > 0, campaign.last_unique) {
            out.push_str(&format!("c {id} {} {unique}\n", campaign.checkpointed - 1));
        }
    }
    out
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |b: u8| -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("glade-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn request(spec: &str) -> OpenRequest {
        let mut req = OpenRequest::new(spec);
        req.cache = true;
        req
    }

    #[test]
    fn appends_round_trip_through_parse() {
        let dir = scratch_dir("round-trip");
        let (mut journal, state) = Journal::open(&dir).expect("open");
        assert!(state.campaigns.is_empty());
        journal.append_open(1, &request("target:xml")).unwrap();
        journal.append_seeds(1, 0, &[b"<a>hi</a>".to_vec(), vec![0u8, 255u8]]).unwrap();
        journal.append_checkpoint(1, 0, 965).unwrap();
        journal.append_seeds(1, 1, &[b"<b></b>".to_vec()]).unwrap();
        journal.append_open(2, &request("target:json")).unwrap();
        journal.append_closed(2).unwrap();

        let (_journal2, state) = Journal::open(&dir).expect("reopen");
        assert_eq!(state.max_seen_id, 2, "closed ids still advance the counter");
        assert_eq!(state.campaigns.len(), 1, "closed campaign dropped");
        let campaign = &state.campaigns[&1];
        assert_eq!(campaign.req, request("target:xml"));
        assert_eq!(
            campaign.batches,
            vec![vec![b"<a>hi</a>".to_vec(), vec![0u8, 255u8]], vec![b"<b></b>".to_vec()]]
        );
        assert_eq!(campaign.checkpointed, 1);
        assert_eq!(campaign.last_unique, Some(965));
        // A third open (after compaction dropped campaign 2's records)
        // still refuses to reuse id 2.
        let (_journal3, state) = Journal::open(&dir).expect("re-reopen");
        assert_eq!(state.max_seen_id, 2, "high-water id survives compaction");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_record_is_ignored() {
        let dir = scratch_dir("torn");
        let (mut journal, _) = Journal::open(&dir).expect("open");
        journal.append_open(1, &request("target:xml")).unwrap();
        journal.append_seeds(1, 0, &[b"seed".to_vec()]).unwrap();
        drop(journal);
        // Simulate a crash mid-append: a second batch with no newline.
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("s 1 1 7365");
        std::fs::write(&path, &text).unwrap();

        let (_journal, state) = Journal::open(&dir).expect("reopen");
        let campaign = &state.campaigns[&1];
        assert_eq!(campaign.batches.len(), 1, "torn record skipped");
        // Compaction dropped the torn tail from the file itself.
        let compacted = std::fs::read_to_string(&path).unwrap();
        assert!(compacted.ends_with('\n'));
        assert!(!compacted.contains("s 1 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_record_keeps_the_prefix() {
        // `010000000400000073656564` = one seed, the 4 bytes `seed`.
        let state = parse_journal(
            "glade-journal v1\no 3 6f7261636c65207461726765743a786d6c0a\
             \ns 3 0 010000000400000073656564\
             \ns 3 nonsense zz\ns 3 1 010000000400000073656564\n",
        );
        assert_eq!(state.campaigns.len(), 1);
        assert_eq!(state.campaigns[&3].batches.len(), 1, "parse stops at the bad record");
        assert_eq!(state.max_seen_id, 3);
    }

    #[test]
    fn foreign_or_missing_header_parses_empty() {
        assert!(parse_journal("").campaigns.is_empty());
        assert!(parse_journal("glade-journal v9\no 1 00\n").campaigns.is_empty());
        assert!(parse_journal("not a journal\n").campaigns.is_empty());
    }

    #[test]
    fn out_of_order_or_unknown_ids_stop_the_parse() {
        // `s` before its `o`.
        let state = parse_journal("glade-journal v1\ns 1 0 04000000\n");
        assert!(state.campaigns.is_empty());
        // Checkpoint past the batches seen so far.
        let state =
            parse_journal("glade-journal v1\no 1 6f7261636c65207461726765743a786d6c0a\nc 1 0 5\n");
        assert_eq!(state.campaigns[&1].checkpointed, 0);
        // Batch index gap.
        let state = parse_journal(
            "glade-journal v1\no 1 6f7261636c65207461726765743a786d6c0a\ns 1 1 04000000\n",
        );
        assert!(state.campaigns[&1].batches.is_empty());
    }

    #[test]
    fn render_compacts_to_equivalent_state() {
        let mut state = JournalState::default();
        state.campaigns.insert(
            7,
            JournaledCampaign {
                req: request("target:xml"),
                batches: vec![vec![b"a".to_vec()], vec![b"b".to_vec(), Vec::new()]],
                checkpointed: 2,
                last_unique: Some(42),
            },
        );
        state.max_seen_id = 7;
        let text = render_journal(&state);
        let back = parse_journal(&text);
        assert_eq!(back.campaigns.len(), 1);
        let campaign = &back.campaigns[&7];
        assert_eq!(campaign.req, request("target:xml"));
        assert_eq!(campaign.batches, state.campaigns[&7].batches);
        assert_eq!(campaign.checkpointed, 2);
        assert_eq!(campaign.last_unique, Some(42));
        assert_eq!(back.max_seen_id, 7);
    }
}
