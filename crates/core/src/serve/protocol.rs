//! Frame codec and option/stats text formats for `glade-serve v2`.
//!
//! See the [module docs](super) for the wire-format table. Everything here
//! is pure encode/decode — no sockets — so both sides of the protocol and
//! the tests share one implementation.

use crate::synth::SynthesisStats;
use crate::wire::{decode_batch_frame_after_count, encode_batch_frame, FrameError};
use std::io::Read;
use std::time::Duration;

/// The current protocol banner exchanged in `HELLO`/`HELLO_ACK`.
/// Version 2 adds the `RESUME` frame; everything a v1 peer sends means
/// the same thing in v2.
pub const SERVE_PROTOCOL: &[u8] = b"glade-serve v2";

/// The version-1 banner. The server still accepts it (`HELLO_ACK` echoes
/// the banner the client sent), so v1 clients keep working unchanged; a
/// v1 session simply has no `RESUME`.
pub const SERVE_PROTOCOL_V1: &[u8] = b"glade-serve v1";

/// Largest payload (tag byte + body) a peer will accept. Matches the
/// batched worker protocol's frame cap: the bound exists to fail fast on a
/// corrupted length prefix, not to limit real traffic.
pub(crate) const MAX_SERVE_PAYLOAD: usize = crate::wire::MAX_FRAME_BYTES;

// Client → server frame tags.
pub(crate) const TAG_HELLO: u8 = 0x01;
pub(crate) const TAG_OPEN: u8 = 0x02;
pub(crate) const TAG_SEEDS: u8 = 0x03;
pub(crate) const TAG_CANCEL: u8 = 0x04;
pub(crate) const TAG_CLOSE: u8 = 0x05;
pub(crate) const TAG_RESUME: u8 = 0x06; // v2

// Server → client frame tags.
pub(crate) const TAG_HELLO_ACK: u8 = 0x81;
pub(crate) const TAG_OPEN_ACK: u8 = 0x82;
pub(crate) const TAG_EVENT: u8 = 0x83;
pub(crate) const TAG_RESULT: u8 = 0x84;
pub(crate) const TAG_ERROR: u8 = 0x85;

/// A `glade-serve` peer sent something unintelligible.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// A frame, option body, or stats body was malformed.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "serve protocol i/o error: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed serve frame: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ProtocolError::Io(io),
            other => ProtocolError::Malformed(other.to_string()),
        }
    }
}

impl From<ProtocolError> for std::io::Error {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io) => io,
            ProtocolError::Malformed(what) => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, what)
            }
        }
    }
}

/// Appends one framed message (`u32` LE length, tag byte, body).
pub(crate) fn encode_frame(tag: u8, body: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(1 + body.len()).expect("serve frame body exceeds u32");
    out.reserve(5 + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(body);
}

/// Drains every *complete* frame from the front of an accumulation buffer,
/// leaving any trailing partial frame in place. Used by the server's
/// nonblocking reads.
pub(crate) fn drain_frames(buf: &mut Vec<u8>) -> Result<Vec<(u8, Vec<u8>)>, ProtocolError> {
    let mut frames = Vec::new();
    let mut consumed = 0usize;
    loop {
        let rest = &buf[consumed..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len == 0 || len > MAX_SERVE_PAYLOAD {
            return Err(ProtocolError::Malformed(format!("frame length {len} out of range")));
        }
        if rest.len() < 4 + len {
            break;
        }
        frames.push((rest[4], rest[5..4 + len].to_vec()));
        consumed += 4 + len;
    }
    buf.drain(..consumed);
    Ok(frames)
}

/// Blocking read of one frame (client side).
pub(crate) fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ProtocolError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > MAX_SERVE_PAYLOAD {
        return Err(ProtocolError::Malformed(format!("frame length {len} out of range")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let tag = payload[0];
    payload.drain(..1);
    Ok((tag, payload))
}

/// The options a client sends in an `OPEN` frame.
///
/// Only the oracle spec is required; everything else defaults to the
/// engine's local-session defaults (memoization on, events on, no cache,
/// server-default query budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenRequest {
    /// The oracle the campaign runs against. Interpretation is up to the
    /// server's [`OracleFactory`](super::OracleFactory); the bundled CLI
    /// accepts `target:<name>` (a built-in) and `cmd:<command line>` (a
    /// pooled worker command).
    pub oracle_spec: String,
    /// Per-run distinct-query budget
    /// ([`GladeBuilder::max_queries`](crate::GladeBuilder::max_queries)).
    /// `None` uses the server default.
    pub max_queries: Option<usize>,
    /// Byte-class memoization
    /// ([`GladeBuilder::memoize_byte_classes`](crate::GladeBuilder::memoize_byte_classes)).
    pub memoize: bool,
    /// Whether the server streams `EVENT` frames for this campaign.
    pub events: bool,
    /// Whether the server loads/saves this campaign's persistent query
    /// cache (requires [`ServeConfig::cache_dir`](super::ServeConfig)).
    pub cache: bool,
}

impl OpenRequest {
    /// An open request for `oracle_spec` with default options.
    pub fn new(oracle_spec: impl Into<String>) -> Self {
        OpenRequest {
            oracle_spec: oracle_spec.into(),
            max_queries: None,
            memoize: true,
            events: true,
            cache: false,
        }
    }

    pub(crate) fn to_body(&self) -> Vec<u8> {
        let mut body = format!("oracle {}\n", self.oracle_spec);
        if let Some(n) = self.max_queries {
            body.push_str(&format!("max-queries {n}\n"));
        }
        if !self.memoize {
            body.push_str("memo off\n");
        }
        if !self.events {
            body.push_str("events off\n");
        }
        if self.cache {
            body.push_str("cache on\n");
        }
        body.into_bytes()
    }

    pub(crate) fn from_body(body: &[u8]) -> Result<OpenRequest, ProtocolError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ProtocolError::Malformed("OPEN body is not UTF-8".into()))?;
        let mut oracle_spec = None;
        let mut req = OpenRequest::new("");
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "oracle" => {
                    if value.is_empty() {
                        return Err(ProtocolError::Malformed("empty oracle spec".into()));
                    }
                    oracle_spec = Some(value.to_string());
                }
                "max-queries" => {
                    let n = value.parse::<usize>().map_err(|_| {
                        ProtocolError::Malformed(format!("bad max-queries value {value:?}"))
                    })?;
                    req.max_queries = Some(n);
                }
                "memo" => req.memoize = value != "off",
                "events" => req.events = value != "off",
                "cache" => req.cache = value == "on",
                // Unknown option from a newer client: skip, don't reject.
                _ => {}
            }
        }
        req.oracle_spec = oracle_spec
            .ok_or_else(|| ProtocolError::Malformed("OPEN without oracle spec".into()))?;
        Ok(req)
    }
}

/// Encodes a `SEEDS` body. A zero-length seed list is legal (an empty
/// re-synthesis batch), which the underlying batch codec rejects, so the
/// empty case writes just the zero count.
pub(crate) fn encode_seeds_body(seeds: &[Vec<u8>]) -> Result<Vec<u8>, ProtocolError> {
    if seeds.is_empty() {
        return Ok(0u32.to_le_bytes().to_vec());
    }
    let refs: Vec<&[u8]> = seeds.iter().map(|s| s.as_slice()).collect();
    let mut body = Vec::new();
    encode_batch_frame(&refs, &mut body)?;
    Ok(body)
}

/// Decodes a `SEEDS` body.
pub(crate) fn decode_seeds_body(body: &[u8]) -> Result<Vec<Vec<u8>>, ProtocolError> {
    if body.len() < 4 {
        return Err(ProtocolError::Malformed("truncated SEEDS body".into()));
    }
    let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    if count == 0 {
        if body.len() != 4 {
            return Err(ProtocolError::Malformed("trailing bytes after empty SEEDS".into()));
        }
        return Ok(Vec::new());
    }
    let mut rest = &body[4..];
    let seeds = decode_batch_frame_after_count(count, &mut rest)?;
    if !rest.is_empty() {
        return Err(ProtocolError::Malformed("trailing bytes after SEEDS batch".into()));
    }
    Ok(seeds)
}

/// Encodes a `RESUME` body: the journaled campaign id to re-attach.
pub(crate) fn encode_resume(campaign: u32) -> Vec<u8> {
    campaign.to_le_bytes().to_vec()
}

/// Decodes a `RESUME` body.
pub(crate) fn decode_resume(body: &[u8]) -> Result<u32, ProtocolError> {
    let bytes: [u8; 4] = body
        .try_into()
        .map_err(|_| ProtocolError::Malformed("RESUME body must be a u32 campaign id".into()))?;
    Ok(u32::from_le_bytes(bytes))
}

/// Encodes an `OPEN_ACK` body: campaign id then fingerprint.
pub(crate) fn encode_open_ack(campaign: u32, fingerprint: &str) -> Vec<u8> {
    let mut body = campaign.to_le_bytes().to_vec();
    body.extend_from_slice(fingerprint.as_bytes());
    body
}

/// Decodes an `OPEN_ACK` body.
pub(crate) fn decode_open_ack(body: &[u8]) -> Result<(u32, String), ProtocolError> {
    if body.len() < 4 {
        return Err(ProtocolError::Malformed("truncated OPEN_ACK".into()));
    }
    let campaign = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    let fingerprint = std::str::from_utf8(&body[4..])
        .map_err(|_| ProtocolError::Malformed("OPEN_ACK fingerprint is not UTF-8".into()))?
        .to_string();
    Ok((campaign, fingerprint))
}

/// Encodes a `RESULT` body: stats length, stats text, grammar text.
pub(crate) fn encode_result(stats: &SynthesisStats, grammar_text: &str) -> Vec<u8> {
    let stats_text = stats_to_text(stats);
    let mut body =
        u32::try_from(stats_text.len()).expect("stats text exceeds u32").to_le_bytes().to_vec();
    body.extend_from_slice(stats_text.as_bytes());
    body.extend_from_slice(grammar_text.as_bytes());
    body
}

/// Decodes a `RESULT` body into (stats, grammar text).
pub(crate) fn decode_result(body: &[u8]) -> Result<(SynthesisStats, String), ProtocolError> {
    if body.len() < 4 {
        return Err(ProtocolError::Malformed("truncated RESULT".into()));
    }
    let stats_len = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
    let rest = &body[4..];
    if rest.len() < stats_len {
        return Err(ProtocolError::Malformed("RESULT stats length overruns body".into()));
    }
    let stats_text = std::str::from_utf8(&rest[..stats_len])
        .map_err(|_| ProtocolError::Malformed("RESULT stats are not UTF-8".into()))?;
    let grammar = std::str::from_utf8(&rest[stats_len..])
        .map_err(|_| ProtocolError::Malformed("RESULT grammar is not UTF-8".into()))?
        .to_string();
    Ok((stats_from_text(stats_text)?, grammar))
}

/// Serializes run statistics as `key value` lines. Like event wire lines,
/// the keys are stable and unknown keys are skipped on parse, so the two
/// sides of the protocol can version independently.
pub(crate) fn stats_to_text(stats: &SynthesisStats) -> String {
    let mut out = String::new();
    let mut line = |key: &str, value: String| {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value);
        out.push('\n');
    };
    line("unique-queries", stats.unique_queries.to_string());
    line("new-unique-queries", stats.new_unique_queries.to_string());
    line("total-queries", stats.total_queries.to_string());
    line("seeds-used", stats.seeds_used.to_string());
    line("seeds-skipped", stats.seeds_skipped.to_string());
    line("star-count", stats.star_count.to_string());
    line("tree-nodes", stats.tree_nodes.to_string());
    line("merge-pairs-tried", stats.merge_pairs_tried.to_string());
    line("merges-accepted", stats.merges_accepted.to_string());
    line("chars-generalized", stats.chars_generalized.to_string());
    line("memo-hits", stats.memo_hits.to_string());
    line("probes-elided", stats.probes_elided.to_string());
    line("oracle-failures", stats.oracle_failures.to_string());
    line("timed-out-queries", stats.timed_out_queries.to_string());
    line("tripped-workers", stats.tripped_workers.to_string());
    line("budget-exhausted", usize::from(stats.budget_exhausted).to_string());
    line("cancelled", usize::from(stats.cancelled).to_string());
    line("phase1-ns", stats.phase1_time.as_nanos().to_string());
    line("chargen-ns", stats.chargen_time.as_nanos().to_string());
    line("phase2-ns", stats.phase2_time.as_nanos().to_string());
    out
}

/// Parses the output of [`stats_to_text`]. Unknown keys are skipped;
/// malformed values on known keys are errors.
pub(crate) fn stats_from_text(text: &str) -> Result<SynthesisStats, ProtocolError> {
    let mut stats = SynthesisStats::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once(' ').ok_or_else(|| {
            ProtocolError::Malformed(format!("stats line without value: {line:?}"))
        })?;
        let parse = |value: &str| {
            value
                .parse::<usize>()
                .map_err(|_| ProtocolError::Malformed(format!("bad stats value in {line:?}")))
        };
        let parse_ns = |value: &str| {
            value
                .parse::<u64>()
                .map(Duration::from_nanos)
                .map_err(|_| ProtocolError::Malformed(format!("bad stats value in {line:?}")))
        };
        match key {
            "unique-queries" => stats.unique_queries = parse(value)?,
            "new-unique-queries" => stats.new_unique_queries = parse(value)?,
            "total-queries" => stats.total_queries = parse(value)?,
            "seeds-used" => stats.seeds_used = parse(value)?,
            "seeds-skipped" => stats.seeds_skipped = parse(value)?,
            "star-count" => stats.star_count = parse(value)?,
            "tree-nodes" => stats.tree_nodes = parse(value)?,
            "merge-pairs-tried" => stats.merge_pairs_tried = parse(value)?,
            "merges-accepted" => stats.merges_accepted = parse(value)?,
            "chars-generalized" => stats.chars_generalized = parse(value)?,
            "memo-hits" => stats.memo_hits = parse(value)?,
            "probes-elided" => stats.probes_elided = parse(value)?,
            "oracle-failures" => stats.oracle_failures = parse(value)?,
            "timed-out-queries" => stats.timed_out_queries = parse(value)?,
            "tripped-workers" => stats.tripped_workers = parse(value)?,
            "budget-exhausted" => stats.budget_exhausted = parse(value)? != 0,
            "cancelled" => stats.cancelled = parse(value)? != 0,
            "phase1-ns" => stats.phase1_time = parse_ns(value)?,
            "chargen-ns" => stats.chargen_time = parse_ns(value)?,
            "phase2-ns" => stats.phase2_time = parse_ns(value)?,
            _ => {}
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_drain() {
        let mut buf = Vec::new();
        encode_frame(TAG_HELLO, SERVE_PROTOCOL, &mut buf);
        encode_frame(TAG_CANCEL, b"", &mut buf);
        // A partial third frame stays in the buffer.
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.push(TAG_SEEDS);
        let frames = drain_frames(&mut buf).expect("well-formed frames");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], (TAG_HELLO, SERVE_PROTOCOL.to_vec()));
        assert_eq!(frames[1], (TAG_CANCEL, Vec::new()));
        assert_eq!(buf.len(), 5, "partial frame preserved");
    }

    #[test]
    fn frames_round_trip_through_blocking_read() {
        let mut buf = Vec::new();
        encode_frame(TAG_EVENT, b"cancelled", &mut buf);
        let mut cursor = std::io::Cursor::new(buf);
        let (tag, body) = read_frame(&mut cursor).expect("frame parses");
        assert_eq!(tag, TAG_EVENT);
        assert_eq!(body, b"cancelled");
    }

    #[test]
    fn zero_length_frames_are_rejected() {
        let mut buf = 0u32.to_le_bytes().to_vec();
        assert!(drain_frames(&mut buf).is_err());
    }

    #[test]
    fn open_request_round_trips() {
        let mut req = OpenRequest::new("target:xml");
        req.max_queries = Some(5000);
        req.memoize = false;
        req.events = false;
        req.cache = true;
        let body = req.to_body();
        assert_eq!(OpenRequest::from_body(&body).expect("parses"), req);
        // Defaults round-trip too (no optional lines emitted).
        let plain = OpenRequest::new("cmd:worker --x");
        assert_eq!(OpenRequest::from_body(&plain.to_body()).expect("parses"), plain);
    }

    #[test]
    fn open_request_spec_with_spaces_survives() {
        let req = OpenRequest::new("cmd:python3 worker.py --strict");
        let parsed = OpenRequest::from_body(&req.to_body()).expect("parses");
        assert_eq!(parsed.oracle_spec, "cmd:python3 worker.py --strict");
    }

    #[test]
    fn open_request_skips_unknown_options_and_requires_oracle() {
        let parsed =
            OpenRequest::from_body(b"oracle target:xml\nshiny-new-option 7\n").expect("parses");
        assert_eq!(parsed.oracle_spec, "target:xml");
        assert!(OpenRequest::from_body(b"max-queries 5\n").is_err(), "oracle line is required");
        assert!(OpenRequest::from_body(b"oracle target:xml\nmax-queries zap\n").is_err());
    }

    #[test]
    fn seeds_body_round_trips_including_empty() {
        let seeds = vec![b"<a>hi</a>".to_vec(), Vec::new(), vec![0u8, 255u8]];
        let body = encode_seeds_body(&seeds).expect("encodes");
        assert_eq!(decode_seeds_body(&body).expect("decodes"), seeds);
        let empty = encode_seeds_body(&[]).expect("encodes");
        assert_eq!(decode_seeds_body(&empty).expect("decodes"), Vec::<Vec<u8>>::new());
        assert!(decode_seeds_body(b"\x01\x00").is_err(), "truncated body rejected");
    }

    #[test]
    fn resume_body_round_trips() {
        assert_eq!(decode_resume(&encode_resume(0)).expect("decodes"), 0);
        assert_eq!(decode_resume(&encode_resume(u32::MAX)).expect("decodes"), u32::MAX);
        assert!(decode_resume(b"abc").is_err(), "short body rejected");
        assert!(decode_resume(b"abcde").is_err(), "long body rejected");
    }

    #[test]
    fn banners_are_distinct_and_versioned() {
        assert_eq!(SERVE_PROTOCOL, b"glade-serve v2");
        assert_eq!(SERVE_PROTOCOL_V1, b"glade-serve v1");
    }

    #[test]
    fn open_ack_round_trips() {
        let body = encode_open_ack(7, "fn:xml-like");
        assert_eq!(decode_open_ack(&body).expect("decodes"), (7, "fn:xml-like".to_string()));
    }

    #[test]
    fn result_round_trips_stats_and_grammar() {
        let stats = SynthesisStats {
            unique_queries: 965,
            total_queries: 985,
            merges_accepted: 1,
            budget_exhausted: true,
            cancelled: true,
            phase1_time: Duration::from_nanos(123_456_789),
            ..SynthesisStats::default()
        };
        let body = encode_result(&stats, "root: <A>\n<A>: 'x'\n");
        let (back, grammar) = decode_result(&body).expect("decodes");
        assert_eq!(grammar, "root: <A>\n<A>: 'x'\n");
        assert_eq!(back.unique_queries, 965);
        assert_eq!(back.total_queries, 985);
        assert_eq!(back.merges_accepted, 1);
        assert!(back.budget_exhausted);
        assert!(back.cancelled);
        assert_eq!(back.phase1_time, Duration::from_nanos(123_456_789));
    }

    #[test]
    fn stats_text_skips_unknown_keys() {
        let parsed = stats_from_text("unique-queries 5\nfuture-metric 9\n").expect("parses");
        assert_eq!(parsed.unique_queries, 5);
        assert!(stats_from_text("unique-queries five\n").is_err());
    }
}
