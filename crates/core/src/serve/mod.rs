//! `glade serve` — a multi-tenant synthesis service over the session API.
//!
//! The engine of this crate serves exactly one caller per process; this
//! module turns it into a long-running daemon that multiplexes many
//! concurrent synthesis campaigns over one (or a few) shared oracles. A
//! [`Server`] listens on a unix socket, each connected client opens a
//! *campaign* naming an oracle, streams seed batches (incremental
//! [`Session::add_seeds`](crate::Session::add_seeds)), receives live
//! [`SynthEvent`](crate::SynthEvent) frames plus the final grammar, and can
//! cancel mid-run. [`ServeClient`] is the matching in-process client.
//!
//! # Architecture
//!
//! One **accept loop** thread owns every socket (nonblocking fds driven by
//! the same `poll(2)` discipline as the pooled oracle's batched
//! dispatcher); it never blocks on a client or a campaign. Each open
//! campaign runs on its own **campaign thread** driving a private
//! [`Session`](crate::Session); commands flow accept-loop → campaign over
//! an mpsc channel, and events/results flow back over a shared outbound
//! channel plus a wake pipe that interrupts the poll sleep. Campaigns
//! named by the same oracle spec share one oracle instance (e.g. one
//! [`PooledProcessOracle`](crate::PooledProcessOracle) worker pool) through
//! the **fair scheduler** below.
//!
//! # Wire format (`glade-serve v1`)
//!
//! Every frame, both directions, is a `u32` little-endian payload length
//! followed by the payload; the payload's first byte is the frame tag and
//! the rest is the tag-specific body (the same length-prefix discipline as
//! the [`wire`](crate::wire) worker protocol). Client tags:
//!
//! | tag | name | body |
//! |---|---|---|
//! | `0x01` | `HELLO` | the literal bytes `glade-serve v1` |
//! | `0x02` | `OPEN` | UTF-8 option lines, see below |
//! | `0x03` | `SEEDS` | `u32` LE seed count, then per seed a `u32` LE length and the seed bytes (the [`wire`](crate::wire) batch body; a zero count is a legal empty re-synthesis batch) |
//! | `0x04` | `CANCEL` | empty |
//! | `0x05` | `CLOSE` | empty |
//!
//! Server tags:
//!
//! | tag | name | body |
//! |---|---|---|
//! | `0x81` | `HELLO_ACK` | the literal bytes `glade-serve v1` |
//! | `0x82` | `OPEN_ACK` | `u32` LE campaign id, then the oracle fingerprint (UTF-8) |
//! | `0x83` | `EVENT` | one [`SynthEvent`](crate::SynthEvent) wire line (UTF-8, no newline) |
//! | `0x84` | `RESULT` | `u32` LE stats length, then the stats text, then the grammar text (UTF-8) |
//! | `0x85` | `ERROR` | UTF-8 message |
//!
//! A session is: `HELLO`/`HELLO_ACK`, one `OPEN`/`OPEN_ACK`, then any
//! number of `SEEDS` requests, each answered by zero or more `EVENT`
//! frames followed by exactly one `RESULT` (or one `ERROR` for a rejected
//! request, e.g. a seed the oracle rejects — the campaign stays usable).
//! `OPEN` bodies are newline-separated `key value` lines: `oracle <spec>`
//! (required; the spec's meaning is up to the server's [`OracleFactory`]),
//! and optional `max-queries <n>`, `memo off`, `events off`, `cache on`.
//! Unknown option lines and unknown event tags are skipped, and unknown
//! *frame* tags are answered with `ERROR` — a v1 peer never wedges on a
//! newer peer's traffic.
//!
//! # Scheduling and fairness
//!
//! Campaigns sharing an oracle contend in waves, not queries: the query
//! engine hands a [`ScheduledOracle`] whole miss sets (it declares
//! [`native_batching`](crate::Oracle::native_batching)), which the engine
//! splits into bounded sub-batches, and the wrapper takes one scheduler
//! *turn* per sub-batch. [`FairScheduler`] grants turns in round-robin
//! order over the currently-waiting campaigns (cyclic by campaign id,
//! starting after the last-served id), so N tenants interleave their query
//! waves ~1/N each while a lone tenant keeps the oracle saturated.
//! Because every tenant's access is serialized through its turn, the
//! wrapper attributes the shared oracle's failure/timeout/breaker counter
//! deltas to exactly the tenant that caused them.
//!
//! # Budgets, preemption, and determinism
//!
//! Per-tenant query budgets (`max-queries`, or the server-wide default in
//! [`ServeConfig`]) and cancellation ride the engine's existing fail-closed
//! paths: once a campaign's budget is exhausted or its `CANCEL` frame (or
//! disconnect) flips the run's
//! [`CancelToken`](crate::CancelToken), its remaining checks answer
//! `false` without reaching the shared oracle, the degraded grammar still
//! contains every seed, and *other* tenants are untouched — their query
//! streams, counters, and grammar bytes are identical to running alone.
//! With no time limit and no cancellation the service is deterministic: a
//! grammar synthesized through the server is byte-identical to the same
//! seeds run through a local [`Session`](crate::Session), including under
//! concurrent tenants, because batch construction is cache-state-driven
//! and the scheduler only decides *when* a sub-batch runs, never *what* is
//! in it.
//!
//! Per-campaign caches persist across server restarts when
//! [`ServeConfig::cache_dir`] is set and the client opts in (`cache on`):
//! snapshots are namespaced by oracle fingerprint (hashed into the file
//! name, and validated again on load by the snapshot header), so a cache
//! can never replay verdicts from a different oracle.

mod client;
mod protocol;
mod scheduler;
mod server;

pub use client::{CancelHandle, RunOutcome, ServeClient};
pub use protocol::{OpenRequest, ProtocolError, SERVE_PROTOCOL};
pub use scheduler::{FairScheduler, ScheduledOracle, TurnGuard};
pub use server::{OracleFactory, ServeConfig, Server, ServerHandle};
