//! `glade serve` — a multi-tenant synthesis service over the session API.
//!
//! The engine of this crate serves exactly one caller per process; this
//! module turns it into a long-running daemon that multiplexes many
//! concurrent synthesis campaigns over one (or a few) shared oracles. A
//! [`Server`] listens on a unix socket, each connected client opens a
//! *campaign* naming an oracle, streams seed batches (incremental
//! [`Session::add_seeds`](crate::Session::add_seeds)), receives live
//! [`SynthEvent`](crate::SynthEvent) frames plus the final grammar, and can
//! cancel mid-run. [`ServeClient`] is the matching in-process client.
//!
//! # Architecture
//!
//! One **accept loop** thread owns every socket (nonblocking fds driven by
//! the same `poll(2)` discipline as the pooled oracle's batched
//! dispatcher); it never blocks on a client or a campaign. Each open
//! campaign runs on its own **campaign thread** driving a private
//! [`Session`](crate::Session); commands flow accept-loop → campaign over
//! an mpsc channel, and events/results flow back over a shared outbound
//! channel plus a wake pipe that interrupts the poll sleep. Campaigns
//! named by the same oracle spec share one oracle instance (e.g. one
//! [`PooledProcessOracle`](crate::PooledProcessOracle) worker pool) through
//! the **fair scheduler** below.
//!
//! # Wire format (`glade-serve v2`)
//!
//! Every frame, both directions, is a `u32` little-endian payload length
//! followed by the payload; the payload's first byte is the frame tag and
//! the rest is the tag-specific body (the same length-prefix discipline as
//! the [`wire`](crate::wire) worker protocol). Client tags:
//!
//! | tag | name | body |
//! |---|---|---|
//! | `0x01` | `HELLO` | the literal bytes `glade-serve v2` (or `glade-serve v1`; see versioning below) |
//! | `0x02` | `OPEN` | UTF-8 option lines, see below |
//! | `0x03` | `SEEDS` | `u32` LE seed count, then per seed a `u32` LE length and the seed bytes (the [`wire`](crate::wire) batch body; a zero count is a legal empty re-synthesis batch) |
//! | `0x04` | `CANCEL` | empty |
//! | `0x05` | `CLOSE` | empty |
//! | `0x06` | `RESUME` | `u32` LE campaign id of an interrupted campaign (v2) |
//!
//! Server tags:
//!
//! | tag | name | body |
//! |---|---|---|
//! | `0x81` | `HELLO_ACK` | echo of the client's `HELLO` banner |
//! | `0x82` | `OPEN_ACK` | `u32` LE campaign id, then the oracle fingerprint (UTF-8) |
//! | `0x83` | `EVENT` | one [`SynthEvent`](crate::SynthEvent) wire line (UTF-8, no newline) |
//! | `0x84` | `RESULT` | `u32` LE stats length, then the stats text, then the grammar text (UTF-8) |
//! | `0x85` | `ERROR` | UTF-8 message |
//!
//! A session is: `HELLO`/`HELLO_ACK`, one `OPEN`/`OPEN_ACK` (or one
//! `RESUME`/`OPEN_ACK`), then any number of `SEEDS` requests, each
//! answered by zero or more `EVENT` frames followed by exactly one
//! `RESULT` (or one `ERROR` for a rejected request, e.g. a seed the oracle
//! rejects — the campaign stays usable). `OPEN` bodies are
//! newline-separated `key value` lines: `oracle <spec>` (required; the
//! spec's meaning is up to the server's [`OracleFactory`]), and optional
//! `max-queries <n>`, `memo off`, `events off`, `cache on`. Unknown
//! option lines and unknown event tags are skipped, and unknown *frame*
//! tags are answered with `ERROR` — a peer never wedges on a newer peer's
//! traffic.
//!
//! **Versioning.** v2 adds only the `RESUME` frame; every v1 frame is
//! unchanged. The server accepts either banner and echoes back the one
//! the client sent, so v1 clients interoperate untouched (a v1 client
//! that somehow sent `0x06` would get the ordinary unknown-tag `ERROR`
//! from a v1 server, and a real `RESUME` reply from this one).
//!
//! # Campaign journal and restart resume
//!
//! When [`ServeConfig::cache_dir`] is set the server keeps an append-only
//! **campaign journal** (`serve.journal` in the cache dir, format
//! `glade-journal v1`) recording, per campaign: the `OPEN` request (`o`
//! record, written before the campaign thread exists), every accepted
//! seed batch (`s` record, written at `SEEDS` *receipt*, before the batch
//! runs), each completed batch (`c` checkpoint record with the
//! unique-query count, written by the campaign thread after the cache
//! snapshot is durably saved), and clean closure (`x` record). Every
//! append is a single `write(2)` followed by `fdatasync`; a torn trailing
//! record (crash mid-append) is ignored on replay, and a malformed record
//! stops the parse keeping the valid prefix — journal recovery never
//! fails startup. An `n` record persists the campaign-id high-water mark
//! so ids are never reused across restarts, and startup compacts the
//! journal (rewrites live state durably) so it does not grow without
//! bound.
//!
//! On startup the server replays the journal: campaigns with an `o` but
//! no `x` become **resumable**. A v2 client claims one with
//! `RESUME <id>`; the server re-resolves the oracle, replays the
//! journaled seed batches in order through
//! [`Session::add_seeds`](crate::Session::add_seeds) over the warm
//! per-fingerprint persistent cache, and answers with the final `RESULT`.
//! Because batch construction is cache-state-driven, the resumed grammar
//! is **byte-identical** to an uninterrupted run, and every check already
//! answered before the crash is a cache hit — a fully-checkpointed
//! campaign re-pays zero unique oracle queries. A claim removes the
//! campaign from the resumable set (a second `RESUME` gets an `ERROR`);
//! if the oracle fails to resolve, the claim is returned.
//!
//! # Graceful drain
//!
//! The accept loop runs a three-state machine: **serving** → **draining**
//! → **stopped**. Cancelling the drain token ([`ServerHandle::drain`], or
//! the first `SIGTERM`/`SIGINT` in the CLI via [`install_drain_signals`])
//! moves serving → draining: the listener stops accepting, new
//! `OPEN`/`RESUME` frames get `ERROR "server is draining"`, and running
//! campaigns continue. The loop exits when every connection is idle
//! (nothing buffered, nothing pending) or after
//! [`ServeConfig::drain_timeout`]; campaigns still running at the
//! deadline are preempted along the engine's fail-closed
//! [`CancelToken`](crate::CancelToken) path (their journal entries stay
//! open, so they are resumable after restart). Cancelling the shutdown
//! token (second signal in the CLI) hard-stops from either state. On the
//! way out the server cancels and joins every campaign thread and unlinks
//! its socket file.
//!
//! # Slow readers and backpressure
//!
//! Events for each connection pass through a bounded queue
//! ([`ServeConfig::max_event_buffer`]) before serialization, and move into
//! the socket buffer only while the reader keeps up. Consecutive
//! query-tally events coalesce (newest wins — they are cumulative);
//! lifecycle events are never coalesced. A reader stuck past the bound is
//! *demoted* to result-only: queued events drop, the campaign thread is
//! never blocked, and an `events-dropped <n>` event is delivered before
//! the next `RESULT` so the client knows its stream has a gap. `RESULT`
//! and `ERROR` frames are never dropped.
//!
//! # Scheduling and fairness
//!
//! Campaigns sharing an oracle contend in waves, not queries: the query
//! engine hands a [`ScheduledOracle`] whole miss sets (it declares
//! [`native_batching`](crate::Oracle::native_batching)), which the engine
//! splits into bounded sub-batches, and the wrapper takes one scheduler
//! *turn* per sub-batch. [`FairScheduler`] grants turns in round-robin
//! order over the currently-waiting campaigns (cyclic by campaign id,
//! starting after the last-served id), so N tenants interleave their query
//! waves ~1/N each while a lone tenant keeps the oracle saturated.
//! Because every tenant's access is serialized through its turn, the
//! wrapper attributes the shared oracle's failure/timeout/breaker counter
//! deltas to exactly the tenant that caused them.
//!
//! # Budgets, preemption, and determinism
//!
//! Per-tenant query budgets (`max-queries`, or the server-wide default in
//! [`ServeConfig`]) and cancellation ride the engine's existing fail-closed
//! paths: once a campaign's budget is exhausted or its `CANCEL` frame (or
//! disconnect) flips the run's
//! [`CancelToken`](crate::CancelToken), its remaining checks answer
//! `false` without reaching the shared oracle, the degraded grammar still
//! contains every seed, and *other* tenants are untouched — their query
//! streams, counters, and grammar bytes are identical to running alone.
//! With no time limit and no cancellation the service is deterministic: a
//! grammar synthesized through the server is byte-identical to the same
//! seeds run through a local [`Session`](crate::Session), including under
//! concurrent tenants, because batch construction is cache-state-driven
//! and the scheduler only decides *when* a sub-batch runs, never *what* is
//! in it.
//!
//! Per-campaign caches persist across server restarts when
//! [`ServeConfig::cache_dir`] is set and the client opts in (`cache on`):
//! snapshots are namespaced by oracle fingerprint (hashed into the file
//! name, and validated again on load by the snapshot header), so a cache
//! can never replay verdicts from a different oracle. Snapshot saves are
//! crash-safe: bytes are written to a temp file, fsync'd, renamed over
//! the live snapshot, and the directory entry fsync'd.
//!
//! # Ops runbook
//!
//! * **Start:** `glade serve --socket PATH --cache-dir DIR`. The cache
//!   dir holds per-fingerprint cache snapshots (`<hash>.glade-cache`) and
//!   the campaign journal (`serve.journal`). Without `--cache-dir` there
//!   is no journal and nothing is resumable.
//! * **Stop (graceful):** send one `SIGTERM` (or `SIGINT`/ctrl-C). The
//!   server drains: running campaigns finish or checkpoint within
//!   `--drain-timeout` (default 10s), caches save, the socket unlinks.
//! * **Stop (hard):** send a second signal. In-flight campaigns are
//!   preempted fail-closed; their journal entries stay open.
//! * **Crash recovery:** restart with the same `--cache-dir`. The log
//!   line `N resumable campaign(s)` lists interrupted ids; clients
//!   re-attach with `glade client --resume <id>` and receive the same
//!   grammar bytes the uninterrupted run would have produced, re-paying
//!   ~zero unique oracle queries.
//! * **Stuck clients** cannot wedge the server: slow readers are demoted
//!   to result-only, and a disconnected client's campaign is preempted
//!   (and resumable after restart, if journaled).

mod client;
mod journal;
mod protocol;
mod scheduler;
mod server;

pub use client::{CancelHandle, RunOutcome, ServeClient};
pub use protocol::{OpenRequest, ProtocolError, SERVE_PROTOCOL, SERVE_PROTOCOL_V1};
pub use scheduler::{FairScheduler, ScheduledOracle, TurnGuard};
pub use server::{
    drain_signal_count, install_drain_signals, OracleFactory, ServeConfig, Server, ServerHandle,
};
